"""Experiment E6: replication vs correlation (Eq. 12, Section 5.5).

Regenerates the paper's conclusion that replication increases MTTDL
geometrically but correlation decreases it geometrically, so replication
without independence buys little.  Also cross-checks Eq. 12 against the
exact birth-death Markov chain.
"""

import pytest

from repro.analysis.sweep import sweep_replication
from repro.analysis.tables import format_table
from repro.core.replication import replicated_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import replicated_mttdl_markov

MV = 1.4e6
MRV = 1.0 / 3.0
ALPHAS = [1.0, 0.1, 0.01, 0.001]
MAX_REPLICAS = 5


def compute_replication_table():
    return sweep_replication(MV, MRV, MAX_REPLICAS, correlation_factors=ALPHAS)


@pytest.mark.benchmark(group="e6 replication")
def test_bench_e6_replication_vs_correlation(benchmark, experiment_printer):
    results = benchmark(compute_replication_table)

    headers = ["replicas"] + [f"alpha={alpha:g} (yr)" for alpha in ALPHAS]
    rows = []
    for index in range(MAX_REPLICAS):
        row = [index + 1] + [
            results[alpha].metric("mttdl_years")[index] for alpha in ALPHAS
        ]
        rows.append(row)
    experiment_printer(
        "E6: Eq. 12 — MTTDL vs replication degree and correlation",
        format_table(headers, rows, precision=3),
    )

    # Geometric growth with replicas at alpha = 1.
    independent = results[1.0].metric("mttdl_hours")
    assert independent[2] / independent[1] == pytest.approx(MV / MRV, rel=1e-6)
    # Correlation geometrically erodes the gain: at alpha = 0.001 the
    # 5-way system is worth orders of magnitude less than independent.
    correlated = results[0.001].metric("mttdl_hours")
    assert correlated[4] < independent[4] * 1e-9
    # Going from 2 to 5 replicas buys (MV/MRV)^3 when independent but
    # only (alpha MV/MRV)^3 when correlated — the gain is slashed by
    # alpha^3 (nine orders of magnitude here), which is the paper's
    # "replication without independence does not help much" point.
    independent_gain = independent[4] / independent[1]
    correlated_gain = correlated[4] / correlated[1]
    assert correlated_gain == pytest.approx(independent_gain * 0.001 ** 3, rel=1e-6)


@pytest.mark.benchmark(group="e6 replication")
def test_bench_e6_eq12_vs_markov(benchmark, experiment_printer):
    def compute():
        rows = []
        for replicas in range(2, MAX_REPLICAS + 1):
            closed = replicated_mttdl(MV, MRV, replicas, 0.1)
            markov = replicated_mttdl_markov(
                MV, MRV, replicas, 0.1, scale_fault_rate_with_survivors=False
            )
            rows.append((replicas, closed / HOURS_PER_YEAR, markov / HOURS_PER_YEAR))
        return rows

    rows = benchmark(compute)
    experiment_printer(
        "E6 (ablation): Eq. 12 approximation vs exact birth-death chain (alpha=0.1)",
        format_table(
            ["replicas", "Eq.12 (yr)", "Markov chain (yr)"],
            [list(row) for row in rows],
        ),
    )
    for replicas, closed, markov in rows:
        ratio = max(closed, markov) / min(closed, markov)
        assert ratio < 10.0 ** (replicas - 1)
