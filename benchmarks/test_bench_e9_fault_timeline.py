"""Experiment E9: Figure 1 — the latent vs visible fault lifecycle.

The paper's Figure 1 is conceptual: a visible fault is followed
immediately by recovery, a latent fault sits undetected until an audit
finds it, then recovery runs.  This benchmark regenerates the figure's
content from the simulator: empirical distributions of
occurrence-to-detection delay (latent faults only) and repair duration,
confirming the structural difference between the two fault types.
"""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_histogram
from repro.analysis.tables import format_dict
from repro.core.parameters import FaultModel
from repro.simulation.monte_carlo import run_single_trace

#: A compressed-time model so a single trace contains many fault cycles.
FAST_MODEL = FaultModel(
    mean_time_to_visible=2000.0,
    mean_time_to_latent=400.0,
    mean_repair_visible=2.0,
    mean_repair_latent=2.0,
    mean_detect_latent=50.0,
    correlation_factor=1.0,
)


def compute_timeline():
    result = run_single_trace(
        FAST_MODEL, seed=42, max_time=2.0e5, audits_per_year=8760.0 / 100.0
    )
    latencies = result.trace.detection_latencies()
    repairs = result.trace.repair_durations()
    return result, latencies, repairs


@pytest.mark.benchmark(group="e9 fault timeline")
def test_bench_e9_fault_timeline(benchmark, experiment_printer):
    result, latencies, repairs = benchmark(compute_timeline)

    summary = {
        "visible faults": result.visible_faults,
        "latent faults": result.latent_faults,
        "repairs completed": result.repairs,
        "audit passes": result.audits,
        "mean detection delay (h)": float(np.mean(latencies)) if latencies else 0.0,
        "mean repair duration (h)": float(np.mean(repairs)) if repairs else 0.0,
        "data lost during trace": result.lost,
    }
    body = format_dict(summary, title="single-system trace summary")
    if latencies:
        body += "\n\n" + ascii_histogram(
            latencies, bins=8, title="latent-fault detection delays (hours)"
        )
    if repairs:
        body += "\n\n" + ascii_histogram(
            repairs, bins=8, title="repair durations (hours)"
        )
    experiment_printer("E9: Figure 1 — fault lifecycle from the simulator", body)

    # Figure 1's structural claim: latent faults wait a macroscopic time
    # for detection, while repair (for either type) is fast.
    assert latencies, "expected latent-fault detections in the trace"
    assert repairs, "expected completed repairs in the trace"
    assert np.mean(latencies) > 5 * np.mean(repairs)
    # Detection delay should be on the order of half the audit interval
    # (100-hour audits -> ~50-hour mean delay).
    assert 20.0 < np.mean(latencies) < 100.0
