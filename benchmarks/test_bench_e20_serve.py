"""Experiment E20: the serve layer's hot-path economics.

The serve layer exists so repeated Scenario questions stop paying the
engine: a persisted answer is a file read, an in-flight duplicate is a
future share, and compatible cold misses ride one vectorized kernel.
This benchmark measures that claim as a ratio with units that cancel:

* **cold latency** — one cold ``loss_probability`` query, engine and
  all (seconds per query);
* **hot throughput** — a 95%-hit workload (5% distinct cold scenarios,
  95% repeats) pushed through the service concurrently (queries per
  second).

The acceptance floor is ``throughput x cold_latency >= 50``: at a 95%
hit mix, the service must answer at least 50 queries in the time one
uncached engine run takes.  Single-flight gets its own assertion —
N identical concurrent submissions must trigger exactly one engine run,
checked against the service's own telemetry counters.

Results land in ``BENCH_e20.json``.
"""

import asyncio
from pathlib import Path

from _harness import time_best_of, write_artifact
from repro.analysis.tables import format_dict
from repro.core.parameters import FaultModel
from repro.serve import ResultStore, StudyService
from repro.study import EstimatorPolicy, Scenario, SystemSpec

ARTIFACT = Path(__file__).parent / "BENCH_e20.json"

#: Compressed-time operating point: losses are common at sub-year
#: missions, so the trial count — not rare-event waiting — sets the
#: engine cost.
MODEL = FaultModel(2500.0, 500.0, 1.0, 1.0, 25.0)

#: Heavy enough that one cold run is honest engine work (a vectorized
#: kernel pass), small enough that the benchmark stays in seconds.
TRIALS = 50_000

#: The hit-mix workload: DISTINCT cold scenarios, HOT_FACTOR repeats
#: each → a 1/(HOT_FACTOR) miss rate = 5%.
DISTINCT = 20
HOT_FACTOR = 20

#: The acceptance floor: hot queries answered per cold-latency unit.
THROUGHPUT_FLOOR = 50.0

SINGLE_FLIGHT_WAVE = 8


def scenario(mission: float, seed: int = 7) -> Scenario:
    return Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=mission,
        policy=EstimatorPolicy(engine="batch", trials=TRIALS, seed=seed),
    )


def cold_latency_seconds(tmp_path: Path) -> float:
    """One uncached query through the full service path, best of 3."""

    def one_cold(run_index: int) -> float:
        async def main():
            service = StudyService(
                store=ResultStore(tmp_path / f"cold{run_index}")
            )
            try:
                await service.submit(scenario(mission=0.5))
            finally:
                await service.close()

        asyncio.run(main())

    best = float("inf")
    for index in range(3):
        _, seconds = time_best_of(lambda: one_cold(index), repeats=1)
        best = min(best, seconds)
    return best


def hot_mix(tmp_path: Path):
    """The 95%-hit workload; returns (elapsed, answers, counters)."""
    missions = [0.1 + 0.1 * i for i in range(DISTINCT)]
    workload = [m for m in missions for _ in range(HOT_FACTOR)]

    async def main():
        service = StudyService(store=ResultStore(tmp_path / "mix"))
        try:
            # Prime exactly one scenario so the first wave is not all
            # cold, then fire the whole mixed workload concurrently:
            # repeats of in-flight misses share futures, distinct cold
            # misses coalesce onto batched kernel runs.
            await service.submit(scenario(mission=missions[0]))
            answers = await asyncio.gather(
                *[service.submit(scenario(mission=m)) for m in workload]
            )
            return answers, service.telemetry.snapshot().counters
        finally:
            await service.close()

    (answers, counters), elapsed = time_best_of(
        lambda: asyncio.run(main()), repeats=1
    )
    return elapsed, answers, counters


def single_flight_engine_runs() -> dict:
    """N identical concurrent submissions; count actual engine runs."""

    async def main():
        service = StudyService(batch_window=None)  # no store, no batching
        try:
            s = scenario(mission=0.5)
            await asyncio.gather(
                *[service.submit(s) for _ in range(SINGLE_FLIGHT_WAVE)]
            )
            return service.telemetry.snapshot().counters
        finally:
            await service.close()

    return asyncio.run(main())


def test_e20_serve_hot_path(tmp_path, experiment_printer):
    cold = cold_latency_seconds(tmp_path)

    elapsed, answers, counters = hot_mix(tmp_path)
    queries = len(answers)
    throughput = queries / elapsed
    ratio = throughput * cold

    served = {"store": 0, "inflight": 0, "engine": 0}
    for answer in answers:
        served[answer.served_from] += 1

    flight = single_flight_engine_runs()

    # -- acceptance ---------------------------------------------------------
    # The mix really was >= 95% non-engine answers...
    assert served["engine"] <= DISTINCT
    assert served["store"] + served["inflight"] >= queries - DISTINCT
    # ... and the hot path clears the floor: >= 50 mixed queries per
    # cold-latency unit.
    assert ratio >= THROUGHPUT_FLOOR, (
        f"hot-path ratio {ratio:.1f} below floor {THROUGHPUT_FLOOR}: "
        f"throughput {throughput:.0f}/s, cold latency {cold * 1e3:.1f} ms"
    )
    # Single-flight: one engine run for the whole identical wave.
    assert flight["serve.engine_runs"] == 1
    assert flight["serve.singleflight.shared"] == SINGLE_FLIGHT_WAVE - 1

    payload = {
        "experiment": "e20_serve",
        "model": MODEL.as_dict(),
        "trials": TRIALS,
        "workload": {
            "distinct_scenarios": DISTINCT,
            "repeats_per_scenario": HOT_FACTOR,
            "queries": queries,
            "served_from": served,
            "batch_flushes": counters.get("serve.batch.flushes", 0),
            "batched_members": counters.get("serve.batch.members", 0),
            "engine_runs": counters.get("serve.engine_runs", 0),
        },
        "cold_latency_seconds": cold,
        "hot_mix_seconds": elapsed,
        "throughput_per_second": throughput,
        "throughput_x_cold_latency": ratio,
        "floor": THROUGHPUT_FLOOR,
        "single_flight": {
            "wave": SINGLE_FLIGHT_WAVE,
            "engine_runs": flight["serve.engine_runs"],
            "shared": flight["serve.singleflight.shared"],
        },
    }
    write_artifact(ARTIFACT, payload)

    experiment_printer(
        "E20: serve hot path — throughput vs cold latency",
        format_dict(
            {
                "cold latency (ms)": cold * 1e3,
                "mixed queries": queries,
                "hit mix (%)": 100.0
                * (served["store"] + served["inflight"])
                / queries,
                "hot throughput (queries/s)": throughput,
                "throughput x cold latency": ratio,
                "floor": THROUGHPUT_FLOOR,
                "engine runs in mix": counters.get("serve.engine_runs", 0),
                "single-flight engine runs": flight["serve.engine_runs"],
            },
            title="serve layer economics",
        ),
    )
