"""Experiment E8: scrubbing frequency and on-line vs off-line auditing
(Sections 6.2-6.3).

Sweeps the audit rate from never to weekly and reports the achieved
detection latency and MTTDL (the paper's 3-scrubs-per-year point sits on
this curve), then compares disk and tape replicas at the audit rates
their economics allow.
"""

import pytest

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.sweep import sweep_audit_rate
from repro.analysis.tables import format_sweep, format_table
from repro.audit.online_offline import compare_online_offline
from repro.core.scenarios import cheetah_scrubbed_scenario
from repro.core.units import HOURS_PER_YEAR
from repro.storage.media import OFFLINE_TAPE, ONLINE_DISK

AUDIT_RATES = [0.0, 0.5, 1.0, 3.0, 6.0, 12.0, 26.0, 52.0]


def compute_scrub_sweep():
    model = cheetah_scrubbed_scenario().model
    return sweep_audit_rate(model, AUDIT_RATES)


@pytest.mark.benchmark(group="e8 scrubbing")
def test_bench_e8_scrub_rate_sweep(benchmark, experiment_printer):
    sweep = benchmark(compute_scrub_sweep)

    chart = ascii_line_chart(
        sweep.values[1:],
        sweep.metric("mttdl_years")[1:],
        title="MTTDL (years, log) vs audits per year",
        log_y=True,
    )
    experiment_printer(
        "E8: MTTDL vs audit (scrub) rate — paper's 3/year point highlighted",
        format_sweep(sweep, title="audit-rate sweep") + "\n\n" + chart,
    )

    years = dict(zip(sweep.values, sweep.metric("mttdl_years")))
    # No scrubbing: ~32 years (paper).  Three per year: thousands of years.
    assert years[0.0] == pytest.approx(32.0, rel=0.02)
    assert years[3.0] > 100 * years[0.0]
    # Diminishing but monotone returns.
    series = sweep.metric("mttdl_years")
    assert series == sorted(series)


@pytest.mark.benchmark(group="e8 scrubbing")
def test_bench_e8_disk_vs_tape(benchmark, experiment_printer):
    def compute():
        return compare_online_offline(
            ONLINE_DISK,
            OFFLINE_TAPE,
            online_audits_per_year=12.0,
            offline_audits_per_year=1.0,
        )

    comparison = benchmark(compute)
    rows = []
    for key, result in comparison.items():
        rows.append(
            [
                key,
                result.media_name,
                result.audits_per_year,
                result.mdl_hours,
                result.mttdl_years,
                result.annual_audit_cost,
                result.staff_hours_per_year,
            ]
        )
    experiment_printer(
        "E8 (part 2): disk vs tape replica at affordable audit rates (Section 6.2)",
        format_table(
            [
                "class",
                "media",
                "audits/yr",
                "MDL (h)",
                "MTTDL (yr)",
                "audit $/yr",
                "staff h/yr",
            ],
            rows,
        ),
    )

    # Paper Section 6.2's answer: replicate on disk, not tape.
    assert comparison["online"].mttdl_years > 5 * comparison["offline"].mttdl_years
    assert comparison["offline"].annual_audit_cost > comparison["online"].annual_audit_cost
