"""Experiment E15: the budget-constrained planner's two speed levers.

The optimizer promises to make design-space search cheap two ways:

1. **multi-fidelity screening** — the analytic screen must prune at
   least half of the candidate space before any Monte-Carlo runs, and
2. **parallel refinement** — evaluating the screening survivors across
   a process pool must beat the serial loop whenever more than one CPU
   is actually available (on a single-core host the pool can only add
   overhead, so there the check degrades to a bounded-overhead
   assertion).

Both runs must produce bit-identical refinements: per-candidate seeds
are spawned from the root seed, not from evaluation order.
"""

import time

import pytest

from _harness import available_cores, trial_years_per_second
from repro.analysis.tables import format_table
from repro.optimize import DesignSpace, EvaluationSettings, optimize

SPACE = DesignSpace(
    dataset_tb=50.0,
    media=("drive:barracuda", "drive:cheetah", "media:tape"),
    replica_counts=(2, 3),
    audit_rates=(0.0, 1.0, 12.0, 52.0),
    placements=("single", "multi"),
)

SETTINGS = EvaluationSettings(mission_years=50.0, trials=20_000, seed=15)

#: The analytic screen must remove at least this share of the space.
PRUNE_TARGET = 0.5

#: Worker processes for the parallel leg.
JOBS = 4

#: On a single-core host the pool cannot win; it must at least stay
#: within this factor of the serial loop (process startup + pickling).
SINGLE_CORE_OVERHEAD_LIMIT = 1.6


@pytest.mark.benchmark(group="e15 optimizer")
def test_bench_e15_optimizer(benchmark, experiment_printer):
    # Best-of-three on BOTH legs: one scheduling hiccup on a loaded
    # shared runner must not fake a pool regression (or a pool win).
    serial_runs = []
    for _ in range(3):
        start = time.perf_counter()
        serial = optimize(SPACE, SETTINGS, jobs=1)
        serial_runs.append(time.perf_counter() - start)
    serial_seconds = min(serial_runs)

    parallel_runs = []
    for _ in range(3):
        start = time.perf_counter()
        parallel = optimize(SPACE, SETTINGS, jobs=JOBS)
        parallel_runs.append(time.perf_counter() - start)
    parallel_seconds = min(parallel_runs)
    cores = available_cores()
    speedup = serial_seconds / parallel_seconds

    benchmark(lambda: optimize(SPACE, SETTINGS, jobs=1, refine_survivors=False))

    experiment_printer(
        f"E15: planner screening + parallel refinement "
        f"({SPACE.size} candidates, {cores} cores)",
        format_table(
            ["stage", "candidates", "seconds"],
            [
                ["analytic screen (all)", serial.candidates, "-"],
                ["pruned by screen", serial.pruned, "-"],
                ["refined serially", len(serial.refined), serial_seconds],
                [f"refined with {JOBS} jobs", len(parallel.refined), parallel_seconds],
            ],
        )
        + f"\npruned fraction: {serial.pruned_fraction:.0%} (target >= {PRUNE_TARGET:.0%})"
        + f"\nparallel speedup: {speedup:.2f}x"
        + "\nrefinement throughput: "
        f"{trial_years_per_second(len(serial.refined) * SETTINGS.trials, SETTINGS.mission_years, serial_seconds):,.0f}"
        " trial-yr/s serial, "
        f"{trial_years_per_second(len(parallel.refined) * SETTINGS.trials, SETTINGS.mission_years, parallel_seconds):,.0f}"
        f" trial-yr/s with {JOBS} jobs",
    )

    # Screening must do at least half the work analytically.
    assert serial.pruned_fraction >= PRUNE_TARGET

    # Serial and parallel refinement are the same computation: identical
    # survivors, identical per-candidate seeds, identical estimates.
    assert [e.candidate.key() for e in serial.refined] == [
        e.candidate.key() for e in parallel.refined
    ]
    assert [e.simulated.as_dict() for e in serial.refined] == [
        e.simulated.as_dict() for e in parallel.refined
    ]

    # The pool must pay off wherever it can possibly pay off.
    if cores > 1:
        assert parallel_seconds < serial_seconds
    else:
        assert parallel_seconds < serial_seconds * SINGLE_CORE_OVERHEAD_LIMIT
