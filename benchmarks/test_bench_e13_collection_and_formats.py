"""Experiment E13 (extension): collection-scale losses and format risk.

The paper argues two collection-level points without working the
numbers: (a) archival objects are accessed far too rarely for
access-triggered checking to protect them, and (b) the same
detect-early/repair-fast logic applies one layer up to format
obsolescence.  This extension experiment quantifies both with the
collection and migration models built on top of the core machinery.
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.migration import (
    CAMERA_RAW,
    OPEN_DOCUMENT_FORMAT,
    probability_uninterpretable,
    proprietary_penalty,
)
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.storage.archive import (
    ArchiveCollection,
    access_based_detection_is_sufficient,
    collection_reliability,
)

COLLECTION = ArchiveCollection(
    object_count=10_000_000,
    mean_object_size_mb=2.0,
    accesses_per_object_year=0.05,
    replicas=2,
)

OBJECT_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=1460.0,
    correlation_factor=1.0,
)

AUDIT_POLICIES = [
    ("never audited", 0.0),
    ("on user access only", None),
    ("audited yearly", 1.0),
    ("audited 3x/year", 3.0),
    ("audited monthly", 12.0),
]


def compute_collection_losses():
    results = {}
    for label, audits_per_year in AUDIT_POLICIES:
        if audits_per_year is None:
            mdl = COLLECTION.mean_access_interval_hours
        elif audits_per_year == 0.0:
            mdl = OBJECT_MODEL.mean_time_to_latent
        else:
            mdl = HOURS_PER_YEAR / audits_per_year / 2.0
        mdl = min(mdl, OBJECT_MODEL.mean_time_to_latent)
        reliability = collection_reliability(
            COLLECTION, OBJECT_MODEL.with_detection_time(mdl)
        )
        results[label] = reliability
    return results


@pytest.mark.benchmark(group="e13 collection")
def test_bench_e13_collection_losses(benchmark, experiment_printer):
    results = benchmark(compute_collection_losses)

    rows = [
        [
            label,
            reliability.per_object_loss_probability,
            reliability.expected_objects_lost,
        ]
        for label, reliability in results.items()
    ]
    experiment_printer(
        "E13: expected 50-year object losses in a 10M-object archive",
        format_table(
            ["audit policy", "P(object lost)", "expected objects lost"], rows
        ),
    )

    # Access-triggered checking is barely better than never auditing, and
    # orders of magnitude worse than modest proactive scrubbing.
    never = results["never audited"].expected_objects_lost
    on_access = results["on user access only"].expected_objects_lost
    scrubbed = results["audited 3x/year"].expected_objects_lost
    assert on_access > 0.5 * never
    assert scrubbed < on_access / 10.0
    assert not access_based_detection_is_sufficient(COLLECTION, OBJECT_MODEL)


@pytest.mark.benchmark(group="e13 collection")
def test_bench_e13_format_risk(benchmark, experiment_printer):
    def compute():
        review_rates = [0.0, 0.5, 1.0, 4.0]
        table = {}
        for risk in (CAMERA_RAW, OPEN_DOCUMENT_FORMAT):
            table[risk.name] = [
                probability_uninterpretable(risk, rate) for rate in review_rates
            ]
        penalty = proprietary_penalty(CAMERA_RAW, OPEN_DOCUMENT_FORMAT)
        return review_rates, table, penalty

    review_rates, table, penalty = benchmark(compute)
    rows = [
        [name] + values for name, values in table.items()
    ]
    experiment_printer(
        "E13 (part 2): probability of uninterpretable data vs format-review rate",
        format_table(
            ["format"] + [f"{rate:g} reviews/yr" for rate in review_rates], rows
        )
        + f"\n\nproprietary-format penalty at yearly reviews: {penalty:.1f}x",
    )

    # More frequent reviews monotonically reduce the risk, and the
    # proprietary format is several times worse at every cadence.
    for values in table.values():
        assert values == sorted(values, reverse=True)
    assert penalty > 2.0
