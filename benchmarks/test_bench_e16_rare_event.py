"""Experiment E16: rare-event acceleration vs brute-force Monte-Carlo.

The paper's realistic operating points are exactly where plain
Monte-Carlo censors to death: a daily-scrubbed Cheetah mirror loses
data with probability ~1.7e-4 over a 50-year mission, so reaching a 10%
relative error costs ~600k standard trials — while failure-biased
importance sampling (PR 3) gets there in a few thousand weighted
trials.  This benchmark measures the trials-to-target-RE ratio at that
high-reliability point (acceptance: >= 20x), checks the IS confidence
interval covers the exact Markov-chain value, cross-validates IS
against plain Monte-Carlo at a moderate operating point where both
converge, and records the numbers in ``BENCH_e16.json`` so the perf
trajectory is an artifact, not a commit-message claim.
"""

import time
from pathlib import Path

import pytest

from _harness import (
    standard_trials_to_target,
    trial_years_per_second,
    write_artifact,
)
from repro.analysis.tables import format_table
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import build_mirrored_chain
from repro.markov.transient import loss_probability_over_time
from repro.simulation.batch import simulate_batch
from repro.simulation.monte_carlo import estimate_loss_probability
from repro.simulation.rare_event import default_failure_bias

#: Daily-scrubbed Cheetah mirrored pair: MTTDL in the hundreds of
#: thousands of years, the regime the paper's conclusions live in.
RARE_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=12.0,
    correlation_factor=1.0,
)

#: The paper's scrubbed Cheetah pair (~2% mission loss): moderate
#: enough that plain Monte-Carlo converges for a cross-check.
MODERATE_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=1460.0,
    correlation_factor=1.0,
)

MISSION = 50.0 * HOURS_PER_YEAR
TARGET_RELATIVE_ERROR = 0.1
SPEEDUP_TARGET = 20.0
ARTIFACT = Path("BENCH_e16.json")


@pytest.mark.benchmark(group="e16 rare-event acceleration")
def test_bench_e16_rare_event(benchmark, experiment_printer):
    exact = loss_probability_over_time(build_mirrored_chain(RARE_MODEL), MISSION)
    bias = default_failure_bias(RARE_MODEL, 2, MISSION)

    # Importance sampling: adaptive run to the target relative error.
    start = time.perf_counter()
    weighted = estimate_loss_probability(
        RARE_MODEL,
        mission_time=MISSION,
        trials=2000,
        seed=16,
        method="is",
        target_relative_error=TARGET_RELATIVE_ERROR,
        max_trials=128000,
    )
    is_seconds = time.perf_counter() - start
    is_trials = weighted.trials

    # What the standard estimator would need for the same precision
    # (deterministic, from the exact loss probability), and what it
    # actually sees in the trial budget IS used.
    std_trials_needed = standard_trials_to_target(exact, TARGET_RELATIVE_ERROR)
    std_same_budget = simulate_batch(
        RARE_MODEL, trials=is_trials, horizon=MISSION, seed=16
    )
    trials_ratio = std_trials_needed / is_trials

    # Moderate operating point: both estimators converge and must agree.
    moderate_exact = loss_probability_over_time(
        build_mirrored_chain(MODERATE_MODEL), MISSION
    )
    moderate_standard = estimate_loss_probability(
        MODERATE_MODEL,
        mission_time=MISSION,
        trials=4000,
        seed=16,
        backend="batch",
        method="standard",
    )
    moderate_weighted = estimate_loss_probability(
        MODERATE_MODEL, mission_time=MISSION, trials=4000, seed=16, method="is"
    )

    benchmark(
        lambda: estimate_loss_probability(
            RARE_MODEL, mission_time=MISSION, trials=2000, seed=16, method="is"
        )
    )

    low, high = weighted.confidence_interval()
    moderate_std_low, moderate_std_high = moderate_standard.confidence_interval()
    moderate_is_low, moderate_is_high = moderate_weighted.confidence_interval()

    payload = {
        "experiment": "e16_rare_event",
        "mission_years": 50.0,
        "target_relative_error": TARGET_RELATIVE_ERROR,
        "high_reliability": {
            "model": RARE_MODEL.as_dict(),
            "markov_exact_loss": exact,
            "bias": bias,
            "is_trials": is_trials,
            "is_mean": weighted.mean,
            "is_ci": [low, high],
            "is_relative_error": weighted.relative_error,
            "is_effective_sample_size": weighted.effective_sample_size,
            "is_seconds": is_seconds,
            "is_trial_years_per_second": trial_years_per_second(
                is_trials, 50.0, is_seconds
            ),
            "standard_trials_needed": std_trials_needed,
            "standard_losses_in_is_budget": std_same_budget.losses,
            "trials_ratio": trials_ratio,
        },
        "moderate": {
            "model": MODERATE_MODEL.as_dict(),
            "markov_exact_loss": moderate_exact,
            "standard_mean": moderate_standard.mean,
            "standard_ci": [moderate_std_low, moderate_std_high],
            "is_mean": moderate_weighted.mean,
            "is_ci": [moderate_is_low, moderate_is_high],
        },
    }
    write_artifact(ARTIFACT, payload)

    experiment_printer(
        "E16: importance sampling vs standard Monte-Carlo "
        f"(target {TARGET_RELATIVE_ERROR:.0%} relative error)",
        format_table(
            ["estimator", "trials to target", "P(loss, 50yr)", "losses seen"],
            [
                ["standard", std_trials_needed, exact, std_same_budget.losses],
                ["importance sampling", is_trials, weighted.mean, weighted.losses],
            ],
        )
        + f"\nexact (Markov): {exact:.4g}   bias factor: {bias:.0f}"
        + f"\ntrials ratio: {trials_ratio:.0f}x (target >= {SPEEDUP_TARGET:.0f}x)"
        + "\nIS throughput: "
        f"{trial_years_per_second(is_trials, 50.0, is_seconds):,.0f} trial-yr/s"
        + f"\nartifact: {ARTIFACT}",
    )

    # The IS run must actually reach the target precision...
    assert weighted.relative_error <= TARGET_RELATIVE_ERROR
    # ...with its CI covering the exact Markov-chain value...
    assert low <= exact <= high
    # ...at >= 20x fewer trials than the standard estimator needs...
    assert trials_ratio >= SPEEDUP_TARGET
    # ...while the standard estimator, given the same budget, sees far
    # too few losses to converge (the censoring-to-death regime).
    assert std_same_budget.losses < 1.0 / TARGET_RELATIVE_ERROR**2
    # At the moderate operating point the two estimators agree within
    # overlapping 95% confidence intervals (and both cover the chain).
    assert moderate_standard.losses > 0
    assert moderate_is_low <= moderate_std_high
    assert moderate_std_low <= moderate_is_high
    assert moderate_std_low <= moderate_exact <= moderate_std_high
