"""Experiment E7: consumer vs enterprise drives (Section 6.1).

Barracuda vs Cheetah: in-service fault probability (7% vs 3%),
irrecoverable bit errors over a 99%-idle 5-year life (paper: ~8 vs ~6),
and the ~14x cost-per-byte premium.  The paper's conclusion: for
archival workloads the premium buys too little — more independent
consumer replicas win.
"""

import pytest

from repro.analysis.tables import format_dict, format_table
from repro.storage.bit_errors import (
    bit_error_comparison,
    consumer_replicas_affordable,
    expected_bit_errors,
)
from repro.storage.costs import compare_drive_costs
from repro.storage.drives import BARRACUDA_ST3200822A, CHEETAH_15K4


def compute_comparison():
    return bit_error_comparison(BARRACUDA_ST3200822A, CHEETAH_15K4)


@pytest.mark.benchmark(group="e7 drive comparison")
def test_bench_e7_drive_comparison(benchmark, experiment_printer):
    comparison = benchmark(compute_comparison)

    barracuda = expected_bit_errors(BARRACUDA_ST3200822A)
    cheetah = expected_bit_errors(CHEETAH_15K4)
    rows = [
        [
            "Barracuda ST3200822A (consumer)",
            0.07,
            f"{barracuda.expected_bit_errors:.1f} (paper ~8)",
            0.57,
        ],
        [
            "Cheetah 15K.4 (enterprise)",
            0.03,
            f"{cheetah.expected_bit_errors:.1f} (paper ~6)",
            8.20,
        ],
    ]
    table = format_table(
        ["drive", "5-yr fault prob", "bit errors (5 yr, 99% idle)", "$/GB"], rows
    )
    costs = compare_drive_costs(
        BARRACUDA_ST3200822A, CHEETAH_15K4, dataset_tb=10.0,
        consumer_replicas=4, enterprise_replicas=2,
    )
    replicas = consumer_replicas_affordable(
        BARRACUDA_ST3200822A, CHEETAH_15K4, dataset_gb=1000.0
    )
    experiment_printer(
        "E7: Section 6.1 consumer vs enterprise drive comparison",
        table
        + "\n\n"
        + format_dict(comparison, title="ratios")
        + "\n\n"
        + format_dict(costs, title="4 consumer replicas vs 2 enterprise replicas, 10 TB")
        + f"\n\nconsumer replicas affordable for the enterprise budget: {replicas:.1f}",
    )

    # Paper's shape: ~14x the cost for ~half the fault probability and a
    # same-order bit error count.
    assert comparison["cost_per_gb_ratio"] == pytest.approx(14.4, abs=0.5)
    assert comparison["fault_probability_ratio"] == pytest.approx(7.0 / 3.0, rel=0.01)
    assert 1.0 < comparison["bit_error_ratio"] < 4.0
    assert 2.0 <= barracuda.expected_bit_errors <= 10.0
    assert 2.0 <= cheetah.expected_bit_errors <= 10.0
    # More consumer replicas cost less than fewer enterprise replicas.
    assert costs["cost_ratio_enterprise_to_consumer"] > 1.5
