"""Experiment E11: cross-validation of the closed forms, the CTMC, and
Monte-Carlo simulation.

The paper publishes closed-form approximations without a simulator; this
experiment provides the validation its Section 6.7 calls for.  Known,
documented bookkeeping differences (single- vs both-copy first-fault
counting, capped windows vs detection races) bound the spread between
methods.
"""

import pytest

from repro.analysis.compare import compare_models
from repro.analysis.tables import format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.scenarios import paper_scenarios
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.monte_carlo import estimate_mttdl

#: Compressed-time model for the Monte-Carlo leg of the validation.
FAST_MODEL = FaultModel(
    mean_time_to_visible=2500.0,
    mean_time_to_latent=500.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=25.0,
    correlation_factor=1.0,
)


def compute_scenario_comparison():
    return {
        name: compare_models(scenario.model).in_years()
        for name, scenario in paper_scenarios().items()
    }


@pytest.mark.benchmark(group="e11 validation")
def test_bench_e11_analytic_vs_markov(benchmark, experiment_printer):
    comparisons = benchmark(compute_scenario_comparison)

    headers = [
        "scenario",
        "Eq.7 capped (yr)",
        "exact windows (yr)",
        "closed form (yr)",
        "Markov (yr)",
        "Markov, paper conv. (yr)",
    ]
    rows = []
    for name, values in comparisons.items():
        rows.append(
            [
                name,
                values["analytic_capped"],
                values["analytic_exact_windows"],
                values["closed_form_approximation"],
                values["markov"],
                values["markov_paper_convention"],
            ]
        )
    experiment_printer(
        "E11: analytic vs Markov MTTDL across the paper's operating points",
        format_table(headers, rows),
    )

    for name, values in comparisons.items():
        # The paper-convention chain and the capped Eq. 7 must agree
        # closely in the scrubbed regimes and within the documented
        # factor elsewhere.
        ratio = values["markov_paper_convention"] / values["analytic_capped"]
        assert 0.3 < ratio < 3.5, name
        # The physically-exact chain differs by at most the documented
        # factor-of-two convention plus detection-race effects.
        ratio_physical = values["markov"] / values["analytic_capped"]
        assert 0.2 < ratio_physical < 3.0, name


@pytest.mark.benchmark(group="e11 validation")
def test_bench_e11_monte_carlo_leg(benchmark, experiment_printer):
    def compute():
        analytic = mirrored_mttdl(FAST_MODEL)
        markov = compare_models(FAST_MODEL).markov
        estimate = estimate_mttdl(FAST_MODEL, trials=200, seed=3, max_time=5e6)
        return analytic, markov, estimate

    analytic, markov, estimate = benchmark(compute)
    experiment_printer(
        "E11 (part 2): Monte-Carlo vs analytic on a compressed-time model",
        format_table(
            ["method", "MTTDL (years)"],
            [
                ["Eq. 7 (capped)", analytic / HOURS_PER_YEAR],
                ["Markov chain", markov / HOURS_PER_YEAR],
                ["Monte-Carlo (200 trials)", estimate.mean / HOURS_PER_YEAR],
                ["Monte-Carlo std error", estimate.std_error / HOURS_PER_YEAR],
            ],
        ),
    )

    # The simulator implements the same physics as the Markov chain, so
    # the two should agree within Monte-Carlo noise; the closed form
    # stays within its documented factor.
    assert estimate.mean == pytest.approx(markov, rel=0.25)
    assert 0.2 < estimate.mean / analytic < 3.0
    assert estimate.censored == 0
