"""Experiment E12: strategy ablation (Sections 6.4-6.5).

Quantifies the paper's qualitative strategy ranking: detect latent
faults quickly, automate repair, and increase independence — and shows
replication *without* independence underperforming independence-first
designs.  Also covers the single-site RAID vs cross-site mirror question
and the correlation-model ablation (multiplicative alpha vs Chen-style
correlated MTTF).
"""

import pytest

from repro.analysis.tables import format_table
from repro.baselines.chen import chen_vs_alpha_model
from repro.core.replication import replicated_mttdl
from repro.core.scenarios import cheetah_scrubbed_scenario
from repro.core.strategies import Strategy, rank_strategies
from repro.core.units import HOURS_PER_YEAR
from repro.storage.raid import raid5_mttdl, raid_with_latent_faults_mttdl
from repro.storage.site import (
    assess_independence,
    diversified_placement,
    single_site_placement,
)


def compute_strategy_ranking():
    model = cheetah_scrubbed_scenario().model.with_correlation(0.5)
    return rank_strategies(model, factor=2.0)


@pytest.mark.benchmark(group="e12 strategies")
def test_bench_e12_strategy_ranking(benchmark, experiment_printer):
    ranked = benchmark(compute_strategy_ranking)

    rows = [
        [
            outcome.strategy.value,
            outcome.factor,
            outcome.baseline_mttdl_years,
            outcome.improved_mttdl_years,
            outcome.improvement_ratio,
        ]
        for outcome in ranked
    ]
    experiment_printer(
        "E12: improvement from doubling each Section 6 lever "
        "(scrubbed Cheetah pair, alpha=0.5)",
        format_table(
            ["strategy", "factor", "baseline (yr)", "improved (yr)", "gain"], rows
        ),
    )

    gains = {outcome.strategy: outcome.improvement_ratio for outcome in ranked}
    # The paper's conclusions: detection latency, repair automation and
    # independence are the levers that matter in the latent-dominated
    # regime; upgrading visible-fault hardware barely moves the needle.
    assert gains[Strategy.REDUCE_MDL] > gains[Strategy.INCREASE_MV]
    assert gains[Strategy.INCREASE_INDEPENDENCE] > gains[Strategy.INCREASE_MV]
    assert gains[Strategy.INCREASE_ML] > gains[Strategy.INCREASE_MV]


@pytest.mark.benchmark(group="e12 strategies")
def test_bench_e12_replication_vs_independence(benchmark, experiment_printer):
    def compute():
        model = cheetah_scrubbed_scenario().model
        combined_mean = 1.0 / model.total_fault_rate
        mrv = model.mean_repair_visible
        correlated_alpha = assess_independence(
            single_site_placement(3)
        ).effective_alpha
        independent_alpha = assess_independence(
            diversified_placement(2)
        ).effective_alpha
        three_colocated = replicated_mttdl(combined_mean, mrv, 3, correlated_alpha)
        two_diversified = replicated_mttdl(combined_mean, mrv, 2, independent_alpha)
        return correlated_alpha, independent_alpha, three_colocated, two_diversified

    correlated_alpha, independent_alpha, three_colocated, two_diversified = benchmark(
        compute
    )
    experiment_printer(
        "E12 (part 2): more replicas vs more independence",
        format_table(
            ["design", "replicas", "effective alpha", "MTTDL (yr)"],
            [
                [
                    "single machine room",
                    3,
                    correlated_alpha,
                    three_colocated / HOURS_PER_YEAR,
                ],
                [
                    "two independent sites",
                    2,
                    independent_alpha,
                    two_diversified / HOURS_PER_YEAR,
                ],
            ],
        ),
    )
    # Two well-separated replicas beat three co-located ones.
    assert two_diversified > three_colocated


@pytest.mark.benchmark(group="e12 strategies")
def test_bench_e12_raid_and_correlation_ablation(benchmark, experiment_printer):
    def compute():
        mttf, mttr = 1.4e6, 24.0
        clean_raid5 = raid5_mttdl(mttf, mttr, 8)
        latent_raid5 = raid_with_latent_faults_mttdl(mttf, mttr, 8, latent_mttf=2.8e5)
        chen = chen_vs_alpha_model(
            cheetah_scrubbed_scenario().model, correlated_second_mttf=1.4e5
        )
        return clean_raid5, latent_raid5, chen

    clean_raid5, latent_raid5, chen = benchmark(compute)
    experiment_printer(
        "E12 (part 3): RAID-5 with latent faults, and the correlation-model ablation",
        format_table(
            ["model", "MTTDL (yr)"],
            [
                ["RAID-5 (visible faults only)", clean_raid5 / HOURS_PER_YEAR],
                ["RAID-5 with latent faults", latent_raid5 / HOURS_PER_YEAR],
                ["Chen-style correlated mirror", chen["chen_mttdl_hours"] / HOURS_PER_YEAR],
                [
                    "paper model at implied alpha",
                    chen["paper_model_mttdl_hours"] / HOURS_PER_YEAR,
                ],
            ],
        ),
    )
    # Latent faults demolish the classic RAID-5 reliability claim.
    assert latent_raid5 < clean_raid5 / 10
    # The latent-aware paper model is strictly more pessimistic than the
    # visible-only Chen model at the same implied correlation.
    assert chen["paper_model_mttdl_hours"] < chen["chen_mttdl_hours"]
