"""Experiment E19: the kernel speed floor and variance-reduced estimators.

Two fronts of the same question — how many trial-years of Monte-Carlo
does one second of wall clock buy?

1. **Execution floor** — the e17 fleet workload (2,000 scrubbed Cheetah
   mirrored pairs over 50 years) run twice: a baseline pinned to the
   interpreted NumPy select path, serial, with pickled chunk transport;
   and the optimized configuration — numba-compiled select kernel when
   numba is installed, all available cores, shared-memory chunk
   transport.  Both runs must produce bit-identical tallies (the
   compiled kernel and the shm transport are pure execution changes).
   The >= 10x acceptance target applies where the optimized
   configuration can actually exist (numba importable and >= 4 cores);
   elsewhere the check degrades to a bounded no-regression floor.

2. **Statistical floor** — at the e16 high-reliability operating point
   (daily-scrubbed Cheetah mirror, P(loss, 50yr) ~ 1.7e-4) the
   conditional-Monte-Carlo control variate must reach the 10% relative
   error target with >= 5x fewer trials than the standard binomial
   estimator needs, with its estimate anchored to the exact Markov
   chain.  The scrambled-Sobol QMC estimator is reported alongside when
   scipy is available.

Everything lands in ``BENCH_e19.json`` so the speed floor is an
artifact, not a commit-message claim.
"""

from pathlib import Path

import pytest

from _harness import (
    available_cores,
    standard_trials_to_target,
    time_best_of,
    trial_years_per_second,
    write_artifact,
)
from repro.analysis.tables import format_table
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.fleet import simulate_fleet, stationary_timeline
from repro.markov.builders import build_mirrored_chain
from repro.markov.transient import loss_probability_over_time
from repro.simulation._kernels import NUMBA_AVAILABLE, force_fused
from repro.simulation.variance_reduction import (
    SCIPY_QMC_AVAILABLE,
    cv_loss_probability,
    qmc_loss_probability,
)

#: The e17 fleet workload: the paper's scrubbed Cheetah mirrored pair.
MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=1460.0,
    correlation_factor=1.0,
)

#: The e16 high-reliability point (daily scrubbing) for the estimators.
RARE_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=12.0,
    correlation_factor=1.0,
)

MEMBERS = 2000
YEARS = 50.0
MISSION = YEARS * HOURS_PER_YEAR
TARGET_RELATIVE_ERROR = 0.1

#: Compiled kernel + shm + all cores must deliver this where it exists.
SPEEDUP_TARGET = 10.0
#: Where it cannot exist (no numba / too few cores), the optimized
#: configuration must at least not regress past timing noise.
NO_REGRESSION_FLOOR = 0.75
#: The control variate must beat the standard estimator's trial count
#: to the same relative error by at least this factor.
CV_TRIALS_RATIO_TARGET = 5.0

ARTIFACT = Path("BENCH_e19.json")


def _timed_fleet(jobs, transport, fused):
    """Best-of-three fleet run with the select kernel pinned."""
    force_fused(fused)
    try:
        return time_best_of(
            lambda: simulate_fleet(
                stationary_timeline(MODEL, YEARS),
                MEMBERS,
                seed=19,
                jobs=jobs,
                transport=transport,
            )
        )
    finally:
        force_fused(None)


@pytest.mark.benchmark(group="e19 kernel speed floor")
def test_bench_e19_kernel_floor(benchmark, experiment_printer):
    cores = available_cores()

    # --- front 1: execution floor on the e17 fleet workload ---------
    baseline, baseline_seconds = _timed_fleet(
        jobs=1, transport="pickle", fused=False
    )
    optimized, optimized_seconds = _timed_fleet(
        jobs=cores, transport="shm", fused=True if NUMBA_AVAILABLE else None
    )
    speedup = baseline_seconds / optimized_seconds
    baseline_typs = trial_years_per_second(MEMBERS, YEARS, baseline_seconds)
    optimized_typs = trial_years_per_second(MEMBERS, YEARS, optimized_seconds)

    benchmark(
        lambda: simulate_fleet(
            stationary_timeline(MODEL, YEARS), MEMBERS, seed=19
        )
    )

    # --- front 2: statistical floor at the rare operating point -----
    exact = loss_probability_over_time(
        build_mirrored_chain(RARE_MODEL), MISSION
    )
    cv_estimate, cv_seconds = time_best_of(
        lambda: cv_loss_probability(
            RARE_MODEL,
            mission_time=MISSION,
            trials=2000,
            seed=19,
            target_relative_error=TARGET_RELATIVE_ERROR,
            max_trials=128_000,
        ),
        repeats=1,
    )
    std_trials_needed = standard_trials_to_target(
        exact, TARGET_RELATIVE_ERROR
    )
    cv_trials_ratio = std_trials_needed / cv_estimate.trials

    qmc_record = None
    if SCIPY_QMC_AVAILABLE:
        qmc_estimate, qmc_seconds = time_best_of(
            lambda: qmc_loss_probability(
                RARE_MODEL, mission_time=MISSION, trials=16_384, seed=19
            ),
            repeats=1,
        )
        qmc_low, qmc_high = qmc_estimate.confidence_interval()
        qmc_record = {
            "trials": qmc_estimate.trials,
            "mean": qmc_estimate.mean,
            "std_error": qmc_estimate.std_error,
            "ci": [qmc_low, qmc_high],
            "seconds": qmc_seconds,
        }

    cv_low, cv_high = cv_estimate.confidence_interval()
    payload = {
        "experiment": "e19_kernel_floor",
        "numba": NUMBA_AVAILABLE,
        "scipy_qmc": SCIPY_QMC_AVAILABLE,
        "cores": cores,
        "fleet": {
            "model": MODEL.as_dict(),
            "members": MEMBERS,
            "years": YEARS,
            "baseline_seconds": baseline_seconds,
            "optimized_seconds": optimized_seconds,
            "speedup": speedup,
            "baseline_trial_years_per_second": baseline_typs,
            "optimized_trial_years_per_second": optimized_typs,
        },
        "variance_reduction": {
            "model": RARE_MODEL.as_dict(),
            "markov_exact_loss": exact,
            "target_relative_error": TARGET_RELATIVE_ERROR,
            "standard_trials_needed": std_trials_needed,
            "cv_trials": cv_estimate.trials,
            "cv_mean": cv_estimate.mean,
            "cv_std_error": cv_estimate.std_error,
            "cv_ci": [cv_low, cv_high],
            "cv_seconds": cv_seconds,
            "cv_trials_ratio": cv_trials_ratio,
            "qmc": qmc_record,
        },
    }
    write_artifact(ARTIFACT, payload)

    rows = [
        ["baseline (NumPy, pickle, 1 job)", baseline_seconds, baseline_typs],
        [
            f"optimized (numba={NUMBA_AVAILABLE}, shm, {cores} jobs)",
            optimized_seconds,
            optimized_typs,
        ],
    ]
    qmc_line = (
        "\nQMC (scrambled Sobol): "
        f"{qmc_record['mean']:.3e} +/- {qmc_record['std_error']:.1e} "
        f"at {qmc_record['trials']} trials"
        if qmc_record
        else "\nQMC: scipy.stats.qmc unavailable, leg skipped"
    )
    experiment_printer(
        f"E19: kernel speed floor at {MEMBERS} members x {YEARS:g} years "
        f"({cores} cores)",
        format_table(["configuration", "seconds", "trial-yr/s"], rows)
        + f"\nexecution speedup: {speedup:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x where numba + >= 4 cores)"
        + f"\nCV trials to {TARGET_RELATIVE_ERROR:.0%} RE: "
        f"{cv_estimate.trials} vs {std_trials_needed} standard "
        f"({cv_trials_ratio:.0f}x, target >= "
        f"{CV_TRIALS_RATIO_TARGET:.0f}x)"
        + qmc_line
        + f"\nartifact: {ARTIFACT}",
    )

    # Pure execution changes: the tallies must be bit-identical.
    assert baseline.tally.as_dict() == optimized.tally.as_dict()

    # The execution floor, where the optimized configuration exists.
    if NUMBA_AVAILABLE and cores >= 4:
        assert speedup >= SPEEDUP_TARGET
    else:
        assert speedup >= NO_REGRESSION_FLOOR

    # The statistical floor is unconditional: the control variate must
    # reach the target precision...
    assert cv_estimate.std_error <= TARGET_RELATIVE_ERROR * cv_estimate.mean
    # ...with >= 5x fewer trials than the standard estimator needs...
    assert cv_trials_ratio >= CV_TRIALS_RATIO_TARGET
    # ...while staying anchored to the exact Markov chain.
    assert abs(cv_estimate.mean - exact) <= 4.0 * cv_estimate.std_error

    assert ARTIFACT.exists()
