"""Shared timing and reporting helpers for the benchmark harness.

Every perf benchmark (e14-e19) used to re-implement the same four
idioms: best-of-N wall-clock timing so one scheduling hiccup on a loaded
runner cannot fake a regression, 95%-CI overlap checks for statistical
agreement, core-count detection for gating parallel speedup assertions,
and the binomial trials-to-target-relative-error formula.  They live
here once, together with the harness's common throughput currency:
**trial-years per second** — how many simulated system-years of
Monte-Carlo the kernel advances per wall-clock second — which every
benchmark reports so the speed floor is comparable across experiments.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, Tuple


def time_best_of(fn: Callable[[], object], repeats: int = 3) -> Tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (first result, best seconds).

    Best-of-N is the harness's standard defence against scheduling
    noise: the minimum wall time is the closest observable to the code's
    actual cost on a shared runner.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    result: object = None
    best = math.inf
    for attempt in range(repeats):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if attempt == 0:
            result = out
        best = min(best, elapsed)
    return result, best


def intervals_overlap(
    a_low: float, a_high: float, b_low: float, b_high: float
) -> bool:
    """Whether two confidence intervals share any point."""
    return a_low <= b_high and b_low <= a_high


def available_cores() -> int:
    """CPU cores this process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def standard_trials_to_target(p: float, relative_error: float) -> int:
    """Trials a binomial estimator needs to reach a relative error."""
    return math.ceil((1.0 - p) / (p * relative_error**2))


def trial_years_per_second(trials: int, years: float, seconds: float) -> float:
    """Simulated system-years advanced per wall-clock second.

    The harness's common throughput currency: ``trials`` Monte-Carlo
    systems, each simulated over a ``years`` horizon, in ``seconds`` of
    wall time.
    """
    if seconds <= 0:
        return math.inf
    return trials * years / seconds


def write_artifact(path: Path, payload: Dict[str, object]) -> None:
    """Write one benchmark's JSON artifact (the perf trajectory record)."""
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
