"""Experiment E5: the plausible range of the correlation factor.

The paper bounds ``α`` below by requiring the correlated mean time to a
second visible fault to exceed ten recovery times, giving roughly 2e-6
for the Cheetah parameters — a plausible range of at least five orders
of magnitude — and shows MTTDL scales linearly across that whole range.
"""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.sweep import sweep_correlation
from repro.analysis.tables import format_sweep
from repro.core.scenarios import cheetah_scrubbed_scenario
from repro.core.strategies import alpha_lower_bound, alpha_range_orders_of_magnitude


def compute_alpha_sweep():
    model = cheetah_scrubbed_scenario().model
    lower = alpha_lower_bound(model)
    alphas = list(np.logspace(np.log10(lower), 0.0, 13))
    sweep = sweep_correlation(model, alphas)
    return lower, alpha_range_orders_of_magnitude(model), sweep


@pytest.mark.benchmark(group="e5 alpha range")
def test_bench_e5_alpha_range(benchmark, experiment_printer):
    lower, orders, sweep = benchmark(compute_alpha_sweep)

    chart = ascii_line_chart(
        [np.log10(a) for a in sweep.values],
        sweep.metric("mttdl_years"),
        title="MTTDL (years, log scale) vs log10(alpha)",
        log_y=True,
    )
    experiment_printer(
        "E5: correlation-factor range (paper: alpha in [~2e-6, 1], >= 5 orders)",
        f"alpha lower bound      : {lower:.3e}  (paper: ~2e-6)\n"
        f"orders of magnitude    : {orders:.2f} (paper: at least 5)\n\n"
        + format_sweep(sweep, title="MTTDL vs alpha")
        + "\n\n"
        + chart,
    )

    assert lower == pytest.approx(2.4e-6, rel=0.05)
    assert orders >= 5.0
    # MTTDL is monotone in alpha across the whole range, and scales
    # linearly while the windows of vulnerability stay small (for very
    # small alpha the capped Eq. 7 saturates — every first fault then
    # cascades, which is itself a paper conclusion: heavy correlation
    # negates the benefit of mirroring entirely).
    years = sweep.metric("mttdl_years")
    assert years == sorted(years)
    top_alpha = sweep.values[-1]
    mid_alpha = sweep.values[-3]
    assert years[-1] / years[-3] == pytest.approx(top_alpha / mid_alpha, rel=0.05)
