"""Experiment E18: the (n, k) erasure generalisation at speed.

Generalising the loss test from "all replicas faulty" to "``n - k + 1``
fragments faulty" must not cost the batch kernel its throughput, and
the generalised answer must stay anchored to exact theory.  Three legs:

1. **throughput** — an EC(6,4) fleet of trials through the vectorized
   batch kernel against the honest alternative, one event-driven
   six-fragment system per trial, with a >= 30x acceptance target;
2. **exactness** — for a pure-visible-fault model the generalised
   birth-death chain is the truth, and the batch kernel's loss
   fraction at 20,000 trials must cover it within 3 standard errors
   (the event loop must in turn overlap the batch CI at 95%);
3. **planner** — a design space carrying the erasure axis must still
   screen-prune at least half its candidates analytically before any
   Monte-Carlo runs.

Everything lands in ``BENCH_e18.json`` so the speedup, the anchor, and
the prune rate are artifacts, not commit-message claims.
"""

import math
import time
from pathlib import Path

import numpy as np
import pytest

from _harness import intervals_overlap, trial_years_per_second, write_artifact
from repro.analysis.tables import format_table
from repro.core.parameters import FaultModel
from repro.core.redundancy import ErasureCode
from repro.core.units import HOURS_PER_YEAR
from repro.markov import build_scheme_chain, loss_probability_over_time
from repro.optimize import DesignSpace, EvaluationSettings, optimize
from repro.simulation.batch import simulate_batch
from repro.simulation.rng import RandomStreams
from repro.simulation.system import system_from_fault_model

#: Pure-visible operating point: latent faults pushed past any horizon,
#: so the birth-death chain describes the simulated physics exactly and
#: EC(6,4) over 20 years sees enough losses for a meaningful interval.
MV = 4e4
MR = 500.0
PURE = FaultModel(
    mean_time_to_visible=MV,
    mean_time_to_latent=1e12,
    mean_repair_visible=MR,
    mean_repair_latent=MR,
    mean_detect_latent=1.0,
    correlation_factor=1.0,
)

SCHEME = ErasureCode(6, 4)
MISSION = 20.0 * HOURS_PER_YEAR
EVENT_TRIALS = 1000
ANCHOR_TRIALS = 20_000
SPEEDUP_TARGET = 30.0
PRUNE_TARGET = 0.5
ARTIFACT = Path("BENCH_e18.json")

#: The planner space with the erasure axis switched on: replication
#: degrees and codes compete in one enumeration.
SPACE = DesignSpace(
    dataset_tb=50.0,
    media=("drive:barracuda", "drive:cheetah", "media:tape"),
    replica_counts=(2, 3),
    erasure_schemes=("4,2", "6,4", "9,6"),
    audit_rates=(0.0, 12.0, 52.0),
    placements=("single", "multi"),
)
SETTINGS = EvaluationSettings(mission_years=50.0, trials=5000, seed=18)


def run_event_loop(trials, seed):
    """One event-driven six-fragment system per trial.

    The audit cadence is overridden to monthly: with latent faults at
    1e12 hours scrubbing cannot change the answer, it only spares the
    per-fragment engine two-hourly scrub events (the batch kernel keeps
    the model verbatim).
    """
    root = RandomStreams(seed=seed)
    losses = 0
    start = time.perf_counter()
    for trial in range(trials):
        system = system_from_fault_model(
            PURE,
            streams=root.spawn(trial),
            scheme=SCHEME,
            audits_per_year=12.0,
        )
        if system.run(max_time=MISSION).lost:
            losses += 1
    return losses, time.perf_counter() - start


@pytest.mark.benchmark(group="e18 erasure generalisation")
def test_bench_e18_erasure(benchmark, experiment_printer):
    # --- leg 1: throughput at equal trial counts --------------------
    event_losses, event_seconds = run_event_loop(EVENT_TRIALS, seed=18)
    # Best-of-three for the fast path, as in e14/e17: one scheduling
    # hiccup must not fake a regression.
    batch_seconds = min(
        _timed_batch(EVENT_TRIALS)[1] for _ in range(3)
    )
    speedup = event_seconds / batch_seconds

    benchmark(
        lambda: simulate_batch(
            PURE,
            trials=EVENT_TRIALS,
            horizon=MISSION,
            seed=18,
            replicas=SCHEME.n,
            scheme=SCHEME,
        )
    )

    # --- leg 2: anchor against the exact chain ----------------------
    # The batch kernel repairs faulty fragments independently, so the
    # matching chain uses parallel repair.
    chain = build_scheme_chain(MV, MR, SCHEME, parallel_repair=True)
    exact = loss_probability_over_time(chain, MISSION)
    anchor, _ = _timed_batch(ANCHOR_TRIALS)
    batch_mean = float(anchor.lost.mean())
    batch_se = math.sqrt(
        max(batch_mean * (1.0 - batch_mean), 1e-12) / anchor.lost.size
    )
    p_event = event_losses / EVENT_TRIALS
    event_se = math.sqrt(
        max(p_event * (1.0 - p_event), 1e-12) / EVENT_TRIALS
    )

    # --- leg 3: planner with the erasure axis -----------------------
    start = time.perf_counter()
    plan = optimize(SPACE, SETTINGS, jobs=1)
    plan_seconds = time.perf_counter() - start
    refined_coded = sum(
        1 for e in plan.refined if e.candidate.scheme is not None
    )
    frontier_schemes = [
        e.candidate.effective_scheme().describe() for e in plan.frontier
    ]

    payload = {
        "experiment": "e18_erasure",
        "scheme": SCHEME.as_dict(),
        "mission_years": MISSION / HOURS_PER_YEAR,
        "throughput": {
            "model": PURE.as_dict(),
            "trials": EVENT_TRIALS,
            "batch_seconds": batch_seconds,
            "event_loop_seconds": event_seconds,
            "speedup": speedup,
            "trial_years_per_second": trial_years_per_second(
                EVENT_TRIALS, MISSION / HOURS_PER_YEAR, batch_seconds
            ),
        },
        "markov_anchor": {
            "exact_loss_probability": exact,
            "batch_trials": ANCHOR_TRIALS,
            "batch_loss_fraction": batch_mean,
            "batch_3se": [
                batch_mean - 3.0 * batch_se,
                batch_mean + 3.0 * batch_se,
            ],
            "event_loop_loss_fraction": p_event,
        },
        "planner": {
            "space": SPACE.as_dict(),
            "candidates": plan.candidates,
            "pruned": plan.pruned,
            "pruned_fraction": plan.pruned_fraction,
            "refined": len(plan.refined),
            "refined_erasure_candidates": refined_coded,
            "frontier_schemes": frontier_schemes,
            "seconds": plan_seconds,
        },
    }
    write_artifact(ARTIFACT, payload)

    experiment_printer(
        f"E18: (n, k) erasure generalisation — EC({SCHEME.n},{SCHEME.k}) "
        f"over {MISSION / HOURS_PER_YEAR:g} years",
        format_table(
            ["method", "P(loss)", "seconds"],
            [
                ["batch kernel", batch_mean, batch_seconds],
                ["event loop / trial", p_event, event_seconds],
                ["birth-death chain (exact)", exact, float("nan")],
            ],
        )
        + f"\nspeedup: {speedup:.0f}x (target >= {SPEEDUP_TARGET:.0f}x)"
        + "\nbatch throughput: "
        f"{trial_years_per_second(EVENT_TRIALS, MISSION / HOURS_PER_YEAR, batch_seconds):,.0f}"
        " trial-yr/s"
        + f"\nplanner: {plan.candidates} candidates, "
        f"{plan.pruned_fraction:.0%} pruned "
        f"(target >= {PRUNE_TARGET:.0%}), "
        f"{refined_coded} erasure candidates refined"
        + f"\nfrontier: {', '.join(frontier_schemes)}"
        + f"\nartifact: {ARTIFACT}",
    )

    # The generalised kernel must deliver the speed...
    assert speedup >= SPEEDUP_TARGET
    # ...and the exact answer: the chain's transient loss probability
    # sits inside the batch kernel's own 3-standard-error interval,
    # and the event engine tells the same story at 95%.
    assert abs(batch_mean - exact) <= 3.0 * batch_se
    assert intervals_overlap(
        batch_mean - 1.96 * batch_se,
        batch_mean + 1.96 * batch_se,
        p_event - 1.96 * event_se,
        p_event + 1.96 * event_se,
    )
    # The erasure axis must not blunt the analytic screen, and coded
    # candidates must actually compete past it.
    assert plan.pruned_fraction >= PRUNE_TARGET
    assert refined_coded > 0
    assert len(plan.frontier) > 0


def _timed_batch(trials):
    start = time.perf_counter()
    result = simulate_batch(
        PURE,
        trials=trials,
        horizon=MISSION,
        seed=18,
        replicas=SCHEME.n,
        scheme=SCHEME,
    )
    return result, time.perf_counter() - start
