"""Experiment E14: vectorized batch backend vs the event-driven engine.

The ROADMAP's scale target needs thousand-trial Monte-Carlo sweeps to be
cheap.  This benchmark runs the same 2,000-trial MTTDL estimation
through both backends on a compressed-time mirrored pair, records the
wall-clock speedup of the lock-step NumPy backend over the per-trial
event loops, and checks the two estimates agree within their combined
confidence intervals.  The acceptance target is a >= 10x speedup; in
practice the batch backend lands one to two orders of magnitude ahead.
"""

import time

import pytest

from _harness import time_best_of, trial_years_per_second
from repro.analysis.tables import format_table
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.monte_carlo import estimate_mttdl

#: Compressed-time mirrored pair (the structure of the Cheetah scenario
#: with time shrunk so losses happen quickly enough to time).
FAST_MODEL = FaultModel(
    mean_time_to_visible=500.0,
    mean_time_to_latent=100.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=5.0,
    correlation_factor=1.0,
)

TRIALS = 2000
HORIZON = 1e6
SPEEDUP_TARGET = 10.0


def run_backend(backend: str):
    start = time.perf_counter()
    estimate = estimate_mttdl(
        FAST_MODEL,
        trials=TRIALS,
        seed=14,
        max_time=HORIZON,
        backend=backend,
    )
    return estimate, time.perf_counter() - start


@pytest.mark.benchmark(group="e14 batch speedup")
def test_bench_e14_batch_speedup(benchmark, experiment_printer):
    event_estimate, event_seconds = run_backend("event")
    # Best-of-three for the fast backend so one scheduling hiccup cannot
    # fake a regression; the event loop is timed once (it dominates the
    # benchmark's budget).
    batch_estimate, batch_seconds = time_best_of(
        lambda: run_backend("batch")[0]
    )
    speedup = event_seconds / batch_seconds

    # Keep the pytest-benchmark timing record attached to the fast path.
    benchmark(
        lambda: estimate_mttdl(
            FAST_MODEL, trials=TRIALS, seed=14, max_time=HORIZON, backend="batch"
        )
    )

    horizon_years = HORIZON / HOURS_PER_YEAR
    experiment_printer(
        f"E14: batch vs event backend at {TRIALS} trials",
        format_table(
            ["backend", "MTTDL (hours)", "std error", "seconds",
             "trial-yr/s"],
            [
                [
                    "event",
                    event_estimate.mean,
                    event_estimate.std_error,
                    event_seconds,
                    trial_years_per_second(
                        TRIALS, horizon_years, event_seconds
                    ),
                ],
                [
                    "batch",
                    batch_estimate.mean,
                    batch_estimate.std_error,
                    batch_seconds,
                    trial_years_per_second(
                        TRIALS, horizon_years, batch_seconds
                    ),
                ],
            ],
        )
        + f"\nspeedup: {speedup:.1f}x (target >= {SPEEDUP_TARGET:.0f}x)",
    )

    # The two backends must tell the same statistical story...
    event_low, event_high = event_estimate.confidence_interval()
    batch_low, batch_high = batch_estimate.confidence_interval()
    assert event_low <= batch_high and batch_low <= event_high
    assert event_estimate.censored == 0
    assert batch_estimate.censored == 0
    # ...and the batch backend must actually deliver the speed.
    assert speedup >= SPEEDUP_TARGET
