"""Experiment E10: Figure 2 — the four double-fault combinations.

The paper's Figure 2 lays out the 2x2 grid of first-fault/second-fault
combinations that lose mirrored data.  This benchmark computes each
combination's share of the double-fault rate from the analytic model and
from Monte-Carlo simulation, and checks they identify the same dominant
cell (latent-first combinations dominate when detection is slow).
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.faults import FaultType
from repro.core.mttdl import double_fault_breakdown
from repro.core.parameters import FaultModel
from repro.simulation.monte_carlo import double_fault_combination_counts

#: Compressed-time model (same structure as the Cheetah scenario: latent
#: faults five times as frequent, scrubbing far slower than repair).
FAST_MODEL = FaultModel(
    mean_time_to_visible=2500.0,
    mean_time_to_latent=500.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=100.0,
    correlation_factor=1.0,
)

COMBINATIONS = [
    (FaultType.VISIBLE, FaultType.VISIBLE),
    (FaultType.VISIBLE, FaultType.LATENT),
    (FaultType.LATENT, FaultType.VISIBLE),
    (FaultType.LATENT, FaultType.LATENT),
]


def compute_double_fault_shares():
    analytic = double_fault_breakdown(FAST_MODEL).fractions()
    simulated_counts = double_fault_combination_counts(
        FAST_MODEL, trials=150, seed=11, max_time=5e6
    )
    total = sum(simulated_counts.values()) or 1
    simulated = {key: count / total for key, count in simulated_counts.items()}
    return analytic, simulated, simulated_counts


@pytest.mark.benchmark(group="e10 double faults")
def test_bench_e10_double_fault_combinations(benchmark, experiment_printer):
    analytic, simulated, counts = benchmark(compute_double_fault_shares)

    rows = []
    for first, second in COMBINATIONS:
        rows.append(
            [
                f"{first.value} then {second.value}",
                analytic[(first, second)],
                simulated[(first, second)],
                counts[(first, second)],
            ]
        )
    experiment_printer(
        "E10: Figure 2 — double-fault combinations, analytic vs simulated",
        format_table(
            ["combination", "analytic share", "simulated share", "simulated losses"],
            rows,
        ),
    )

    # Both views agree that windows opened by latent faults dominate.
    analytic_latent_first = (
        analytic[(FaultType.LATENT, FaultType.VISIBLE)]
        + analytic[(FaultType.LATENT, FaultType.LATENT)]
    )
    simulated_latent_first = (
        simulated[(FaultType.LATENT, FaultType.VISIBLE)]
        + simulated[(FaultType.LATENT, FaultType.LATENT)]
    )
    assert analytic_latent_first > 0.6
    assert simulated_latent_first > 0.6
    # And within those windows, latent second faults are the most common
    # finisher (ML < MV).
    assert analytic[(FaultType.LATENT, FaultType.LATENT)] == max(analytic.values())
    assert sum(counts.values()) > 30
