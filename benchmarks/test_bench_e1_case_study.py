"""Experiments E1-E4: the Section 5.4 worked examples.

Regenerates the paper's headline table: MTTDL and 50-year loss
probability for the unscrubbed, scrubbed, correlated, and negligent
mirrored Cheetah configurations.
"""

import pytest

from repro.analysis.report import scenario_experiment_report
from repro.analysis.tables import format_scenario_table
from repro.core.scenarios import paper_scenarios

PAPER_VALUES_YEARS = {
    "cheetah_no_scrub": 32.0,
    "cheetah_scrubbed": 6128.7,
    "cheetah_correlated": 612.9,
    "cheetah_negligent": 159.8,
}


def compute_case_study():
    scenarios = paper_scenarios()
    return {
        name: scenario.paper_method_mttdl_years()
        for name, scenario in scenarios.items()
    }


@pytest.mark.benchmark(group="e1-e4 worked examples")
def test_bench_e1_to_e4_worked_examples(benchmark, experiment_printer):
    measured = benchmark(compute_case_study)

    experiment_printer(
        "E1-E4: Section 5.4 worked examples (mirrored Cheetah pair)",
        format_scenario_table(paper_scenarios())
        + "\n\n"
        + scenario_experiment_report().render(),
    )

    # Shape assertions: every scenario reproduces the paper's value to
    # within 2%, and the qualitative ordering holds.
    for name, paper_value in PAPER_VALUES_YEARS.items():
        assert measured[name] == pytest.approx(paper_value, rel=0.02)
    assert (
        measured["cheetah_scrubbed"]
        > measured["cheetah_correlated"]
        > measured["cheetah_negligent"]
        > measured["cheetah_no_scrub"]
    )
