"""Experiment E17: decades-scale fleet simulation vs per-member loops.

The paper's question is fleet-shaped: what fraction of thousands of
archives survives 50 years of refreshes, migrations and shocks?  The
``repro.fleet`` population kernel answers it by advancing every member
in lock-step NumPy sweeps over a piecewise-constant timeline.  This
benchmark (1) times a 2,000-member x 50-year stationary fleet against
the honest alternative — looping the event-driven engine once per
member — with a >= 30x acceptance target; (2) anchors correctness by
requiring the stationary fleet's loss fraction to agree, within 95%
confidence intervals, with both ``estimate_loss_probability`` and the
event loop it raced; and (3) records a 3-epoch non-stationary
demonstration run (generation refresh with aging + Kryder-declining
costs).  Everything lands in ``BENCH_e17.json`` so the speedup and the
anchor are artifacts, not commit-message claims.
A companion run repeats the stationary fleet through the study facade
with the ``repro.obs`` flight recorder on, writing ``TRACE_e17.jsonl``
(schema-validated, uploaded next to the numbers in CI) and asserting
the observability acceptance floor: the engine's setup/kernel/merge
spans must account for >= 95% of the run's wall time, and a repeat run
against the chunk cache must flip every lookup from miss to hit.
"""

import math
import time
from pathlib import Path

import numpy as np
import pytest

from _harness import (
    intervals_overlap,
    time_best_of,
    trial_years_per_second,
    write_artifact,
)
from repro import obs, study
from repro.analysis.tables import format_table
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.fleet import (
    generation_refresh_timeline,
    simulate_fleet,
    stationary_timeline,
)
from repro.simulation.monte_carlo import estimate_loss_probability
from repro.simulation.rng import RandomStreams
from repro.simulation.system import system_from_fault_model

#: The paper's scrubbed Cheetah mirrored pair at real (uncompressed)
#: rates: P(loss, 50yr) ~ 2%, so 2,000 members see enough losses for a
#: meaningful binomial interval.
MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=1460.0,
    correlation_factor=1.0,
)

MEMBERS = 2000
YEARS = 50.0
MISSION = YEARS * HOURS_PER_YEAR
SPEEDUP_TARGET = 30.0
ARTIFACT = Path("BENCH_e17.json")
TRACE_ARTIFACT = Path("TRACE_e17.jsonl")
SPAN_COVERAGE_TARGET = 0.95


def run_event_loop(members, seed):
    """The per-member alternative: one event engine run per archive."""
    root = RandomStreams(seed=seed)
    losses = 0
    start = time.perf_counter()
    for member in range(members):
        system = system_from_fault_model(
            MODEL, replicas=2, streams=root.spawn(member)
        )
        if system.run(max_time=MISSION).lost:
            losses += 1
    return losses, time.perf_counter() - start


@pytest.mark.benchmark(group="e17 fleet timeline simulator")
def test_bench_e17_fleet(benchmark, experiment_printer):
    timeline = stationary_timeline(MODEL, YEARS)

    event_losses, event_seconds = run_event_loop(MEMBERS, seed=17)
    # Best-of-three for the fast path, as in e14: one scheduling hiccup
    # must not fake a regression.
    fleet_result, fleet_seconds = time_best_of(
        lambda: simulate_fleet(timeline, MEMBERS, seed=17)
    )
    speedup = event_seconds / fleet_seconds

    benchmark(lambda: simulate_fleet(timeline, MEMBERS, seed=17))

    # Regression anchor: the stationary fleet is the point estimators'
    # system, so the three estimates must tell one statistical story.
    fleet_estimate = fleet_result.loss_estimate()
    fleet_low, fleet_high = fleet_estimate.confidence_interval()
    reference = estimate_loss_probability(
        MODEL,
        mission_time=MISSION,
        trials=20000,
        seed=18,
        backend="batch",
        method="standard",
    )
    ref_low, ref_high = reference.confidence_interval()
    p_event = event_losses / MEMBERS
    event_se = math.sqrt(max(p_event * (1 - p_event), 1e-12) / MEMBERS)
    event_low = p_event - 1.96 * event_se
    event_high = p_event + 1.96 * event_se

    # Non-stationary demonstration: three media generations with
    # late-life aging and Kryder-declining refresh costs.
    demo_timeline = generation_refresh_timeline(
        years=YEARS,
        refresh_every_years=18.0,
        aging_onset_fraction=0.6,
        aging_hazard_multiplier=3.0,
    )
    demo = simulate_fleet(demo_timeline, MEMBERS, seed=17)
    demo_survival = demo.survival_curve()
    demo_cost = demo.cumulative_cost_per_member()

    payload = {
        "experiment": "e17_fleet",
        "members": MEMBERS,
        "years": YEARS,
        "stationary": {
            "model": MODEL.as_dict(),
            "fleet_seconds": fleet_seconds,
            "event_loop_seconds": event_seconds,
            "speedup": speedup,
            "trial_years_per_second": trial_years_per_second(
                MEMBERS, YEARS, fleet_seconds
            ),
            "fleet_loss_fraction": fleet_estimate.mean,
            "fleet_ci": [fleet_low, fleet_high],
            "event_loop_loss_fraction": p_event,
            "event_loop_ci": [event_low, event_high],
            "estimator_loss": reference.mean,
            "estimator_ci": [ref_low, ref_high],
            "sweeps": fleet_result.tally.sweeps,
        },
        "non_stationary_demo": {
            "timeline": demo_timeline.as_dict(),
            "loss_fraction": demo.tally.loss_fraction,
            "migration_losses": demo.tally.migration_losses,
            "repairs": demo.tally.repairs,
            "survival_curve": demo_survival.tolist(),
            "cumulative_cost_per_member": demo_cost.tolist(),
        },
    }
    write_artifact(ARTIFACT, payload)

    experiment_printer(
        f"E17: fleet timeline simulator at {MEMBERS} members x "
        f"{YEARS:g} years",
        format_table(
            ["method", "P(loss, 50yr)", "95% CI low", "95% CI high",
             "seconds"],
            [
                ["fleet kernel", fleet_estimate.mean, fleet_low,
                 fleet_high, fleet_seconds],
                ["event loop / member", p_event, event_low, event_high,
                 event_seconds],
                ["estimate_loss_probability", reference.mean, ref_low,
                 ref_high, float("nan")],
            ],
        )
        + f"\nspeedup: {speedup:.0f}x (target >= {SPEEDUP_TARGET:.0f}x)"
        + "\nfleet throughput: "
        f"{trial_years_per_second(MEMBERS, YEARS, fleet_seconds):,.0f} trial-yr/s"
        + f"\n3-epoch demo: {len(demo_timeline.epochs)} epochs, "
        f"loss fraction {demo.tally.loss_fraction:.3f}, "
        f"final cost ${demo_cost[-1]:,.0f}/member"
        + f"\nartifact: {ARTIFACT}",
    )

    # The fleet must deliver the speed...
    assert speedup >= SPEEDUP_TARGET
    # ...and reproduce the point estimators on a stationary timeline
    # (CI overlap against both the batch estimator and the event loop).
    assert intervals_overlap(fleet_low, fleet_high, ref_low, ref_high)
    assert intervals_overlap(fleet_low, fleet_high, event_low, event_high)
    # The demo timeline actually exercises the non-stationary machinery.
    assert len(demo_timeline.epochs) >= 3
    assert demo_survival[0] == 1.0
    assert np.all(np.diff(demo_survival) <= 0)
    assert np.all(np.diff(demo_cost) >= 0)
    # Kryder decline: later generations refresh cheaper.
    fresh_costs = [
        epoch.annual_cost_per_member
        for epoch in demo_timeline.epochs
        if epoch.label.endswith("fresh")
    ]
    assert fresh_costs == sorted(fresh_costs, reverse=True)


@pytest.mark.benchmark(group="e17 fleet timeline simulator")
def test_bench_e17_fleet_telemetry(experiment_printer, tmp_path):
    """The stationary fleet with the flight recorder on.

    Telemetry must observe, not perturb: the traced answer matches the
    plain one bit-for-bit, the engine spans account for >= 95% of the
    wall time, and the chunk cache goes all-miss -> all-hit on repeat.
    """
    scenario = study.Scenario(
        question="fleet_survival",
        timeline=stationary_timeline(MODEL, YEARS),
        members=MEMBERS,
        policy=study.EstimatorPolicy(engine="fleet", seed=17),
    )
    plain = study.run(scenario)

    TRACE_ARTIFACT.unlink(missing_ok=True)
    cache_dir = tmp_path / "chunks"
    runs = []
    for label in ("cold", "warm"):
        tel = obs.Telemetry(trace=obs.TraceWriter(TRACE_ARTIFACT))
        try:
            result = study.run(scenario, cache_dir=cache_dir, telemetry=tel)
        finally:
            tel.trace.close()
        runs.append((label, result, tel.snapshot()))

    records = obs.validate_trace(TRACE_ARTIFACT)
    summary = obs.summarize_trace(TRACE_ARTIFACT)

    coverage = []
    for label, result, snapshot in runs:
        covered = sum(
            snapshot.spans[name][1]
            for name in ("setup", "kernel", "merge")
            if name in snapshot.spans
        )
        coverage.append((label, covered / result.wall_time_seconds))

    experiment_printer(
        "E17 telemetry: flight-recorded fleet run "
        f"({MEMBERS} members x {YEARS:g} years)",
        f"trace: {records} records -> {TRACE_ARTIFACT}\n"
        + "\n".join(
            f"{label} span coverage: {share:.1%}"
            for label, share in coverage
        )
        + f"\ncache: {summary['cache']['misses']} misses, "
        f"{summary['cache']['hits']} hits, "
        f"{summary['cache']['stores']} stores"
        + "\n" + obs.render(summary),
    )

    # Observation must not change the answer.
    for _, result, _ in runs:
        assert result.value == plain.value
        assert result.std_error == plain.std_error
        assert result.trials == plain.trials
    # The spans must explain where the time went.  The 95% floor binds
    # on the cold run, where the kernel does real work; the warm run is
    # a few milliseconds of cache reads, so the facade's fixed overhead
    # (hashing, events, snapshotting) legitimately claims a bigger
    # share — half is still spans.
    assert coverage[0][1] >= SPAN_COVERAGE_TARGET, coverage[0]
    assert coverage[1][1] >= 0.5, coverage[1]
    # The chunk cache flips all-miss -> all-hit between the two runs.
    chunks = runs[0][2].counters["fleet.chunks"]
    assert runs[0][2].counters["cache.fleet.miss"] == chunks
    assert runs[0][2].counters["cache.fleet.store"] == chunks
    assert "cache.fleet.hit" not in runs[0][2].counters
    assert runs[1][2].counters["cache.fleet.hit"] == chunks
    assert "cache.fleet.miss" not in runs[1][2].counters
    # Both study runs landed in one valid, append-ordered trace.
    assert summary["events"]["study_start"] == 2
    assert summary["events"]["study_end"] == 2
