"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment from DESIGN.md / EXPERIMENTS.md:
it computes the quantity the paper reports, prints a table comparing the
paper's value with the reproduced value, and times the computation with
pytest-benchmark.  Absolute agreement is not asserted tightly here (that
is the test suite's job); benchmarks assert the qualitative shape so a
regression that flips a conclusion fails the harness.
"""

from __future__ import annotations

import pytest


def print_experiment(title: str, body: str) -> None:
    """Print one experiment's output block with a recognisable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")


@pytest.fixture
def experiment_printer():
    """Fixture handing benchmarks the experiment printer."""
    return print_experiment
