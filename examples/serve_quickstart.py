#!/usr/bin/env python3
"""Quickstart: the serve layer — memoized Scenario answers as a service.

Run with::

    python examples/serve_quickstart.py

This drives :class:`repro.serve.StudyService` in-process (no sockets
needed) through the three behaviours that make it a cache and not just
an RPC wrapper:

1. a **cold** query pays the engine, and its answer is persisted in a
   :class:`repro.serve.ResultStore` keyed by the scenario's content;
2. a repeated query is a **store hit** — a file read, not a simulation;
3. identical **concurrent** queries share one in-flight engine run
   (single-flight), and compatible cold misses coalesce onto one
   vectorized kernel invocation (batching).

The same service fronts HTTP when started as ``python -m repro.cli
serve``; see the README's "Study service" section for the curl version
of this walkthrough.

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
run) shrinks the trial counts.
"""

import asyncio
import os
import tempfile
import time

from repro.core.parameters import FaultModel
from repro.serve import ResultStore, StudyService
from repro.study import EstimatorPolicy, Scenario, SystemSpec

_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
TRIALS = max(500, int(40_000 * _SCALE))

#: A compressed-time model (hours-scale faults) so the walkthrough
#: answers in seconds while still exercising the real batch kernel.
MODEL = FaultModel(
    mean_time_to_visible=2500.0,
    mean_time_to_latent=500.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=25.0,
)


def scenario(mission_years: float) -> Scenario:
    return Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=mission_years,
        policy=EstimatorPolicy(engine="batch", trials=TRIALS, seed=11),
    )


async def walkthrough(store_dir: str) -> None:
    service = StudyService(store=ResultStore(store_dir))
    try:
        print("== 1. Cold query: the engine runs, the answer persists ==\n")
        start = time.perf_counter()
        cold = await service.submit(scenario(0.5))
        cold_seconds = time.perf_counter() - start
        print(f"served_from : {cold.served_from}")
        print(f"P(loss)     : {cold.result.value:.4f} "
              f"+/- {cold.result.std_error:.4f}")
        print(f"hash        : {cold.scenario_hash}")
        print(f"latency     : {cold_seconds * 1e3:.1f} ms")

        print("\n== 2. Same question again: a store hit ==\n")
        start = time.perf_counter()
        hot = await service.submit(scenario(0.5))
        hot_seconds = time.perf_counter() - start
        print(f"served_from : {hot.served_from}")
        print(f"identical   : {hot.result.value == cold.result.value}")
        print(f"latency     : {hot_seconds * 1e3:.2f} ms "
              f"({cold_seconds / max(hot_seconds, 1e-9):,.0f}x faster)")

        print("\n== 3. Concurrency: single-flight and batching ==\n")
        # Four repeats of one NEW scenario plus three more new missions,
        # all submitted at once: the repeats share one in-flight future,
        # and the four distinct missions ride one batched kernel run.
        wave = [1.0, 1.0, 1.0, 1.0, 0.25, 0.75, 1.5]
        answers = await asyncio.gather(
            *[service.submit(scenario(m)) for m in wave]
        )
        by_mission = dict(zip(wave, answers))
        for mission, answer in sorted(by_mission.items()):
            print(f"mission {mission:4g} yr : P(loss) = "
                  f"{answer.result.value:.4f}  [{answer.served_from}]")

        counters = service.telemetry.snapshot().counters
        print(f"\nengine runs           : "
              f"{counters.get('serve.engine_runs', 0):g} "
              f"(for {1 + 1 + len(wave)} submissions)")
        print(f"single-flight shares  : "
              f"{counters.get('serve.singleflight.shared', 0):g}")
        print(f"batched kernel members: "
              f"{counters.get('serve.batch.members', 0):g}")
        print(f"store hits            : "
              f"{counters.get('cache.serve.hit', 0):g}")
    finally:
        await service.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as store_dir:
        asyncio.run(walkthrough(store_dir))
    print("\nThe HTTP front end serves the same service:\n"
          "    python -m repro.cli serve --port 8750 &\n"
          "    curl -s localhost:8750/healthz\n"
          "    curl -s -X POST localhost:8750/query -d @scenario.json\n"
          "    curl -s localhost:8750/metrics | head")


if __name__ == "__main__":
    main()
