#!/usr/bin/env python3
"""Fifty years of a national library's archive fleet, end to end.

The earlier examples size *one* archive at *one* moment.  This
walkthrough asks the question the paper actually poses: a national
library operates a fleet of 2,000 member archives (branch collections,
deposit partners) for half a century — media generations age and get
refreshed at Kryder-declining prices, a proprietary-format migration
sweep runs at year 20, and regional disasters occasionally hit many
members at once.  What fraction of the fleet still holds its data in
2076, when do the losses happen, and what did each member spend?

The plan starts from the budget planner's recommendation
(:func:`repro.fleet.timeline_from_recommendation` is the hand-off), is
rebuilt as a generation-refresh timeline with aging and shocks, and
runs through :func:`repro.fleet.simulate_fleet` — thousands of members,
decades of simulated time, milliseconds of wall clock.

Run with::

    python examples/national_library_fleet.py

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
job) shrinks the fleet size and Monte-Carlo budgets proportionally.
"""

import os

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.tables import format_dict, format_table
from repro.core.faults import FaultClass
from repro.core.migration import CAMERA_RAW
from repro.fleet import (
    MigrationEvent,
    generation_refresh_timeline,
    shock_model_from_threats,
    simulate_fleet,
    timeline_from_recommendation,
)
from repro.optimize import DesignSpace, EvaluationSettings, optimize, recommend
from repro.storage.site import diversified_placement
from repro.threats.taxonomy import THREAT_REGISTRY

_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def _scaled(budget: int, floor: int = 50) -> int:
    return max(floor, int(budget * _SCALE))


MEMBERS = _scaled(2_000, floor=100)
YEARS = 50.0
DATASET_TB_PER_MEMBER = 5.0


def planner_epoch_zero():
    """Let the budget planner pick each member's starting design."""
    space = DesignSpace(
        dataset_tb=DATASET_TB_PER_MEMBER,
        media=("drive:barracuda", "drive:cheetah"),
        replica_counts=(2, 3),
        audit_rates=(1.0, 12.0, 52.0),
        placements=("multi",),
    )
    settings = EvaluationSettings(
        mission_years=YEARS, trials=_scaled(1_000), seed=2006
    )
    result = optimize(space, settings)
    recommended = recommend(result.frontier, budget=12_000.0)
    print(
        format_dict(
            {
                "medium": recommended.candidate.medium,
                "replicas": recommended.candidate.replicas,
                "audits per year": recommended.candidate.audits_per_year,
                "annual cost per member ($)": recommended.annual_cost,
            },
            title="planner recommendation (epoch 0 of the fleet plan)",
        )
    )
    # The hand-off: the recommendation is a valid single-epoch timeline.
    handoff = timeline_from_recommendation(recommended, years=YEARS)
    print(
        f"\nhand-off timeline: {len(handoff.epochs)} epoch, "
        f"replicas={handoff.replicas}, "
        f"${handoff.epochs[0].annual_cost_per_member:,.0f}/member-year\n"
    )
    return recommended


def fleet_timeline(recommended):
    """The recommendation, grown into a realistic 50-year plan."""
    # Regional correlated threats: disasters and organisational failure,
    # attenuated by each member's diversified 3-site placement.
    threats = [
        THREAT_REGISTRY[FaultClass.LARGE_SCALE_DISASTER],
        THREAT_REGISTRY[FaultClass.ORGANIZATIONAL_FAULT],
    ]
    shocks = shock_model_from_threats(
        threats,
        placement=diversified_placement(recommended.candidate.replicas),
        regions=4,
    )
    return generation_refresh_timeline(
        medium=recommended.candidate.medium,
        years=YEARS,
        refresh_every_years=15.0,
        replicas=recommended.candidate.replicas,
        audits_per_year=recommended.candidate.audits_per_year,
        dataset_tb_per_member=DATASET_TB_PER_MEMBER,
        kryder_decline=0.15,
        aging_onset_fraction=0.6,
        aging_hazard_multiplier=3.0,
        shocks=shocks,
        migrations=[
            MigrationEvent(
                year=20.0,
                risk=CAMERA_RAW,
                cost_per_member=350.0,
                label="retire proprietary RAW",
            )
        ],
        label="national library fleet plan",
    )


def main() -> None:
    recommended = planner_epoch_zero()
    timeline = fleet_timeline(recommended)
    print(
        format_table(
            ["epoch", "starts (yr)", "hazard x", "$/member-year"],
            [
                [
                    epoch.label,
                    epoch.start_year,
                    epoch.hazard_multiplier,
                    epoch.annual_cost_per_member,
                ]
                for epoch in timeline.epochs
            ],
            title=f"timeline: {timeline.label}",
        )
    )

    result = simulate_fleet(timeline, MEMBERS, seed=2076, jobs=2)
    summary = result.summary()
    print()
    print(
        format_dict(
            {
                "members": summary["members"],
                "losses": summary["losses"],
                "surviving fraction": 1.0 - summary["loss_fraction"],
                "95% CI on loss": (
                    f"[{summary['loss_ci_low']:.3g}, "
                    f"{summary['loss_ci_high']:.3g}]"
                ),
                "lost to the RAW migration": summary["migration_losses"],
                "regional shocks": summary["shock_events"],
                "repairs across the fleet": summary["repairs"],
                "50-year cost per member ($)": (
                    summary["total_cost_per_member"]
                ),
            },
            title="the fleet at year 50",
        )
    )

    survival = result.survival_curve()
    print()
    print(
        ascii_line_chart(
            list(range(len(survival))),
            list(survival),
            title="survival curve: fraction of members alive vs year",
        )
    )
    cost = result.cumulative_cost_per_member()
    print()
    print(
        ascii_line_chart(
            list(range(1, len(cost) + 1)),
            list(cost),
            title="cumulative cost per member ($) vs year",
        )
    )
    print(
        "\nReading: organic double faults trickle; the migration at year"
        " 20 and any regional shock show up as cliffs in the survival"
        " curve, and the Kryder decline flattens each successive"
        " refresh's cost step."
    )


if __name__ == "__main__":
    main()
