#!/usr/bin/env python3
"""Validate the analytic model against the Markov chain and the simulator.

The paper publishes closed-form approximations and asks (Section 6.7)
for data and tooling to validate them.  This example is that tooling in
miniature: for a compressed-time parameter set it computes the MTTDL
with the closed forms, the exact CTMC, and Monte-Carlo simulation, then
plots the simulated mission-loss curve against the exponential shortcut
the paper uses.

Run with::

    python examples/validate_model_by_simulation.py

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
job) shrinks the Monte-Carlo budgets proportionally.
"""

import os

from repro.analysis.compare import compare_models
from repro.analysis.plotting import ascii_line_chart
from repro.analysis.tables import format_dict, format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.lifetime import loss_probability_curve
from repro.simulation.monte_carlo import estimate_mttdl

#: Compressed-time model: same structure as the paper's Cheetah pair
#: (latent faults five times as frequent as visible ones, scrub interval
#: far above the repair time) but with hour-scale mean times so the
#: Monte-Carlo runs finish in seconds.
_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def _scaled(budget: int, floor: int = 50) -> int:
    return max(floor, int(budget * _SCALE))


MODEL = FaultModel(
    mean_time_to_visible=2500.0,
    mean_time_to_latent=500.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=25.0,
    correlation_factor=1.0,
)


def mttdl_comparison() -> None:
    print("== MTTDL under every evaluation method ==\n")
    comparison = compare_models(MODEL)
    estimate = estimate_mttdl(MODEL, trials=_scaled(300), seed=1, max_time=5e6)
    # The vectorized backend makes a 20x larger sample just as cheap,
    # and adaptive sampling keeps extending it until the confidence
    # interval is tight.
    batch = estimate_mttdl(
        MODEL,
        trials=_scaled(6000),
        seed=1,
        max_time=5e6,
        backend="batch",
        target_relative_error=0.01,
    )
    rows = [[name, value] for name, value in comparison.in_years().items()]
    rows.append(
        [f"monte_carlo ({estimate.trials} trials)", estimate.mean / HOURS_PER_YEAR]
    )
    low, high = estimate.confidence_interval()
    rows.append(["monte_carlo 95% CI low", low / HOURS_PER_YEAR])
    rows.append(["monte_carlo 95% CI high", high / HOURS_PER_YEAR])
    rows.append(
        [f"batch backend ({batch.trials} trials)", batch.mean / HOURS_PER_YEAR]
    )
    print(format_table(["method", "MTTDL (years)"], rows))
    print(
        "\nThe Markov chain and the simulator agree; the closed forms sit within\n"
        "their documented conventions (single- vs both-copy first-fault counting,\n"
        "capped windows vs an explicit detection race)."
    )


def mission_curve() -> None:
    print("\n== Mission loss probability: simulation vs exponential shortcut ==\n")
    analytic = mirrored_mttdl(MODEL)
    horizons = [20000.0 * i for i in range(1, 11)]
    curve = loss_probability_curve(
        MODEL, horizons, trials=_scaled(250), seed=5, analytic_mttdl=analytic
    )
    rows = [
        [
            point.mission_hours,
            point.loss_probability,
            point.exponential_prediction,
            point.std_error,
        ]
        for point in curve
    ]
    print(
        format_table(
            ["mission (hours)", "simulated P(loss)", "1 - exp(-t/MTTDL)", "std err"],
            rows,
        )
    )
    chart = ascii_line_chart(
        [point.mission_hours for point in curve],
        [max(point.loss_probability, 1e-4) for point in curve],
        title="simulated loss probability vs mission length",
    )
    print("\n" + chart)


def scrubbing_ablation() -> None:
    print("\n== Ablation: how much does the scrub interval matter here? ==\n")
    results = {}
    for label, mdl in (("aggressive (MDL=5h)", 5.0), ("paper-like (MDL=25h)", 25.0),
                       ("lazy (MDL=250h)", 250.0), ("never", MODEL.mean_time_to_latent)):
        adjusted = MODEL.with_detection_time(mdl)
        results[label] = mirrored_mttdl(adjusted) / HOURS_PER_YEAR
    print(format_dict(results, title="MTTDL (years) by scrub aggressiveness"))


def main() -> None:
    mttdl_comparison()
    mission_curve()
    scrubbing_ablation()


if __name__ == "__main__":
    main()
