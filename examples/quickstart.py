#!/usr/bin/env python3
"""Quickstart: evaluate the paper's mirrored-Cheetah worked examples.

Run with::

    python examples/quickstart.py

This walks through the core API in the order the paper presents the
model: build a :class:`FaultModel`, compute the mirrored MTTDL, convert
it to a mission loss probability, and see how scrubbing and correlation
move the answer.
"""

from repro import (
    FaultModel,
    HOURS_PER_YEAR,
    mirrored_mttdl,
    probability_of_loss,
    replicated_mttdl,
)
from repro.analysis.tables import format_scenario_table
from repro.core.scenarios import paper_scenarios


def basic_model_walkthrough() -> None:
    """Build the scrubbed Cheetah pair by hand and evaluate it."""
    print("== Building the paper's scrubbed mirrored pair by hand ==\n")
    model = FaultModel(
        mean_time_to_visible=1.4e6,      # Cheetah datasheet MTTF (hours)
        mean_time_to_latent=2.8e5,       # latent faults 5x as frequent
        mean_repair_visible=20.0 / 60.0, # 20-minute rebuild
        mean_repair_latent=20.0 / 60.0,
        mean_detect_latent=1460.0,       # scrub three times a year
        correlation_factor=1.0,          # fully independent copies
    )
    print(model.describe())

    mttdl_hours = mirrored_mttdl(model)
    mttdl_years = mttdl_hours / HOURS_PER_YEAR
    p_loss_50yr = probability_of_loss(mttdl_hours, 50.0 * HOURS_PER_YEAR)
    print(f"\nMTTDL                     : {mttdl_years:,.0f} years")
    print(f"P(data loss in 50 years)  : {p_loss_50yr:.2%}")

    # Turn the scrubbing off: detection now never happens before the
    # next fault, and reliability collapses to decades.
    unscrubbed = model.with_detection_time(model.mean_time_to_latent)
    unscrubbed_years = mirrored_mttdl(unscrubbed) / HOURS_PER_YEAR
    print(f"\nWithout scrubbing         : {unscrubbed_years:,.1f} years "
          "(the paper's 32-year figure)")

    # Correlated replicas: the same scrubbed pair sharing power,
    # administration, or a software stack.
    correlated = model.with_correlation(0.1)
    correlated_years = mirrored_mttdl(correlated) / HOURS_PER_YEAR
    print(f"With correlation 0.1      : {correlated_years:,.0f} years")


def replication_walkthrough() -> None:
    """Eq. 12: how much extra replicas help, with and without independence."""
    print("\n== Replication vs independence (Eq. 12) ==\n")
    for alpha in (1.0, 0.01, 0.001):
        row = []
        for replicas in (2, 3, 4):
            years = replicated_mttdl(1.4e6, 1.0 / 3.0, replicas, alpha) / HOURS_PER_YEAR
            row.append(f"r={replicas}: {years:9.3g} yr")
        print(f"alpha={alpha:<6g} " + "   ".join(row))
    print("\nStrong correlation (small alpha) erases most of the benefit of "
          "extra replicas —\nthe paper's case for independence over raw replication.")


def paper_scenarios_table() -> None:
    """Print the Section 5.4 worked examples next to the paper's numbers."""
    print("\n== The paper's Section 5.4 worked examples ==\n")
    print(format_scenario_table(paper_scenarios()))


def main() -> None:
    basic_model_walkthrough()
    replication_walkthrough()
    paper_scenarios_table()


if __name__ == "__main__":
    main()
