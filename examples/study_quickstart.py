#!/usr/bin/env python3
"""One front door for every reliability question: the ``repro.study`` facade.

The earlier examples each talk to one subsystem (closed forms, the
Monte-Carlo estimators, the planner, the fleet simulator).  This
walkthrough asks all five question kinds through the single declarative
API the toolkit now exposes — a JSON-roundtrippable ``Scenario`` in, a
schema-versioned, provenance-carrying ``StudyResult`` out:

1. ``mttdl`` — closed form, exact Markov chain, and auto Monte-Carlo
   (with its built-in cross-check) for the same system.
2. ``loss_probability`` — the paper's 50-year loss metric.
3. ``sweep`` — MTTDL vs audit rate, analytic next to simulated.
4. ``frontier`` — the budget planner behind the same front door.
5. ``fleet_survival`` — a decades-scale fleet run.

Run with::

    python examples/study_quickstart.py

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
job) shrinks the Monte-Carlo budgets proportionally.
"""

import os

from repro.core.parameters import FaultModel
from repro.fleet import generation_refresh_timeline
from repro.optimize import DesignSpace
from repro.study import (
    EstimatorPolicy,
    Scenario,
    SweepSpec,
    SystemSpec,
    render_text,
    run,
)

_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def _scaled(budget: int, floor: int = 100) -> int:
    return max(floor, int(budget * _SCALE))


#: Compressed-time mirrored pair so every engine answers in seconds.
MODEL = FaultModel(
    mean_time_to_visible=2500.0,
    mean_time_to_latent=500.0,
    mean_repair_visible=1.0,
    mean_repair_latent=1.0,
    mean_detect_latent=25.0,
)


def point_estimates() -> None:
    print("== One system, three engines ==\n")
    system = SystemSpec(model=MODEL)
    for engine in ("analytic", "markov", "auto"):
        scenario = Scenario(
            question="mttdl",
            system=system,
            max_time_hours=5e6,
            policy=EstimatorPolicy(
                engine=engine, trials=_scaled(2000), seed=1
            ),
        )
        result = run(scenario)
        years = (result.value or float("inf")) / 8760.0
        print(
            f"  engine={engine:<9s} method={result.method:<9s} "
            f"MTTDL = {years:10.2f} years   "
            f"(hash {result.scenario_hash[:8]}, "
            f"{result.wall_time_seconds * 1e3:.1f} ms)"
        )
    print()


def loss_and_roundtrip() -> None:
    print("== 2-year loss probability, serialised and re-run ==\n")
    scenario = Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=2.0,
        policy=EstimatorPolicy(engine="auto", trials=_scaled(1000), seed=7),
    )
    result = run(scenario)
    print(render_text(scenario, result))
    # The scenario JSON is the durable specification: reload and re-run
    # it and the answer reproduces bit-for-bit.
    rerun = run(Scenario.from_json(scenario.to_json()))
    assert rerun.value == result.value
    print(f"\nround-trip reproduces the estimate: {rerun.value == result.value}\n")


def audit_sweep() -> None:
    print("== MTTDL vs audit rate (simulated next to analytic) ==\n")
    scenario = Scenario(
        question="sweep",
        system=SystemSpec(model=MODEL),
        sweep=SweepSpec(
            parameter="audits_per_year", values=(0.0, 52.0, 365.0)
        ),
        max_time_hours=5e6,
        policy=EstimatorPolicy(engine="batch", trials=_scaled(500), seed=2),
    )
    print(render_text(scenario, run(scenario)) + "\n")


def planner() -> None:
    print("== The budget planner behind the same front door ==\n")
    scenario = Scenario(
        question="frontier",
        space=DesignSpace(
            dataset_tb=10.0,
            media=("drive:barracuda", "drive:cheetah"),
            replica_counts=(2, 3),
            audit_rates=(12.0, 52.0),
            placements=("multi",),
        ),
        budget=25_000.0,
        policy=EstimatorPolicy(engine="auto", trials=_scaled(500), seed=3),
    )
    result = run(scenario)
    recommended = result.details["recommended"]["candidate"]
    print(
        f"  recommended: {recommended['medium']} x{recommended['replicas']}, "
        f"{recommended['audits_per_year']:g} audits/yr "
        f"-> P(loss, 50yr) = {result.value:.3g} "
        f"[{result.ci_low:.3g}, {result.ci_high:.3g}]\n"
    )


def fleet() -> None:
    print("== A decades-scale fleet through the facade ==\n")
    scenario = Scenario(
        question="fleet_survival",
        timeline=generation_refresh_timeline(
            medium="drive:cheetah", years=30.0, refresh_every_years=10.0
        ),
        members=_scaled(1000),
        policy=EstimatorPolicy(engine="fleet", seed=4),
    )
    result = run(scenario)
    print(
        f"  {scenario.members} members, 30 years: "
        f"loss fraction {result.value:.4f} "
        f"[{result.ci_low:.4f}, {result.ci_high:.4f}] "
        f"({result.wall_time_seconds * 1e3:.0f} ms)"
    )


def main() -> None:
    point_estimates()
    loss_and_roundtrip()
    audit_sweep()
    planner()
    fleet()


if __name__ == "__main__":
    main()
