#!/usr/bin/env python3
"""What does a digital archive actually experience over 50 years?

The paper's Section 3 catalogues the threats to long-term storage; this
example turns that catalogue into a synthetic 50-year incident log for a
three-replica archive, summarises it, and shows how the threat mix maps
onto the model's parameters — including which threats contribute the
correlation that erodes replication.

Run with::

    python examples/archive_threats.py
"""

from collections import Counter

from repro.analysis.tables import format_dict, format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.threats.correlation_sources import (
    correlation_pressure,
    dominant_correlation_sources,
    mitigation_effect,
)
from repro.threats.events import sample_threat_timeline, summarize_timeline
from repro.threats.taxonomy import all_threat_profiles, combined_fault_model

HORIZON_YEARS = 50.0
REPLICAS = 3


def incident_log() -> None:
    """Generate and summarise the synthetic 50-year incident log."""
    events = sample_threat_timeline(
        horizon_years=HORIZON_YEARS, replicas=REPLICAS, seed=2006
    )
    summary = summarize_timeline(events)
    by_class = Counter(
        {fault_class.value: count for fault_class, count in summary["by_class"].items()}
    )
    print(f"== Synthetic incident log: {REPLICAS} replicas over "
          f"{HORIZON_YEARS:.0f} years ==\n")
    rows = [[name, count] for name, count in by_class.most_common()]
    print(format_table(["threat class", "incidents"], rows))
    print()
    print(
        format_dict(
            {
                "total incidents": summary["total"],
                "fraction latent": summary["latent_fraction"],
                "mean latent detection delay (years)": summary[
                    "mean_latent_detection_delay"
                ]
                / HOURS_PER_YEAR,
                "incidents touching several replicas": summary["multi_replica_events"],
            },
            title="summary",
        )
    )

    print("\nFirst five incidents:")
    for event in events[:5]:
        print(
            f"  year {event.time / HOURS_PER_YEAR:5.1f}: "
            f"{event.fault_class.value:24s} ({event.fault_type.value}), "
            f"{event.replicas_affected} replica(s) affected, "
            f"detected after {(event.detected_at - event.time) / HOURS_PER_YEAR:.2f} years"
        )


def threat_mix_to_model() -> None:
    """Fold the full threat registry into one FaultModel and evaluate it."""
    print("\n== The threat mix as model parameters ==\n")
    model = combined_fault_model()
    print(model.describe())
    mttdl_years = mirrored_mttdl(model) / HOURS_PER_YEAR
    print(f"\nMirrored-pair MTTDL under the full end-to-end threat mix: "
          f"{mttdl_years:,.0f} years")
    print("(media faults alone are far from the whole story once human error,\n"
          " obsolescence, attack, and organisational failure are included)")


def correlation_sources() -> None:
    """Which threats drive the correlation factor, and what mitigation buys."""
    print("\n== Where the correlation comes from ==\n")
    profiles = all_threat_profiles()
    pressure = correlation_pressure(profiles)
    rows = [
        [profile.fault_class.value, f"{contribution:.4f}", profile.mitigations]
        for profile, contribution in pressure.per_threat[:5]
    ]
    print(format_table(["threat", "share of correlation pressure", "mitigation"], rows))
    print(f"\nimplied correlation factor alpha: {pressure.implied_alpha:.4f}")

    top = dominant_correlation_sources(profiles, top=1)[0]
    before, after = mitigation_effect(profiles, top, reach_reduction=0.8)
    print(
        f"\nMitigating '{top.fault_class.value}' (cutting its reach by 80%) moves "
        f"alpha from {before:.4f} to {after:.4f};"
    )
    model = combined_fault_model()
    improved = model.with_correlation(after)
    gain = mirrored_mttdl(improved) / mirrored_mttdl(model)
    print(f"that alone multiplies the mirrored MTTDL by {gain:.1f}x.")


def main() -> None:
    incident_log()
    threat_mix_to_model()
    correlation_sources()


if __name__ == "__main__":
    main()
