#!/usr/bin/env python3
"""Collection-scale planning: object losses, audit throughput, and formats.

The per-unit MTTDL tells only part of the story for a real archive:
services hold millions of objects, each accessed very rarely, and the
bits being intact is worthless if the format they are written in can no
longer be interpreted.  This example covers both collection-scale
questions:

1. How many objects does a 10-million-object photo archive expect to
   lose over 50 years at different audit rates, and what audit bandwidth
   does the required rate actually consume?
2. How often must the archive review its formats (and how fast must a
   migration sweep be) to keep the chance of uninterpretable data low —
   and how much worse proprietary formats make it?

Run with::

    python examples/collection_and_formats.py
"""

from repro.analysis.tables import format_dict, format_table
from repro.core.migration import (
    CAMERA_RAW,
    LEGACY_DATABASE_DUMP,
    OPEN_DOCUMENT_FORMAT,
    probability_uninterpretable,
    proprietary_penalty,
    review_rate_for_target,
)
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.storage.archive import (
    ArchiveCollection,
    access_based_detection_is_sufficient,
    audit_rate_for_loss_budget,
    collection_reliability,
    required_audit_bandwidth,
)

COLLECTION = ArchiveCollection(
    object_count=10_000_000,
    mean_object_size_mb=2.0,
    accesses_per_object_year=0.05,   # the average photo is viewed once in 20 years
    replicas=2,
)

OBJECT_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=1460.0,
    correlation_factor=1.0,
)


def object_loss_projection() -> None:
    print("== Expected object losses over 50 years (10M-object archive) ==\n")
    rows = []
    for label, audits_per_year in (
        ("never audited", 0.0),
        ("audited yearly", 1.0),
        ("audited 3x/year (paper)", 3.0),
        ("audited monthly", 12.0),
    ):
        if audits_per_year == 0.0:
            mdl = OBJECT_MODEL.mean_time_to_latent
        else:
            mdl = HOURS_PER_YEAR / audits_per_year / 2.0
        reliability = collection_reliability(
            COLLECTION, OBJECT_MODEL.with_detection_time(mdl)
        )
        rows.append(
            [
                label,
                reliability.per_object_loss_probability,
                reliability.expected_objects_lost,
                reliability.collection_survival_probability,
            ]
        )
    print(
        format_table(
            ["audit policy", "P(object lost)", "expected objects lost",
             "P(no object lost)"],
            rows,
        )
    )

    sufficient = access_based_detection_is_sufficient(COLLECTION, OBJECT_MODEL)
    print(
        "\nCan we rely on user accesses instead of audits?  "
        f"{'Yes' if sufficient else 'No'} — the average object is read once every "
        f"{COLLECTION.mean_access_interval_hours / HOURS_PER_YEAR:.0f} years, far too "
        "rarely to catch latent faults in time."
    )


def audit_budgeting() -> None:
    print("\n== Audit rate and bandwidth needed for a loss budget ==\n")
    budget = 1e-4  # at most ~1,000 of 10M objects expected lost over 50 years
    rate = audit_rate_for_loss_budget(
        COLLECTION, OBJECT_MODEL, acceptable_loss_fraction=budget
    )
    if rate is None:
        print("The loss budget is unreachable with this hardware.")
        return
    mdl = HOURS_PER_YEAR / rate / 2.0 if rate > 0 else OBJECT_MODEL.mean_time_to_latent
    bandwidth = required_audit_bandwidth(COLLECTION, mdl)
    drives_per_replica = COLLECTION.total_size_tb * 1000.0 / 200.0  # 200 GB drives
    print(
        format_dict(
            {
                "loss budget (fraction of objects)": budget,
                "audits per replica per year": rate,
                "implied detection delay (hours)": mdl,
                "audit read bandwidth per replica (MB/s)": bandwidth,
                "drives per replica (200 GB each)": drives_per_replica,
                "audit bandwidth per drive (MB/s)": bandwidth / drives_per_replica,
            },
            title="audit plan",
        )
    )
    print(
        "\nSpread over the replica's drives this is a couple of MB/s of background\n"
        "reading per drive — a few percent of each drive's bandwidth.  Auditing is\n"
        "cheap compared with the reliability it buys."
    )


def format_risk() -> None:
    print("\n== Format obsolescence: the higher-layer latent fault ==\n")
    rows = []
    for risk in (CAMERA_RAW, LEGACY_DATABASE_DUMP, OPEN_DOCUMENT_FORMAT):
        rows.append(
            [
                risk.name,
                "yes" if risk.proprietary else "no",
                probability_uninterpretable(risk, format_checks_per_year=0.0),
                probability_uninterpretable(risk, format_checks_per_year=1.0),
                probability_uninterpretable(risk, format_checks_per_year=4.0),
            ]
        )
    print(
        format_table(
            ["format", "proprietary", "P(dead), no reviews", "yearly reviews",
             "quarterly reviews"],
            rows,
        )
    )
    penalty = proprietary_penalty(CAMERA_RAW, OPEN_DOCUMENT_FORMAT)
    print(f"\nProprietary RAW is {penalty:.1f}x likelier than an open format to become "
          "uninterpretable at the same review cadence.")
    target = 0.10
    rate = review_rate_for_target(OPEN_DOCUMENT_FORMAT, target)
    if rate is not None:
        print(f"Keeping the open format's 50-year risk under {target:.0%} needs about "
              f"{rate:.2f} format reviews per year.")
    raw_rate = review_rate_for_target(CAMERA_RAW, target)
    if raw_rate is None:
        print("No review cadence achieves that for proprietary RAW — the year-long "
              "migration sweep is the bottleneck; convert the collection to an open "
              "format instead (the paper's recommendation).")


def main() -> None:
    object_loss_projection()
    audit_budgeting()
    format_risk()


if __name__ == "__main__":
    main()
