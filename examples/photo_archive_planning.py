#!/usr/bin/env python3
"""Plan a photo-sharing archive's replication and audit strategy.

The paper's introduction motivates the model with consumer web services
(e-mail, photo sharing, web archives) that promise to keep data forever
on a tight budget.  This example plays the role of such a service's
storage architect:

1. Size the collection and the budget.
2. Compare candidate designs: enterprise RAID in one data centre,
   consumer-drive mirrors across two sites, and three-way consumer
   replication with cross-site auditing.
3. For the chosen design, pick the audit rate that hits a 50-year
   durability target and check the audit bandwidth is feasible.

Run with::

    python examples/photo_archive_planning.py

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
job) shrinks the Monte-Carlo budgets proportionally.

This walkthrough compares three hand-picked designs; to have the
``repro.optimize`` planner search the whole design space and read the
answer off a cost-reliability Pareto frontier instead, see
``examples/plan_archive_budget.py``.
"""

import os

from repro.analysis.tables import format_dict, format_table
from repro.simulation.monte_carlo import estimate_loss_probability
from repro.audit.policies import audits_needed_for_target_mttdl, periodic_schedule, detection_latency
from repro.audit.online_offline import audit_bandwidth_fraction
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import mttdl_for_loss_probability, probability_of_loss
from repro.core.replication import replicated_mttdl
from repro.core.units import HOURS_PER_YEAR, years_to_hours
from repro.storage.costs import cost_model_for_drive, replication_cost
from repro.storage.drives import BARRACUDA_ST3200822A, CHEETAH_15K4
from repro.storage.raid import raid_with_latent_faults_mttdl
from repro.storage.site import assess_independence, diversified_placement, single_site_placement

#: The collection: 200 TB of customer photos that must survive 50 years
#: with at most a 1% chance of loss.
COLLECTION_TB = 200.0
MISSION_YEARS = 50.0
MAX_LOSS_PROBABILITY = 0.01


def durability_target() -> float:
    """MTTDL (hours) needed to meet the mission requirement."""
    target = mttdl_for_loss_probability(
        MAX_LOSS_PROBABILITY, years_to_hours(MISSION_YEARS)
    )
    print(
        f"Target: P(loss) <= {MAX_LOSS_PROBABILITY:.0%} over {MISSION_YEARS:.0f} years"
        f"  =>  MTTDL >= {target / HOURS_PER_YEAR:,.0f} years\n"
    )
    return target


def candidate_designs(target_hours: float) -> None:
    """Evaluate the three candidate designs against the target."""
    # Design A: one data centre, enterprise drives in RAID-5, no scrubbing.
    raid_mttdl = raid_with_latent_faults_mttdl(
        disk_mttf=CHEETAH_15K4.mttf_hours,
        disk_mttr=24.0,
        disks=8,
        latent_mttf=CHEETAH_15K4.mttf_hours / 5.0,
    )

    # Design B: mirrored consumer drives at two independent sites,
    # scrubbed monthly.
    two_site_alpha = assess_independence(diversified_placement(2)).effective_alpha
    mirror_model = FaultModel(
        mean_time_to_visible=BARRACUDA_ST3200822A.mttf_hours,
        mean_time_to_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,
        mean_repair_visible=6.0,
        mean_repair_latent=6.0,
        mean_detect_latent=HOURS_PER_YEAR / 12.0 / 2.0,
        correlation_factor=two_site_alpha,
    )
    mirror_mttdl = mirrored_mttdl(mirror_model)

    # Design C: three consumer replicas crammed into one machine room
    # (replication without independence).
    colocated_alpha = assess_independence(single_site_placement(3)).effective_alpha
    colocated_mttdl = replicated_mttdl(
        mean_time_to_fault=1.0 / (
            1.0 / BARRACUDA_ST3200822A.mttf_hours
            + 5.0 / BARRACUDA_ST3200822A.mttf_hours
        ),
        mean_repair_time=6.0,
        replicas=3,
        correlation_factor=colocated_alpha,
    )

    rows = []
    for name, mttdl in (
        ("A: single-site enterprise RAID-5 (no scrub)", raid_mttdl),
        ("B: 2-site consumer mirror, monthly scrub", mirror_mttdl),
        ("C: 3 co-located consumer replicas", colocated_mttdl),
    ):
        rows.append(
            [
                name,
                mttdl / HOURS_PER_YEAR,
                probability_of_loss(mttdl, years_to_hours(MISSION_YEARS)),
                "yes" if mttdl >= target_hours else "no",
            ]
        )
    print(
        format_table(
            ["design", "MTTDL (yr)", "P(loss, 50 yr)", "meets target"], rows
        )
    )
    print(
        "\nThe two-site scrubbed mirror comes closest: independence plus detection\n"
        "beats both single-site redundancy and co-located replication.  It still\n"
        "misses the 1% target at a monthly scrub — the next section computes the\n"
        "audit rate that closes the gap.\n"
    )


def audit_planning() -> None:
    """How often must design B audit, and can the drives sustain it?"""
    two_site_alpha = assess_independence(diversified_placement(2)).effective_alpha
    base = FaultModel(
        mean_time_to_visible=BARRACUDA_ST3200822A.mttf_hours,
        mean_time_to_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,
        mean_repair_visible=6.0,
        mean_repair_latent=6.0,
        mean_detect_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,  # start unscrubbed
        correlation_factor=two_site_alpha,
    )
    target_years = mttdl_for_loss_probability(
        MAX_LOSS_PROBABILITY, MISSION_YEARS * HOURS_PER_YEAR
    ) / HOURS_PER_YEAR
    needed = audits_needed_for_target_mttdl(base, target_years)
    if needed is None:
        print("No audit rate can reach the target with this hardware.")
        return
    schedule = periodic_schedule(max(needed, 0.1))
    bandwidth_share = audit_bandwidth_fraction(
        capacity_gb=BARRACUDA_ST3200822A.capacity_gb,
        bandwidth_mb_s=BARRACUDA_ST3200822A.sustained_bandwidth_mb_s,
        audits_per_year=max(needed, 0.1),
    )
    print(
        format_dict(
            {
                "audits per replica per year": needed,
                "mean detection delay (hours)": detection_latency(schedule),
                "share of drive bandwidth used": bandwidth_share,
            },
            title="audit plan for design B",
        )
    )
    print(
        "\nEven a comfortable margin above the required audit rate consumes well\n"
        "under 1% of the drives' bandwidth — frequent auditing is cheap on-line."
    )


def verify_by_simulation() -> None:
    """Check design B's closed-form promise with the simulator.

    This is a *realistic* (uncompressed-time) operating point: drive
    lifetimes in the hundreds of thousands of hours, a 50-year mission.
    Standard Monte-Carlo censors essentially every trial here — a few
    thousand trials typically observe zero losses, which is exactly the
    regime PR 3's rare-event machinery exists for: ``method="is"``
    accelerates second faults inside windows of vulnerability and
    reweights by exact likelihood ratios, so the same trial budget
    resolves the loss probability with a real confidence interval.
    """
    two_site_alpha = assess_independence(diversified_placement(2)).effective_alpha
    model = FaultModel(
        mean_time_to_visible=BARRACUDA_ST3200822A.mttf_hours,
        mean_time_to_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,
        mean_repair_visible=6.0,
        mean_repair_latent=6.0,
        mean_detect_latent=HOURS_PER_YEAR / 365.0 / 2.0,  # daily audits
        correlation_factor=two_site_alpha,
    )
    mission = years_to_hours(MISSION_YEARS)
    trials = max(
        200, int(4000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0")))
    )
    standard = estimate_loss_probability(
        model, mission_time=mission, trials=trials, seed=7,
        backend="batch", method="standard",
    )
    weighted = estimate_loss_probability(
        model, mission_time=mission, trials=trials, seed=7,
        method="is", target_relative_error=0.1,
    )
    low, high = weighted.confidence_interval()
    print(
        "\n"
        + format_dict(
            {
                f"standard losses in {trials} trials": standard.losses,
                "standard estimate": standard.mean,
                "IS estimate": weighted.mean,
                "IS 95% CI": f"[{low:.3g}, {high:.3g}]",
                "IS trials": weighted.trials,
                "IS effective sample size": weighted.effective_sample_size,
            },
            title="design B, 50-year loss probability by simulation",
        )
    )
    print(
        "\nStandard Monte-Carlo sees (almost) no losses at this budget — the\n"
        "operating point is simply too reliable — while importance sampling\n"
        "pins the loss probability with a tight interval from the same budget."
    )


def cost_summary() -> None:
    """Annualised cost of the chosen design."""
    breakdown = replication_cost(
        cost_model_for_drive(BARRACUDA_ST3200822A, site_cost_per_year=20000.0),
        dataset_tb=COLLECTION_TB,
        replicas=2,
        audits_per_replica_year=12.0,
        expected_repairs_per_replica_year=HOURS_PER_YEAR
        / BARRACUDA_ST3200822A.mttf_hours,
        independent_sites=2,
    )
    print("\n" + format_dict(breakdown.as_dict(), title="design B annual cost (USD)"))


def main() -> None:
    target = durability_target()
    candidate_designs(target)
    audit_planning()
    verify_by_simulation()
    cost_summary()


if __name__ == "__main__":
    main()
