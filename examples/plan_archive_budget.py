#!/usr/bin/env python3
"""Plan an archive under an explicit annual budget with the optimizer.

Where ``photo_archive_planning.py`` walks through three hand-picked
designs, this example hands the whole decision to the
:mod:`repro.optimize` planner: declare the design space (media,
replication degrees, (n, k) erasure codes, audit rates, placements),
let the analytic screen prune the dominated corners, refine the
survivors with batch Monte-Carlo, and read the recommendation off the
cost–reliability Pareto frontier.

Run with::

    python examples/plan_archive_budget.py

``REPRO_EXAMPLE_SCALE`` (a multiplier in (0, 1], used by the CI smoke
job) shrinks the Monte-Carlo refinement budget proportionally.
"""

import os

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.tables import format_dict, format_table
from repro.optimize import (
    DesignSpace,
    EvaluationSettings,
    optimize,
    recommend,
)

#: The collection: 25 TB of institutional records, a 50-year mission,
#: and $20,000 a year to keep them safe.
DATASET_TB = 25.0
MISSION_YEARS = 50.0
ANNUAL_BUDGET = 20_000.0


def main() -> None:
    space = DesignSpace(
        dataset_tb=DATASET_TB,
        media=("drive:barracuda", "drive:cheetah", "media:tape"),
        replica_counts=(2, 3, 4),
        # The erasure axis: EC(4,2) tolerates as many faults as 3-way
        # replication at 2x storage instead of 3x; EC(6,4) at 1.5x.
        erasure_schemes=("4,2", "6,4"),
        audit_rates=(0.0, 1.0, 12.0, 52.0),
        placements=("single", "multi"),
        site_cost_per_year=1_500.0,
    )
    trials = max(
        200, int(2_000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0")))
    )
    settings = EvaluationSettings(
        mission_years=MISSION_YEARS, trials=trials, seed=2006
    )
    print(
        f"Searching {space.size} candidate designs for {DATASET_TB:g} TB "
        f"over {MISSION_YEARS:g} years...\n"
    )
    result = optimize(space, settings, jobs=2)

    summary = result.summary()
    print(
        format_dict(
            {
                "candidates": summary["candidates"],
                "pruned by analytic screen": summary["pruned_by_screen"],
                "refined by Monte-Carlo": summary["refined"],
            },
            title="search effort",
        )
    )

    rows = []
    for evaluation in result.frontier:
        candidate = evaluation.candidate
        rows.append(
            [
                candidate.medium,
                candidate.effective_scheme().describe(),
                candidate.audits_per_year,
                candidate.placement,
                evaluation.annual_cost,
                evaluation.analytic_loss_probability,
                evaluation.loss_high,
            ]
        )
    print()
    print(
        format_table(
            [
                "medium",
                "redundancy",
                "audits/yr",
                "placement",
                "cost ($/yr)",
                "screen P(loss)",
                "sim CI high",
            ],
            rows,
            title="cost-reliability Pareto frontier",
        )
    )

    chartable = [e for e in result.frontier if e.analytic_loss_probability > 0]
    if len(chartable) >= 2:
        print()
        print(
            ascii_line_chart(
                [e.annual_cost for e in chartable],
                [e.analytic_loss_probability for e in chartable],
                title="annual cost ($) vs screened P(loss, 50 yr), log y",
                log_y=True,
            )
        )

    best = recommend(result.frontier, budget=ANNUAL_BUDGET)
    candidate = best.candidate
    print()
    print(
        format_dict(
            {
                "medium": candidate.medium,
                "redundancy": candidate.effective_scheme().describe(),
                "audits per year": candidate.audits_per_year,
                "placement": candidate.placement,
                "annual cost ($)": best.annual_cost,
                "screened P(loss, 50 yr)": best.analytic_loss_probability,
                "simulated 95% CI": f"[{best.loss_low:.3g}, {best.loss_high:.3g}]",
            },
            title=f"recommended under ${ANNUAL_BUDGET:,.0f}/yr",
        )
    )
    print(
        "\nThe frontier retells Section 6 in dollars: multi-site placement and\n"
        "frequent audits are nearly free and dominate everything they touch,\n"
        "while enterprise drives buy little that consumer replicas plus\n"
        "independence do not already provide.  The erasure codes slot into\n"
        "the frontier's middle band: EC(6,4) matches 3-way replication's\n"
        "tolerated-fault count at half the raw storage, at the price of\n"
        "k-fragment repair reads and more fragments to administer."
    )


if __name__ == "__main__":
    main()
