"""Cross-model property-based tests.

These invariants tie the subsystems together: whatever parameters
hypothesis draws, the analytic model, its approximations, the Markov
chain, and the replication formula must respect the paper's structural
claims (monotonicity in each lever, agreement in limiting regimes,
probabilities staying probabilities).
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.approximations import latent_dominated_mttdl, visible_dominated_mttdl
from repro.core.mttdl import double_fault_breakdown, mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.replication import replicated_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import mirrored_mttdl_markov, replicated_mttdl_markov

# Parameter strategies spanning the paper's operating ranges: mean times
# from hundreds of hours (stress-test regimes) to 1e8 hours (optimistic
# hardware), repair times of minutes to days, detection delays up to the
# latent mean time, and the full plausible correlation range.
mean_times = st.floats(min_value=1e3, max_value=1e8)
repair_times = st.floats(min_value=0.01, max_value=100.0)
alphas = st.floats(min_value=1e-4, max_value=1.0)
detect_fractions = st.floats(min_value=1e-4, max_value=1.0)


def build_model(mv, ml, mrv, mrl, detect_fraction, alpha):
    return FaultModel(
        mean_time_to_visible=mv,
        mean_time_to_latent=ml,
        mean_repair_visible=mrv,
        mean_repair_latent=mrl,
        mean_detect_latent=ml * detect_fraction,
        correlation_factor=alpha,
    )


model_strategy = st.builds(
    build_model,
    mv=mean_times,
    ml=mean_times,
    mrv=repair_times,
    mrl=repair_times,
    detect_fraction=detect_fractions,
    alpha=alphas,
)


class TestAnalyticInvariants:
    @given(model=model_strategy)
    @settings(max_examples=120)
    def test_mttdl_is_positive_and_finite(self, model):
        mttdl = mirrored_mttdl(model)
        assert 0 < mttdl < float("inf")

    @given(model=model_strategy)
    @settings(max_examples=120)
    def test_mttdl_bounded_below_by_fraction_of_first_fault_time(self, model):
        # Losing data requires at least a first fault on one copy; with
        # the capped window probability the conditional loss probability
        # is at most 1, so the MTTDL is at least the combined first-fault
        # mean time (single-copy convention).
        combined_first = 1.0 / model.total_fault_rate
        assert mirrored_mttdl(model) >= combined_first * (1.0 - 1e-9)

    @given(model=model_strategy)
    @settings(max_examples=120)
    def test_mttdl_bounded_above_by_raid_limit(self, model):
        # Latent faults and detection delays can only hurt relative to a
        # hypothetical system with only visible faults and instant
        # detection (Eq. 9 at the same correlation).  The comparison is
        # only meaningful while Eq. 9's linearised window probability is
        # itself below 1 (outside that regime the capped model is the
        # more accurate of the two and may exceed the naive bound).
        linearised_visible_window_probability = (
            model.visible_window
            * (1.0 / model.mean_time_to_visible + 1.0 / model.mean_time_to_latent)
            / model.correlation_factor
        )
        if linearised_visible_window_probability > 0.5:
            return
        assert mirrored_mttdl(model) <= visible_dominated_mttdl(model) * (1 + 1e-9)

    @given(model=model_strategy)
    @settings(max_examples=120)
    def test_breakdown_consistent_with_total(self, model):
        breakdown = double_fault_breakdown(model)
        assert breakdown.total == pytest.approx(1.0 / mirrored_mttdl(model))
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0.0 <= value <= 1.0 for value in fractions.values())

    @given(model=model_strategy, factor=st.floats(min_value=1.1, max_value=100.0))
    @settings(max_examples=80)
    def test_improving_detection_never_hurts(self, model, factor):
        improved = model.with_detection_time(model.mean_detect_latent / factor)
        assert mirrored_mttdl(improved) >= mirrored_mttdl(model) * (1.0 - 1e-9)

    @given(model=model_strategy, factor=st.floats(min_value=1.1, max_value=100.0))
    @settings(max_examples=80)
    def test_better_latent_hardware_never_hurts(self, model, factor):
        # Longer mean time to latent faults with the detection delay held
        # fixed must not reduce reliability.
        improved = model.with_latent_mean_time(model.mean_time_to_latent * factor)
        assert mirrored_mttdl(improved) >= mirrored_mttdl(model) * (1.0 - 1e-9)

    @given(model=model_strategy, mission_years=st.floats(min_value=0.1, max_value=500.0))
    @settings(max_examples=80)
    def test_loss_probability_is_a_probability(self, model, mission_years):
        p = probability_of_loss(mirrored_mttdl(model), mission_years * HOURS_PER_YEAR)
        assert 0.0 <= p <= 1.0


class TestApproximationInvariants:
    @given(
        ml=st.floats(min_value=1e3, max_value=1e6),
        mrl=repair_times,
        detect_fraction=detect_fractions,
        alpha=alphas,
    )
    @settings(max_examples=80)
    def test_latent_dominated_form_matches_full_model_in_its_regime(
        self, ml, mrl, detect_fraction, alpha
    ):
        # Make visible faults vanishingly rare and the latent window
        # short *relative to the correlated second-fault time*: Eq. 10
        # and Eq. 7 must then agree closely.
        mdl = ml * detect_fraction
        if mdl + mrl > alpha * ml / 50.0:
            return
        model = FaultModel(
            mean_time_to_visible=1e12,
            mean_time_to_latent=ml,
            mean_repair_visible=mrl,
            mean_repair_latent=mrl,
            mean_detect_latent=mdl,
            correlation_factor=alpha,
        )
        assert latent_dominated_mttdl(model) == pytest.approx(
            mirrored_mttdl(model), rel=0.05
        )


class TestMarkovAgreement:
    @given(
        mv=st.floats(min_value=1e4, max_value=1e7),
        ml_ratio=st.floats(min_value=0.2, max_value=5.0),
        mrv=repair_times,
        detect_hours=st.floats(min_value=1.0, max_value=5000.0),
        alpha=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_paper_convention_chain_tracks_analytic_model(
        self, mv, ml_ratio, mrv, detect_hours, alpha
    ):
        model = FaultModel(
            mean_time_to_visible=mv,
            mean_time_to_latent=mv * ml_ratio,
            mean_repair_visible=mrv,
            mean_repair_latent=mrv,
            mean_detect_latent=detect_hours,
            correlation_factor=alpha,
        )
        analytic = mirrored_mttdl(model)
        markov = mirrored_mttdl_markov(model, double_first_fault_rate=False)
        ratio = markov / analytic
        # The two bookkeeping conventions can differ by at most a small
        # factor across the whole parameter space (capping vs the
        # detection race); they must never diverge by an order of
        # magnitude.
        assert 0.25 < ratio < 4.0


class TestReplicationInvariants:
    @given(
        mttf=st.floats(min_value=1e3, max_value=1e7),
        mttr=repair_times,
        replicas=st.integers(min_value=1, max_value=6),
        alpha=alphas,
    )
    @settings(max_examples=80)
    def test_eq12_never_below_single_copy(self, mttf, mttr, replicas, alpha):
        assert replicated_mttdl(mttf, mttr, replicas, alpha) >= mttf * (1.0 - 1e-12)

    @given(
        mttf=st.floats(min_value=1e3, max_value=1e5),
        mttr=st.floats(min_value=1.0, max_value=10.0),
        replicas=st.integers(min_value=2, max_value=3),
        alpha=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_markov_chain_replication_monotone(self, mttf, mttr, replicas, alpha):
        # Keep the repair-to-fault rate ratio moderate: the linear solve
        # behind the chain loses precision once the MTTDL approaches
        # (mttf/mttr)^r times the base time scale (~1e16 conditioning).
        assume(mttf / mttr <= 2e4)
        fewer = replicated_mttdl_markov(mttf, mttr, replicas, alpha)
        more = replicated_mttdl_markov(mttf, mttr, replicas + 1, alpha)
        assert more >= fewer * (1.0 - 1e-6)
