"""Tests for the first-class redundancy-scheme abstraction."""

import math

import pytest

from repro.baselines.weatherspoon import (
    equivalent_replication_for_durability,
    storage_overhead_comparison,
)
from repro.core.parameters import FaultModel
from repro.core.redundancy import (
    ErasureCode,
    RedundancyScheme,
    Replication,
    parse_scheme,
    resolve_scheme,
    scheme_loss_rate,
    scheme_mttdl_eq12,
    scheme_mttdl_hours,
)
from repro.core.replication import (
    fragments_needed_for_target,
    replicas_needed_for_target,
    replicated_mttdl,
)


@pytest.fixture
def model():
    return FaultModel(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )


class TestRedundancyScheme:
    def test_replication_factory(self):
        scheme = Replication(3)
        assert scheme == RedundancyScheme(n=3, k=1)
        assert scheme.is_replication
        assert scheme.loss_threshold == 3
        assert scheme.max_tolerable_faults == 2
        assert scheme.storage_overhead == 3.0
        assert scheme.repair_fragments_read == 1

    def test_erasure_factory(self):
        scheme = ErasureCode(6, 4)
        assert not scheme.is_replication
        assert scheme.loss_threshold == 3
        assert scheme.max_tolerable_faults == 2
        assert scheme.storage_overhead == 1.5
        assert scheme.repair_fragments_read == 4

    @pytest.mark.parametrize("n,k", [(0, 1), (3, 0), (3, 4), (-1, -1)])
    def test_invalid_parameters_rejected(self, n, k):
        with pytest.raises(ValueError):
            RedundancyScheme(n=n, k=k)

    def test_describe_and_key(self):
        assert Replication(3).describe() == "3-way replication"
        assert ErasureCode(6, 4).describe() == "EC(6,4)"
        assert ErasureCode(6, 4).key() == "6,4"

    def test_dict_roundtrip(self):
        scheme = ErasureCode(9, 6)
        assert RedundancyScheme.from_dict(scheme.as_dict()) == scheme

    def test_parse_scheme(self):
        assert parse_scheme("6,4") == ErasureCode(6, 4)
        assert parse_scheme("3") == Replication(3)
        assert parse_scheme(" 6 , 4 ") == ErasureCode(6, 4)
        with pytest.raises(ValueError):
            parse_scheme("6,4,2")
        with pytest.raises(ValueError):
            parse_scheme("six,four")

    def test_resolve_scheme_precedence(self):
        assert resolve_scheme(ErasureCode(6, 4), 3) == ErasureCode(6, 4)
        assert resolve_scheme("6,4", None) == ErasureCode(6, 4)
        assert resolve_scheme(None, 3) == Replication(3)
        with pytest.raises(ValueError):
            resolve_scheme(None, None)


class TestSchemeClosedForms:
    def test_replication_special_case_matches_rare_event_owner(self, model):
        from repro.simulation.rare_event import analytic_loss_rate

        for r in (2, 3, 4):
            assert scheme_loss_rate(model, Replication(r)) == (
                analytic_loss_rate(model, r)
            )

    def test_erasure_loses_more_than_replication_same_n(self, model):
        # Same fragment count, higher k => smaller loss threshold =>
        # strictly higher loss rate.
        rates = [
            scheme_loss_rate(model, RedundancyScheme(n=4, k=k))
            for k in (1, 2, 3)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_mttdl_hours_inverts_rate(self, model):
        scheme = ErasureCode(6, 4)
        rate = scheme_loss_rate(model, scheme)
        assert scheme_mttdl_hours(model, scheme) == pytest.approx(1.0 / rate)

    def test_eq12_replication_special_case(self):
        for r in (1, 2, 3, 5):
            assert scheme_mttdl_eq12(1.4e6, 1.0 / 3.0, Replication(r)) == (
                replicated_mttdl(1.4e6, 1.0 / 3.0, r)
            )

    def test_eq12_erasure_monotone_in_k(self):
        # Fixing n, each extra required fragment removes one tolerated
        # fault and must cost reliability.
        values = [
            scheme_mttdl_eq12(1.4e6, 1.0 / 3.0, RedundancyScheme(n=6, k=k))
            for k in (1, 2, 4, 6)
        ]
        assert values == sorted(values, reverse=True)
        # n == k tolerates nothing: MTTDL collapses to one mean fault
        # time shared across n fragments' combined exposure.
        assert values[-1] == pytest.approx(1.4e6)


class TestFragmentsNeededForTarget:
    def test_reduces_to_replicas_needed_for_k1(self):
        target = 1e9
        assert fragments_needed_for_target(
            10, 1, 1.4e6, 1.0 / 3.0, target
        ) == replicas_needed_for_target(
            1.4e6, 1.0 / 3.0, target, max_replicas=10
        )

    def test_higher_k_needs_more_fragments(self):
        target = 1e12
        n1 = fragments_needed_for_target(20, 1, 1.4e6, 1.0 / 3.0, target)
        n4 = fragments_needed_for_target(20, 4, 1.4e6, 1.0 / 3.0, target)
        assert n4 >= n1 + 3  # at least the k-1 extra fragments

    def test_result_meets_target_and_predecessor_does_not(self):
        target = 1e12
        k = 3
        n = fragments_needed_for_target(20, k, 1.4e6, 1.0 / 3.0, target)
        scheme = RedundancyScheme(n=n, k=k)
        assert scheme_mttdl_eq12(1.4e6, 1.0 / 3.0, scheme) >= target
        if n > k:
            below = RedundancyScheme(n=n - 1, k=k)
            assert scheme_mttdl_eq12(1.4e6, 1.0 / 3.0, below) < target

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            fragments_needed_for_target(3, 3, 1.4e6, 1.0 / 3.0, 1e30)


class TestWeatherspoonCrossCheck:
    """Tie the scheme abstraction to the erasure-coding baseline."""

    def test_storage_overhead_matches_baseline(self):
        for (n, k) in [(6, 4), (9, 6), (16, 12)]:
            scheme = ErasureCode(n, k)
            comparison = storage_overhead_comparison(n, k, replicas=3)
            assert scheme.storage_overhead == pytest.approx(
                comparison["erasure_overhead"]
            )
            assert comparison["erasure_savings_factor"] == pytest.approx(
                3.0 / scheme.storage_overhead
            )

    def test_erasure_beats_equivalent_replication_on_overhead(self):
        # Weatherspoon's headline: matching an erasure code's durability
        # with whole-object replication costs far more raw storage.
        scheme = ErasureCode(16, 12)
        replicas = equivalent_replication_for_durability(0.1, 16, 12)
        replication = Replication(replicas)
        assert replication.storage_overhead > scheme.storage_overhead

    def test_loss_threshold_agrees_with_survival_boundary(self):
        # The baseline's m-of-n survival boundary and the scheme's loss
        # threshold describe the same event: with loss_threshold faults,
        # only k - 1 fragments survive and reconstruction fails.
        scheme = ErasureCode(6, 4)
        survivors_at_loss = scheme.n - scheme.loss_threshold
        assert survivors_at_loss == scheme.k - 1


def test_scheme_mttdl_eq12_validates_inputs():
    with pytest.raises(ValueError):
        scheme_mttdl_eq12(0.0, 1.0, Replication(2))
    with pytest.raises(ValueError):
        scheme_mttdl_eq12(1e6, -1.0, Replication(2))
    with pytest.raises(ValueError):
        scheme_mttdl_eq12(1e6, 1.0, Replication(2), correlation_factor=0.0)


def test_loss_rate_zero_when_no_faults():
    model = FaultModel(
        mean_time_to_visible=math.inf,
        mean_time_to_latent=math.inf,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=1.0,
    )
    assert scheme_loss_rate(model, ErasureCode(6, 4)) == 0.0
