"""Tests for the window-of-vulnerability probabilities (Eqs. 3-6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.wov import (
    WindowOfVulnerability,
    prob_any_second_fault_after_latent,
    prob_any_second_fault_after_visible,
    prob_second_fault_after_latent,
    prob_second_fault_after_visible,
    second_fault_probabilities,
    window_after,
)


def model(alpha=1.0, mdl=1460.0, ml=2.8e5):
    return FaultModel(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=ml,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=mdl,
        correlation_factor=alpha,
    )


class TestWindows:
    def test_window_after_visible_is_repair_time(self):
        wov = window_after(model(), FaultType.VISIBLE)
        assert wov.duration == pytest.approx(1.0 / 3.0)
        assert wov.first_fault is FaultType.VISIBLE

    def test_window_after_latent_adds_detection(self):
        wov = window_after(model(), FaultType.LATENT)
        assert wov.duration == pytest.approx(1460.0 + 1.0 / 3.0)

    def test_window_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            WindowOfVulnerability(FaultType.VISIBLE, -1.0)


class TestEquations3To6:
    """Linearised probabilities should match the paper's expressions."""

    def test_eq3_visible_after_visible(self):
        m = model()
        expected = m.mean_repair_visible / m.mean_time_to_visible
        assert prob_second_fault_after_visible(m, FaultType.VISIBLE) == pytest.approx(
            expected
        )

    def test_eq4_latent_after_visible(self):
        m = model()
        expected = m.mean_repair_visible / m.mean_time_to_latent
        assert prob_second_fault_after_visible(m, FaultType.LATENT) == pytest.approx(
            expected
        )

    def test_eq5_visible_after_latent(self):
        m = model()
        expected = (m.mean_detect_latent + m.mean_repair_latent) / m.mean_time_to_visible
        assert prob_second_fault_after_latent(m, FaultType.VISIBLE) == pytest.approx(
            expected
        )

    def test_eq6_latent_after_latent(self):
        m = model()
        expected = (m.mean_detect_latent + m.mean_repair_latent) / m.mean_time_to_latent
        assert prob_second_fault_after_latent(m, FaultType.LATENT) == pytest.approx(
            expected
        )

    def test_correlation_divides_probabilities(self):
        base = prob_second_fault_after_latent(model(alpha=1.0), FaultType.LATENT)
        correlated = prob_second_fault_after_latent(model(alpha=0.1), FaultType.LATENT)
        assert correlated == pytest.approx(base / 0.1)

    def test_latent_window_probability_exceeds_visible_window(self):
        m = model()
        assert prob_second_fault_after_latent(
            m, FaultType.LATENT
        ) > prob_second_fault_after_visible(m, FaultType.LATENT)


class TestCombinedProbabilities:
    def test_combined_after_latent_capped_at_one(self):
        # No scrubbing: MDL comparable to ML makes the linearised sum > 1.
        m = model(mdl=2.8e5)
        assert prob_any_second_fault_after_latent(m) == 1.0

    def test_combined_after_latent_small_when_scrubbed(self):
        m = model(mdl=1460.0)
        assert prob_any_second_fault_after_latent(m) < 0.01

    def test_combined_after_visible_is_sum_when_small(self):
        m = model()
        expected = prob_second_fault_after_visible(
            m, FaultType.VISIBLE
        ) + prob_second_fault_after_visible(m, FaultType.LATENT)
        assert prob_any_second_fault_after_visible(m) == pytest.approx(expected)

    def test_exact_form_never_exceeds_one(self):
        m = model(mdl=1e7)
        assert prob_any_second_fault_after_latent(m, exact=True) <= 1.0

    def test_exact_and_linear_agree_for_short_windows(self):
        m = model(mdl=100.0)
        linear = prob_any_second_fault_after_latent(m, exact=False)
        exact = prob_any_second_fault_after_latent(m, exact=True)
        assert exact == pytest.approx(linear, rel=1e-3)


class TestSecondFaultProbabilitiesTable:
    def test_contains_all_four_combinations(self):
        table = second_fault_probabilities(model())
        assert len(table) == 4
        for first in FaultType:
            for second in FaultType:
                assert (first, second) in table

    def test_all_probabilities_non_negative(self):
        table = second_fault_probabilities(model(alpha=0.01))
        assert all(value >= 0 for value in table.values())

    def test_exact_probabilities_bounded_by_one(self):
        table = second_fault_probabilities(model(alpha=0.001, mdl=1e7), exact=True)
        assert all(0 <= value <= 1 for value in table.values())


@given(
    alpha=st.floats(min_value=0.01, max_value=1.0),
    mdl=st.floats(min_value=0.0, max_value=1e6),
)
def test_exact_probability_bounded_property(alpha, mdl):
    m = model(alpha=alpha, mdl=mdl)
    for first in FaultType:
        table = second_fault_probabilities(m, exact=True)
        for value in table.values():
            assert 0.0 <= value <= 1.0
