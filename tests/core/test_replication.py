"""Tests for the r-way replication model (Eq. 12)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import FaultModel
from repro.core.replication import (
    effective_replicas,
    replicas_needed_for_target,
    replicated_mttdl,
    replicated_mttdl_from_model,
    replication_gain,
    replication_sweep,
)

MV = 1.4e6
MRV = 1.0 / 3.0


class TestEquation12:
    def test_single_replica_is_mean_time_to_fault(self):
        assert replicated_mttdl(MV, MRV, 1) == MV

    def test_mirrored_formula(self):
        assert replicated_mttdl(MV, MRV, 2) == pytest.approx(MV ** 2 / MRV)

    def test_general_formula(self):
        r = 4
        alpha = 0.3
        expected = alpha ** (r - 1) * MV ** r / MRV ** (r - 1)
        assert replicated_mttdl(MV, MRV, r, alpha) == pytest.approx(expected)

    def test_correlation_offsets_replication(self):
        # Paper Section 5.5: with strong correlation, adding replicas
        # buys little.  At alpha = MRV/MV every extra replica buys
        # nothing at all.
        alpha = MRV / MV
        assert replicated_mttdl(MV, MRV, 5, alpha) == pytest.approx(MV)

    def test_zero_repair_time_gives_infinite_mttdl(self):
        assert replicated_mttdl(MV, 0.0, 3) == float("inf")

    @pytest.mark.parametrize("replicas", [0, -1])
    def test_rejects_bad_replica_count(self, replicas):
        with pytest.raises(ValueError):
            replicated_mttdl(MV, MRV, replicas)

    def test_rejects_bad_mean_time(self):
        with pytest.raises(ValueError):
            replicated_mttdl(0.0, MRV, 2)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            replicated_mttdl(MV, MRV, 2, correlation_factor=0.0)


class TestReplicationGain:
    def test_gain_is_alpha_mv_over_mrv(self):
        gain = replication_gain(MV, MRV, 2, correlation_factor=0.5)
        assert gain == pytest.approx(0.5 * MV / MRV)

    def test_gain_independent_of_starting_degree(self):
        assert replication_gain(MV, MRV, 2) == pytest.approx(
            replication_gain(MV, MRV, 5)
        )

    def test_strong_correlation_erodes_gain(self):
        assert replication_gain(MV, MRV, 2, 0.001) < replication_gain(MV, MRV, 2, 1.0)


class TestReplicasNeeded:
    def test_target_below_single_copy_needs_one(self):
        assert replicas_needed_for_target(MV, MRV, MV / 2) == 1

    def test_mirrored_target(self):
        target = MV ** 2 / MRV * 0.9
        assert replicas_needed_for_target(MV, MRV, target) == 2

    def test_unreachable_target_raises(self):
        # With alpha = MRV/MV extra replicas add nothing, so an
        # out-of-reach target must raise.
        with pytest.raises(ValueError):
            replicas_needed_for_target(
                MV, MRV, MV * 10, correlation_factor=MRV / MV, max_replicas=16
            )

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError):
            replicas_needed_for_target(MV, MRV, 0.0)

    @given(
        alpha=st.floats(min_value=0.01, max_value=1.0),
        target_exponent=st.integers(min_value=6, max_value=12),
    )
    @settings(max_examples=30)
    def test_returned_degree_meets_target_property(self, alpha, target_exponent):
        target = 10.0 ** target_exponent
        try:
            needed = replicas_needed_for_target(MV, MRV, target, alpha)
        except ValueError:
            return
        assert replicated_mttdl(MV, MRV, needed, alpha) >= target
        if needed > 1:
            assert replicated_mttdl(MV, MRV, needed - 1, alpha) < target


class TestSweepAndModelDriven:
    def test_sweep_length_and_monotonicity(self):
        sweep = replication_sweep(MV, MRV, 6)
        assert len(sweep) == 6
        assert all(b >= a for a, b in zip(sweep, sweep[1:]))

    def test_sweep_rejects_bad_max(self):
        with pytest.raises(ValueError):
            replication_sweep(MV, MRV, 0)

    def test_model_driven_uses_combined_rate(self):
        model = FaultModel(
            mean_time_to_visible=1.4e6,
            mean_time_to_latent=2.8e5,
            mean_repair_visible=MRV,
            mean_repair_latent=MRV,
            mean_detect_latent=0.0,
            correlation_factor=1.0,
        )
        combined = 1.0 / (1.0 / 1.4e6 + 1.0 / 2.8e5)
        assert replicated_mttdl_from_model(model, 2) == pytest.approx(
            combined ** 2 / MRV
        )


class TestEffectiveReplicas:
    def test_independent_system_has_full_effectiveness(self):
        assert effective_replicas(3, 1.0, MV, MRV) == pytest.approx(3.0)

    def test_correlated_system_worth_fewer_replicas(self):
        assert effective_replicas(3, 0.001, MV, MRV) < 3.0

    def test_at_least_one_replica(self):
        assert effective_replicas(4, 0.001, MV, MRV) >= 1.0


@given(
    replicas=st.integers(min_value=1, max_value=8),
    alpha=st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=60)
def test_mttdl_monotone_in_replicas_property(replicas, alpha):
    assert replicated_mttdl(MV, MRV, replicas + 1, alpha) >= replicated_mttdl(
        MV, MRV, replicas, alpha
    )


@given(
    replicas=st.integers(min_value=2, max_value=8),
    alpha1=st.floats(min_value=0.001, max_value=1.0),
    alpha2=st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=60)
def test_mttdl_monotone_in_alpha_property(replicas, alpha1, alpha2):
    low, high = sorted((alpha1, alpha2))
    assert replicated_mttdl(MV, MRV, replicas, low) <= replicated_mttdl(
        MV, MRV, replicas, high
    )
