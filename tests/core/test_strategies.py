"""Tests for the Section 6 strategy evaluation."""

import pytest

from repro.core.parameters import FaultModel
from repro.core.strategies import (
    Strategy,
    alpha_lower_bound,
    alpha_range_orders_of_magnitude,
    evaluate_all_strategies,
    evaluate_strategy,
    rank_strategies,
)


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=0.5,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestSingleStrategies:
    def test_reduce_mdl_improves_mttdl(self):
        outcome = evaluate_strategy(model(), Strategy.REDUCE_MDL, factor=2.0)
        assert outcome.improvement_ratio > 1.0

    def test_increase_ml_improves_mttdl(self):
        outcome = evaluate_strategy(model(), Strategy.INCREASE_ML, factor=2.0)
        assert outcome.improvement_ratio > 1.0

    def test_increase_independence_caps_alpha_at_one(self):
        outcome = evaluate_strategy(
            model(correlation_factor=0.8), Strategy.INCREASE_INDEPENDENCE, factor=4.0
        )
        assert outcome.model.correlation_factor == 1.0

    def test_increase_independence_improvement_matches_alpha_change(self):
        outcome = evaluate_strategy(
            model(correlation_factor=0.25), Strategy.INCREASE_INDEPENDENCE, factor=2.0
        )
        assert outcome.improvement_ratio == pytest.approx(2.0, rel=0.01)

    def test_reduce_mrv_touches_only_visible_repair(self):
        outcome = evaluate_strategy(model(), Strategy.REDUCE_MRV, factor=4.0)
        assert outcome.model.mean_repair_visible == pytest.approx(1.0 / 12.0)
        assert outcome.model.mean_repair_latent == pytest.approx(1.0 / 3.0)

    def test_increase_replication_uses_replica_count(self):
        outcome = evaluate_strategy(
            model(), Strategy.INCREASE_REPLICATION, factor=2.0, replicas=2
        )
        assert outcome.replicas == 4
        assert outcome.improvement_ratio > 1.0

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            evaluate_strategy(model(), Strategy.REDUCE_MDL, factor=0.5)

    def test_rejects_single_replica_system(self):
        with pytest.raises(ValueError):
            evaluate_strategy(model(), Strategy.REDUCE_MDL, replicas=1)

    def test_outcome_years_properties(self):
        outcome = evaluate_strategy(model(), Strategy.REDUCE_MDL, factor=2.0)
        assert outcome.improved_mttdl_years == pytest.approx(
            outcome.improved_mttdl_hours / 8760.0
        )
        assert outcome.baseline_mttdl_years == pytest.approx(
            outcome.baseline_mttdl_hours / 8760.0
        )


class TestStrategyComparison:
    def test_all_strategies_evaluated(self):
        outcomes = evaluate_all_strategies(model())
        assert set(outcomes) == set(Strategy)

    def test_no_strategy_hurts(self):
        outcomes = evaluate_all_strategies(model(), factor=2.0)
        for outcome in outcomes.values():
            assert outcome.improvement_ratio >= 0.999

    def test_ranking_sorted_by_improvement(self):
        ranked = rank_strategies(model(), factor=2.0)
        ratios = [outcome.improvement_ratio for outcome in ranked]
        assert ratios == sorted(ratios, reverse=True)

    def test_paper_conclusion_detection_beats_better_hardware(self):
        # In the latent-dominated regime the paper concludes that
        # reducing the detection time matters more than improving the
        # visible-fault hardware.
        outcomes = evaluate_all_strategies(model(), factor=2.0)
        assert (
            outcomes[Strategy.REDUCE_MDL].improvement_ratio
            > outcomes[Strategy.INCREASE_MV].improvement_ratio
        )

    def test_subset_of_strategies(self):
        subset = [Strategy.REDUCE_MDL, Strategy.INCREASE_MV]
        outcomes = evaluate_all_strategies(model(), strategies=subset)
        assert set(outcomes) == set(subset)


class TestPaperConclusionRanking:
    """Section 6's bottom line: detection latency, automated repair,
    and independence dominate better hardware."""

    def paper_point(self):
        # Scrubbed pair with correlated faults and slow manual
        # latent-fault repair — the regime where all three of the
        # paper's headline levers have room to act.
        return model(mean_repair_latent=2920.0, correlation_factor=0.1)

    def test_detection_repair_and_independence_beat_hardware(self):
        outcomes = evaluate_all_strategies(self.paper_point(), factor=2.0)
        hardware = outcomes[Strategy.INCREASE_MV].improvement_ratio
        for winner in (
            Strategy.REDUCE_MDL,
            Strategy.REDUCE_MRL,
            Strategy.INCREASE_INDEPENDENCE,
        ):
            assert outcomes[winner].improvement_ratio > hardware, winner

    def test_hardware_gain_is_marginal(self):
        # Doubling the visible-fault MTTF buys under 10% because latent
        # faults dominate the loss rate — the reason the paper calls
        # the incremental cost of enterprise drives hard to justify.
        outcomes = evaluate_all_strategies(self.paper_point(), factor=2.0)
        assert outcomes[Strategy.INCREASE_MV].improvement_ratio < 1.10

    def test_independence_scales_with_the_factor(self):
        outcomes = evaluate_all_strategies(self.paper_point(), factor=4.0)
        assert outcomes[Strategy.INCREASE_INDEPENDENCE].improvement_ratio == (
            pytest.approx(4.0, rel=0.01)
        )

    def test_ranking_puts_a_paper_lever_ahead_of_hardware_everywhere(self):
        # The conclusion is not an artifact of one operating point: it
        # holds from weakly to strongly correlated regimes.  (Below
        # alpha ~0.01 the windows of vulnerability saturate and every
        # lever but replication flatlines at ratio 1.)
        for alpha in (0.9, 0.5, 0.1):
            ranked = rank_strategies(
                model(mean_repair_latent=2920.0, correlation_factor=alpha),
                factor=2.0,
            )
            order = [outcome.strategy for outcome in ranked]
            assert order.index(Strategy.REDUCE_MDL) < order.index(
                Strategy.INCREASE_MV
            )


class TestAlphaBounds:
    def test_paper_lower_bound_value(self):
        bound = alpha_lower_bound(model())
        assert bound == pytest.approx(10.0 * (1.0 / 3.0) / 1.4e6, rel=1e-6)

    def test_lower_bound_capped_at_one(self):
        slow_repair = model(mean_repair_visible=1e6)
        assert alpha_lower_bound(slow_repair) == 1.0

    def test_range_spans_at_least_five_orders_of_magnitude(self):
        # The paper quotes "a range of at least 5 orders of magnitude".
        assert alpha_range_orders_of_magnitude(model()) >= 5.0

    def test_rejects_bad_safety_multiple(self):
        with pytest.raises(ValueError):
            alpha_lower_bound(model(), safety_multiple=0.0)
