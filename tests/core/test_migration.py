"""Tests for format/media migration planning."""

import pytest

from repro.core.migration import (
    CAMERA_RAW,
    LEGACY_DATABASE_DUMP,
    OPEN_DOCUMENT_FORMAT,
    FormatRisk,
    mttdf_hours,
    obsolescence_fault_model,
    probability_uninterpretable,
    proprietary_penalty,
    review_rate_for_target,
)
from repro.core.units import HOURS_PER_YEAR


class TestFormatRisk:
    def test_builtin_profiles_flag_proprietary_formats(self):
        assert CAMERA_RAW.proprietary
        assert LEGACY_DATABASE_DUMP.proprietary
        assert not OPEN_DOCUMENT_FORMAT.proprietary

    def test_validation(self):
        with pytest.raises(ValueError):
            FormatRisk("bad", 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            FormatRisk("bad", 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            FormatRisk("bad", 1.0, 1.0, 0.0)


class TestObsolescenceFaultModel:
    def test_mapping_to_model_parameters(self):
        model = obsolescence_fault_model(CAMERA_RAW, format_checks_per_year=1.0)
        assert model.mean_time_to_latent == pytest.approx(8.0 * HOURS_PER_YEAR)
        assert model.mean_time_to_visible == pytest.approx(5.0 * HOURS_PER_YEAR)
        assert model.mean_detect_latent == pytest.approx(HOURS_PER_YEAR / 2.0)
        assert model.mean_repair_latent == pytest.approx(1.0 * HOURS_PER_YEAR)

    def test_no_reviews_means_detection_as_slow_as_endangerment(self):
        model = obsolescence_fault_model(CAMERA_RAW, format_checks_per_year=0.0)
        assert model.mean_detect_latent == model.mean_time_to_latent

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            obsolescence_fault_model(CAMERA_RAW, -1.0)

    def test_mttdf_increases_with_review_rate(self):
        lazy = mttdf_hours(CAMERA_RAW, 0.0)
        diligent = mttdf_hours(CAMERA_RAW, 4.0)
        assert diligent > lazy


class TestUninterpretabilityProbability:
    def test_more_reviews_lower_risk(self):
        lazy = probability_uninterpretable(CAMERA_RAW, 0.0)
        yearly = probability_uninterpretable(CAMERA_RAW, 1.0)
        quarterly = probability_uninterpretable(CAMERA_RAW, 4.0)
        assert lazy > yearly > quarterly

    def test_open_formats_much_safer(self):
        assert probability_uninterpretable(
            OPEN_DOCUMENT_FORMAT, 1.0
        ) < probability_uninterpretable(CAMERA_RAW, 1.0)

    def test_probability_in_unit_interval(self):
        for checks in (0.0, 0.5, 2.0, 12.0):
            p = probability_uninterpretable(CAMERA_RAW, checks)
            assert 0.0 <= p <= 1.0

    def test_longer_missions_riskier(self):
        assert probability_uninterpretable(
            CAMERA_RAW, 1.0, mission_years=100.0
        ) > probability_uninterpretable(CAMERA_RAW, 1.0, mission_years=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_uninterpretable(CAMERA_RAW, 1.0, mission_years=0.0)
        with pytest.raises(ValueError):
            probability_uninterpretable(CAMERA_RAW, -1.0)


class TestReviewRatePlanning:
    def test_returned_rate_meets_target(self):
        target = 0.3
        rate = review_rate_for_target(OPEN_DOCUMENT_FORMAT, target)
        assert rate is not None
        assert probability_uninterpretable(OPEN_DOCUMENT_FORMAT, rate) <= target * 1.01

    def test_unreachable_target_returns_none(self):
        # For the proprietary RAW profile even monthly reviews leave a
        # >60% 50-year risk (the year-long migration sweep dominates), so
        # tight targets are unreachable by reviewing alone.
        assert review_rate_for_target(CAMERA_RAW, 0.3) is None
        assert review_rate_for_target(CAMERA_RAW, 1e-6) is None

    def test_easy_target_needs_no_reviews(self):
        assert review_rate_for_target(OPEN_DOCUMENT_FORMAT, 0.99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            review_rate_for_target(CAMERA_RAW, 0.0)


class TestProprietaryPenalty:
    def test_penalty_greater_than_one(self):
        assert proprietary_penalty(CAMERA_RAW, OPEN_DOCUMENT_FORMAT) > 2.0

    def test_penalty_of_format_against_itself_is_one(self):
        assert proprietary_penalty(CAMERA_RAW, CAMERA_RAW) == pytest.approx(1.0)
