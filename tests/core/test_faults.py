"""Tests for the fault vocabulary (FaultType, FaultClass, FaultSpec)."""

import pytest

from repro.core.faults import (
    DEFAULT_TYPE_FOR_CLASS,
    FaultClass,
    FaultSpec,
    FaultType,
    latent_fault,
    visible_fault,
)


class TestFaultType:
    def test_latent_flag(self):
        assert FaultType.LATENT.is_latent
        assert not FaultType.LATENT.is_visible

    def test_visible_flag(self):
        assert FaultType.VISIBLE.is_visible
        assert not FaultType.VISIBLE.is_latent


class TestFaultClassDefaults:
    def test_every_class_has_a_default_type(self):
        for fault_class in FaultClass:
            assert fault_class in DEFAULT_TYPE_FOR_CLASS

    def test_media_faults_default_to_latent(self):
        assert DEFAULT_TYPE_FOR_CLASS[FaultClass.MEDIA_FAULT] is FaultType.LATENT

    def test_disasters_default_to_visible(self):
        assert (
            DEFAULT_TYPE_FOR_CLASS[FaultClass.LARGE_SCALE_DISASTER]
            is FaultType.VISIBLE
        )


class TestFaultSpec:
    def test_visible_constructor(self):
        spec = visible_fault(1000.0, 2.0, FaultClass.COMPONENT_FAULT, "disk died")
        assert spec.fault_type is FaultType.VISIBLE
        assert spec.mean_detection_time == 0.0
        assert spec.fault_class is FaultClass.COMPONENT_FAULT

    def test_latent_constructor(self):
        spec = latent_fault(500.0, 1.0, 50.0)
        assert spec.fault_type is FaultType.LATENT
        assert spec.mean_detection_time == 50.0

    def test_rate_is_inverse_of_mean_time(self):
        spec = visible_fault(250.0, 1.0)
        assert spec.rate == pytest.approx(1.0 / 250.0)

    def test_window_of_vulnerability_visible(self):
        spec = visible_fault(1000.0, 3.0)
        assert spec.window_of_vulnerability == 3.0

    def test_window_of_vulnerability_latent_includes_detection(self):
        spec = latent_fault(1000.0, 3.0, 40.0)
        assert spec.window_of_vulnerability == 43.0

    def test_with_detection_time_returns_new_spec(self):
        spec = latent_fault(1000.0, 3.0, 40.0)
        updated = spec.with_detection_time(10.0)
        assert updated.mean_detection_time == 10.0
        assert spec.mean_detection_time == 40.0

    def test_rejects_zero_mean_time(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultType.VISIBLE, 0.0, 1.0)

    def test_rejects_negative_repair(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultType.VISIBLE, 10.0, -1.0)

    def test_rejects_negative_detection(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultType.LATENT, 10.0, 1.0, -5.0)

    def test_visible_spec_rejects_nonzero_detection_time(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultType.VISIBLE, 10.0, 1.0, mean_detection_time=2.0)

    def test_specs_are_hashable_and_comparable(self):
        a = visible_fault(10.0, 1.0)
        b = visible_fault(10.0, 1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_description_not_part_of_equality(self):
        a = visible_fault(10.0, 1.0, description="one")
        b = visible_fault(10.0, 1.0, description="two")
        assert a == b
