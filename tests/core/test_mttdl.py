"""Tests for the mirrored MTTDL (Eqs. 7-8) and the double-fault breakdown."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.faults import FaultType
from repro.core.mttdl import (
    double_fault_breakdown,
    double_fault_rate,
    mirrored_mttdl,
    mirrored_mttdl_closed_form,
    mirrored_mttdl_exact,
)
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestPaperWorkedExamples:
    def test_no_scrub_32_years(self):
        unscrubbed = model(mean_detect_latent=2.8e5)
        assert mirrored_mttdl(unscrubbed) / HOURS_PER_YEAR == pytest.approx(
            32.0, rel=0.01
        )

    def test_scrubbed_same_order_as_paper(self):
        # The paper's 6128.7-year figure comes from the Eq. 10
        # approximation; the full Eq. 7 evaluation is within 20% of it.
        years = mirrored_mttdl(model()) / HOURS_PER_YEAR
        assert 5000.0 < years < 6500.0

    def test_scrubbing_improves_mttdl_by_two_orders_of_magnitude(self):
        unscrubbed = mirrored_mttdl(model(mean_detect_latent=2.8e5))
        scrubbed = mirrored_mttdl(model(mean_detect_latent=1460.0))
        assert scrubbed / unscrubbed > 100.0

    def test_correlation_scales_mttdl_linearly_when_scrubbed(self):
        base = mirrored_mttdl(model())
        correlated = mirrored_mttdl(model(correlation_factor=0.1))
        assert correlated == pytest.approx(base * 0.1, rel=0.01)


class TestDoubleFaultRate:
    def test_rate_is_inverse_of_mttdl(self):
        m = model()
        assert double_fault_rate(m) == pytest.approx(1.0 / mirrored_mttdl(m))

    def test_rate_increases_with_detection_time(self):
        fast = double_fault_rate(model(mean_detect_latent=100.0))
        slow = double_fault_rate(model(mean_detect_latent=10000.0))
        assert slow > fast

    def test_rate_decreases_with_longer_fault_mean_times(self):
        worse = double_fault_rate(model(mean_time_to_latent=1e5))
        better = double_fault_rate(model(mean_time_to_latent=1e6))
        assert better < worse

    def test_uncapped_rate_at_least_capped_rate(self):
        m = model(mean_detect_latent=2.8e5)
        assert double_fault_rate(m, cap_windows=False) >= double_fault_rate(
            m, cap_windows=True
        )


class TestBreakdown:
    def test_breakdown_total_matches_rate(self):
        m = model()
        breakdown = double_fault_breakdown(m)
        assert breakdown.total == pytest.approx(double_fault_rate(m))

    def test_latent_first_dominates_without_scrubbing(self):
        breakdown = double_fault_breakdown(model(mean_detect_latent=2.8e5))
        assert breakdown.after_latent > 100 * breakdown.after_visible

    def test_fractions_sum_to_one(self):
        fractions = double_fault_breakdown(model()).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_as_dict_has_four_combinations(self):
        table = double_fault_breakdown(model()).as_dict()
        assert set(table) == {
            (FaultType.VISIBLE, FaultType.VISIBLE),
            (FaultType.VISIBLE, FaultType.LATENT),
            (FaultType.LATENT, FaultType.VISIBLE),
            (FaultType.LATENT, FaultType.LATENT),
        }

    def test_latent_second_more_likely_than_visible_second(self):
        # ML < MV, so within any window a latent second fault is the more
        # frequent finisher.
        breakdown = double_fault_breakdown(model())
        assert breakdown.latent_then_latent > breakdown.latent_then_visible
        assert breakdown.visible_then_latent > breakdown.visible_then_visible


class TestEvaluationModes:
    def test_exact_close_to_capped_in_scrubbed_regime(self):
        m = model()
        assert mirrored_mttdl_exact(m) == pytest.approx(mirrored_mttdl(m), rel=0.05)

    def test_closed_form_matches_capped_when_windows_short(self):
        m = model(mean_detect_latent=10.0)
        assert mirrored_mttdl_closed_form(m) == pytest.approx(
            mirrored_mttdl(m, cap_windows=False), rel=1e-9
        )

    def test_closed_form_overestimates_when_windows_long(self):
        m = model(mean_detect_latent=2.8e5)
        # Literal Eq. 8 without capping claims less loss than the capped
        # evaluation concedes.
        assert mirrored_mttdl_closed_form(m) < mirrored_mttdl(m) * 2
        assert mirrored_mttdl_closed_form(m) > 0

    def test_zero_repair_and_detection_times_give_infinite_mttdl(self):
        m = model(
            mean_repair_visible=0.0,
            mean_repair_latent=0.0,
            mean_detect_latent=0.0,
        )
        assert mirrored_mttdl(m) == float("inf")


class TestMonotonicityProperties:
    @given(
        mdl1=st.floats(min_value=1.0, max_value=1e6),
        mdl2=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=50)
    def test_mttdl_monotone_in_detection_time(self, mdl1, mdl2):
        low, high = sorted((mdl1, mdl2))
        assert mirrored_mttdl(model(mean_detect_latent=low)) >= mirrored_mttdl(
            model(mean_detect_latent=high)
        )

    @given(
        alpha1=st.floats(min_value=0.001, max_value=1.0),
        alpha2=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_mttdl_monotone_in_correlation_factor(self, alpha1, alpha2):
        low, high = sorted((alpha1, alpha2))
        assert mirrored_mttdl(model(correlation_factor=low)) <= mirrored_mttdl(
            model(correlation_factor=high)
        )

    @given(ml=st.floats(min_value=1e3, max_value=1e8))
    @settings(max_examples=50)
    def test_mttdl_positive_property(self, ml):
        assert mirrored_mttdl(model(mean_time_to_latent=ml)) > 0

    @given(
        mv=st.floats(min_value=1e3, max_value=1e8),
        ml=st.floats(min_value=1e3, max_value=1e8),
        alpha=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_exact_never_exceeds_best_single_copy_time_scale(self, mv, ml, alpha):
        # Data loss requires at least one fault, so the MTTDL can never be
        # smaller than a fraction of the time to the first fault; sanity
        # bound: it must be at least half the combined first-fault mean
        # time (two copies, capped probability 1 of the second fault).
        m = model(
            mean_time_to_visible=mv,
            mean_time_to_latent=ml,
            correlation_factor=alpha,
            mean_detect_latent=min(mv, ml),
        )
        combined_first = 1.0 / (1.0 / mv + 1.0 / ml)
        assert mirrored_mttdl(m) >= combined_first * 0.49
