"""Tests for the audit-rate trade-off analysis (Section 6.6)."""

import pytest

from repro.core.parameters import FaultModel
from repro.core.tradeoffs import (
    audit_rate_sweep,
    audit_rate_tradeoff,
    mdl_for_audit_rate,
    optimal_audit_rate,
)


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestMdlForAuditRate:
    def test_three_audits_a_year_is_1460_hours(self):
        assert mdl_for_audit_rate(3.0) == pytest.approx(1460.0)

    def test_more_audits_shorter_delay(self):
        assert mdl_for_audit_rate(12.0) < mdl_for_audit_rate(3.0)

    def test_zero_audits_is_infinite(self):
        assert mdl_for_audit_rate(0.0) == float("inf")

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            mdl_for_audit_rate(-1.0)


class TestTradeoffEvaluation:
    def test_no_wear_more_audits_always_better(self):
        slow = audit_rate_tradeoff(model(), audits_per_year=1.0)
        fast = audit_rate_tradeoff(model(), audits_per_year=12.0)
        assert fast.mttdl_hours > slow.mttdl_hours

    def test_zero_audit_rate_uses_fallback_detection_horizon(self):
        result = audit_rate_tradeoff(model(), audits_per_year=0.0)
        assert result.mean_detect_latent == model().mean_time_to_latent

    def test_custom_no_audit_horizon(self):
        result = audit_rate_tradeoff(
            model(), audits_per_year=0.0, no_audit_detection_horizon=123.0
        )
        assert result.mean_detect_latent == 123.0

    def test_wear_reduces_fault_mean_times(self):
        result = audit_rate_tradeoff(model(), audits_per_year=10.0, wear_per_audit=0.01)
        assert result.effective_model.mean_time_to_visible < model().mean_time_to_visible

    def test_cost_scales_with_audit_rate(self):
        result = audit_rate_tradeoff(model(), 6.0, cost_per_audit=25.0)
        assert result.annual_cost == pytest.approx(150.0)

    def test_mttdl_years_property(self):
        result = audit_rate_tradeoff(model(), 3.0)
        assert result.mttdl_years == pytest.approx(result.mttdl_hours / 8760.0)

    def test_rejects_bad_wear(self):
        with pytest.raises(ValueError):
            audit_rate_tradeoff(model(), 3.0, wear_per_audit=1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            audit_rate_tradeoff(model(), 3.0, cost_per_audit=-1.0)


class TestSweepAndOptimum:
    def test_sweep_length(self):
        rates = [0.0, 1.0, 3.0, 12.0, 52.0]
        assert len(audit_rate_sweep(model(), rates)) == len(rates)

    def test_without_wear_optimum_is_highest_rate(self):
        rates = [1.0, 3.0, 12.0, 52.0]
        best = optimal_audit_rate(model(), rates, wear_per_audit=0.0)
        assert best.audits_per_year == 52.0

    def test_with_heavy_wear_optimum_is_interior(self):
        # Strong audit-induced wear makes very frequent auditing
        # counter-productive — the Section 6.6 balance.
        rates = [1.0, 3.0, 12.0, 52.0, 365.0]
        best = optimal_audit_rate(model(), rates, wear_per_audit=0.02)
        assert best.audits_per_year < 365.0

    def test_empty_rates_raises(self):
        with pytest.raises(ValueError):
            optimal_audit_rate(model(), [])


class TestOptimalRateShape:
    """Section 6.6: auditing is monotone when free of wear, and has an
    interior optimum once each pass costs the media something."""

    DENSE_RATES = [float(rate) for rate in range(1, 201, 2)]

    def test_zero_wear_is_monotone_in_the_audit_rate(self):
        results = audit_rate_sweep(model(), self.DENSE_RATES, wear_per_audit=0.0)
        mttdls = [result.mttdl_hours for result in results]
        assert all(b >= a for a, b in zip(mttdls, mttdls[1:]))
        best = optimal_audit_rate(model(), self.DENSE_RATES, wear_per_audit=0.0)
        assert best.audits_per_year == self.DENSE_RATES[-1]

    def test_nonzero_wear_gives_a_strictly_interior_optimum(self):
        results = audit_rate_sweep(model(), self.DENSE_RATES, wear_per_audit=0.01)
        mttdls = [result.mttdl_hours for result in results]
        index = mttdls.index(max(mttdls))
        # Strictly interior: the optimum is neither endpoint, and both
        # neighbours are genuinely worse (a peak, not a plateau edge).
        assert 0 < index < len(self.DENSE_RATES) - 1
        assert mttdls[index] > mttdls[index - 1]
        assert mttdls[index] > mttdls[index + 1]

    def test_heavier_wear_moves_the_optimum_down(self):
        gentle = optimal_audit_rate(model(), self.DENSE_RATES, wear_per_audit=0.005)
        harsh = optimal_audit_rate(model(), self.DENSE_RATES, wear_per_audit=0.05)
        assert harsh.audits_per_year < gentle.audits_per_year
