"""Tests for the limit-case approximations (Eqs. 9-11)."""

import pytest

from repro.core.approximations import (
    OperatingRegime,
    best_approximation,
    classify_regime,
    latent_dominated_mttdl,
    long_window_mttdl,
    visible_dominated_mttdl,
)
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestEquation9:
    def test_formula(self):
        m = model()
        assert visible_dominated_mttdl(m) == pytest.approx(
            m.alpha * m.mv ** 2 / m.mrv
        )

    def test_reduces_to_raid_model_when_latent_negligible(self):
        # When latent faults essentially never happen and detection is
        # instant, the full model converges to Eq. 9.
        m = model(mean_time_to_latent=1e12, mean_detect_latent=0.0)
        assert mirrored_mttdl(m) == pytest.approx(
            visible_dominated_mttdl(m), rel=0.01
        )

    def test_infinite_with_zero_repair(self):
        assert visible_dominated_mttdl(model(mean_repair_visible=0.0)) == float("inf")


class TestEquation10:
    def test_formula(self):
        m = model()
        assert latent_dominated_mttdl(m) == pytest.approx(
            m.alpha * m.ml ** 2 / (m.mrl + m.mdl)
        )

    def test_paper_scrubbed_value(self):
        years = latent_dominated_mttdl(model()) / HOURS_PER_YEAR
        assert years == pytest.approx(6128.7, rel=0.001)

    def test_paper_correlated_value(self):
        years = latent_dominated_mttdl(model(correlation_factor=0.1)) / HOURS_PER_YEAR
        assert years == pytest.approx(612.9, rel=0.001)

    def test_halving_detection_time_doubles_mttdl(self):
        # The paper's key scrubbing implication, exact in Eq. 10 when
        # repair time is negligible compared to detection time.
        m_slow = model(mean_detect_latent=2000.0, mean_repair_latent=0.0)
        m_fast = model(mean_detect_latent=1000.0, mean_repair_latent=0.0)
        assert latent_dominated_mttdl(m_fast) == pytest.approx(
            2.0 * latent_dominated_mttdl(m_slow)
        )


class TestEquation11:
    def test_formula(self):
        m = model()
        expected = m.alpha * m.mv ** 2 / (m.mrv + m.mv ** 2 / m.ml)
        assert long_window_mttdl(m) == pytest.approx(expected)

    def test_paper_negligent_value(self):
        m = model(
            mean_time_to_latent=1.4e7,
            mean_detect_latent=1.4e7,
            correlation_factor=0.1,
        )
        assert long_window_mttdl(m) / HOURS_PER_YEAR == pytest.approx(159.8, rel=0.001)

    def test_approaches_alpha_ml_when_latent_term_dominates(self):
        m = model(mean_time_to_latent=1.4e7, correlation_factor=0.1)
        assert long_window_mttdl(m) == pytest.approx(0.1 * 1.4e7, rel=0.01)


class TestRegimeClassification:
    def test_latent_dominated(self):
        regime = classify_regime(model()).regime
        assert regime is OperatingRegime.LATENT_DOMINATED

    def test_visible_dominated(self):
        m = model(mean_time_to_latent=1e9, mean_detect_latent=100.0)
        assert classify_regime(m).regime is OperatingRegime.VISIBLE_DOMINATED

    def test_long_window(self):
        m = model(mean_time_to_latent=1.4e7, mean_detect_latent=1.4e7)
        assert classify_regime(m).regime is OperatingRegime.LONG_LATENT_WINDOW

    def test_general(self):
        m = model(mean_time_to_latent=1.0e6, mean_detect_latent=100.0)
        assert classify_regime(m).regime is OperatingRegime.GENERAL

    def test_reason_is_populated(self):
        assert classify_regime(model()).reason

    def test_rejects_bad_dominance_ratio(self):
        with pytest.raises(ValueError):
            classify_regime(model(), dominance_ratio=1.0)

    def test_rejects_bad_window_fraction(self):
        with pytest.raises(ValueError):
            classify_regime(model(), long_window_fraction=0.0)


class TestBestApproximation:
    def test_scrubbed_model_uses_latent_dominated_form(self):
        assert best_approximation(model()) == pytest.approx(
            latent_dominated_mttdl(model())
        )

    def test_visible_dominated_model_uses_raid_form(self):
        m = model(mean_time_to_latent=1e9, mean_detect_latent=100.0)
        assert best_approximation(m) == pytest.approx(visible_dominated_mttdl(m))

    def test_long_window_model_uses_eq11(self):
        m = model(mean_time_to_latent=1.4e7, mean_detect_latent=1.4e7)
        assert best_approximation(m) == pytest.approx(long_window_mttdl(m))

    def test_approximation_within_factor_two_of_full_model(self):
        # For the paper's scrubbed operating point the approximation and
        # the full evaluation agree to within a factor of two (documented
        # optimism of Eq. 10).
        m = model()
        ratio = best_approximation(m) / mirrored_mttdl(m)
        assert 0.5 <= ratio <= 2.0
