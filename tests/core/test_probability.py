"""Tests for the exponential loss-probability helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import probability
from repro.core.units import HOURS_PER_YEAR


class TestExponentialCdf:
    def test_zero_time_gives_zero_probability(self):
        assert probability.exponential_cdf(0.0, 100.0) == 0.0

    def test_one_mean_time_gives_familiar_value(self):
        assert probability.exponential_cdf(100.0, 100.0) == pytest.approx(
            1.0 - math.exp(-1.0)
        )

    def test_cdf_plus_survival_is_one(self):
        cdf = probability.exponential_cdf(37.0, 200.0)
        survival = probability.exponential_survival(37.0, 200.0)
        assert cdf + survival == pytest.approx(1.0)

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            probability.exponential_cdf(1.0, 0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            probability.exponential_cdf(-1.0, 10.0)

    @given(
        t=st.floats(min_value=0, max_value=1e9),
        mean=st.floats(min_value=1e-3, max_value=1e9),
    )
    def test_cdf_in_unit_interval_property(self, t, mean):
        value = probability.exponential_cdf(t, mean)
        assert 0.0 <= value <= 1.0

    @given(
        mean=st.floats(min_value=1.0, max_value=1e6),
        t1=st.floats(min_value=0.0, max_value=1e6),
        t2=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_cdf_monotone_in_time_property(self, mean, t1, t2):
        low, high = sorted((t1, t2))
        assert probability.exponential_cdf(low, mean) <= probability.exponential_cdf(
            high, mean
        )


class TestPaperLossProbabilities:
    """The paper's Section 5.4 MTTDL-to-probability conversions."""

    def test_unscrubbed_pair_79_percent(self):
        mttdl = 32.0 * HOURS_PER_YEAR
        p = probability.probability_of_loss(mttdl, 50.0 * HOURS_PER_YEAR)
        assert p == pytest.approx(0.79, abs=0.005)

    def test_scrubbed_pair_under_one_percent(self):
        mttdl = 6128.7 * HOURS_PER_YEAR
        p = probability.probability_of_loss(mttdl, 50.0 * HOURS_PER_YEAR)
        assert p == pytest.approx(0.008, abs=0.001)

    def test_correlated_pair_7_8_percent(self):
        mttdl = 612.9 * HOURS_PER_YEAR
        p = probability.probability_of_loss(mttdl, 50.0 * HOURS_PER_YEAR)
        assert p == pytest.approx(0.078, abs=0.002)

    def test_negligent_pair_26_8_percent(self):
        mttdl = 159.8 * HOURS_PER_YEAR
        p = probability.probability_of_loss(mttdl, 50.0 * HOURS_PER_YEAR)
        assert p == pytest.approx(0.268, abs=0.003)


class TestInversions:
    def test_mttdl_for_loss_probability_round_trip(self):
        mission = 50.0 * HOURS_PER_YEAR
        mttdl = probability.mttdl_for_loss_probability(0.05, mission)
        assert probability.probability_of_loss(mttdl, mission) == pytest.approx(0.05)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_mttdl_for_loss_probability_rejects_bad_probability(self, bad):
        with pytest.raises(ValueError):
            probability.mttdl_for_loss_probability(bad, 100.0)

    def test_mttdl_for_loss_probability_rejects_bad_mission(self):
        with pytest.raises(ValueError):
            probability.mttdl_for_loss_probability(0.5, 0.0)

    @given(
        p=st.floats(min_value=0.001, max_value=0.999),
        mission=st.floats(min_value=1.0, max_value=1e7),
    )
    def test_inversion_property(self, p, mission):
        mttdl = probability.mttdl_for_loss_probability(p, mission)
        assert probability.probability_of_loss(mttdl, mission) == pytest.approx(
            p, rel=1e-9
        )


class TestDerivedMetrics:
    def test_annualised_loss_rate(self):
        assert probability.annualised_loss_rate(HOURS_PER_YEAR) == pytest.approx(1.0)

    def test_annualised_loss_rate_rejects_zero(self):
        with pytest.raises(ValueError):
            probability.annualised_loss_rate(0.0)

    def test_halflife(self):
        assert probability.halflife_from_mttdl(100.0) == pytest.approx(
            100.0 * math.log(2.0)
        )

    def test_halflife_rejects_zero(self):
        with pytest.raises(ValueError):
            probability.halflife_from_mttdl(0.0)

    def test_expected_losses(self):
        assert probability.expected_losses(100.0, 250.0) == pytest.approx(2.5)

    def test_expected_losses_rejects_negative_mission(self):
        with pytest.raises(ValueError):
            probability.expected_losses(100.0, -1.0)

    def test_loss_probability_years_matches_hours(self):
        years = probability.probability_of_loss_years(32.0, 50.0)
        hours = probability.probability_of_loss(
            32.0 * HOURS_PER_YEAR, 50.0 * HOURS_PER_YEAR
        )
        assert years == pytest.approx(hours)
