"""Tests for the FaultModel parameter set."""

import pytest
from hypothesis import given, strategies as st

from repro.core.faults import FaultType, latent_fault, visible_fault
from repro.core.parameters import FaultModel, model_from_specs


def make_model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestConstruction:
    def test_paper_aliases_match_fields(self):
        model = make_model()
        assert model.mv == model.mean_time_to_visible
        assert model.ml == model.mean_time_to_latent
        assert model.mrv == model.mean_repair_visible
        assert model.mrl == model.mean_repair_latent
        assert model.mdl == model.mean_detect_latent
        assert model.alpha == model.correlation_factor

    @pytest.mark.parametrize(
        "field",
        ["mean_time_to_visible", "mean_time_to_latent"],
    )
    def test_rejects_non_positive_mean_times(self, field):
        with pytest.raises(ValueError):
            make_model(**{field: 0.0})

    @pytest.mark.parametrize(
        "field",
        ["mean_repair_visible", "mean_repair_latent", "mean_detect_latent"],
    )
    def test_rejects_negative_repair_and_detection(self, field):
        with pytest.raises(ValueError):
            make_model(**{field: -1.0})

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_rejects_alpha_outside_unit_interval(self, alpha):
        with pytest.raises(ValueError):
            make_model(correlation_factor=alpha)

    def test_alpha_of_exactly_one_allowed(self):
        assert make_model(correlation_factor=1.0).alpha == 1.0


class TestDerivedQuantities:
    def test_rates_are_inverse_mean_times(self):
        model = make_model()
        assert model.visible_rate == pytest.approx(1.0 / 1.4e6)
        assert model.latent_rate == pytest.approx(1.0 / 2.8e5)

    def test_total_fault_rate_is_sum(self):
        model = make_model()
        assert model.total_fault_rate == pytest.approx(
            model.visible_rate + model.latent_rate
        )

    def test_visible_window_equals_repair_time(self):
        assert make_model().visible_window == pytest.approx(1.0 / 3.0)

    def test_latent_window_includes_detection(self):
        model = make_model()
        assert model.latent_window == pytest.approx(1460.0 + 1.0 / 3.0)

    def test_latent_to_visible_ratio_matches_schwarz(self):
        assert make_model().latent_to_visible_ratio == pytest.approx(5.0)


class TestSpecs:
    def test_visible_spec(self):
        spec = make_model().visible_spec()
        assert spec.fault_type is FaultType.VISIBLE
        assert spec.mean_time_to_fault == 1.4e6

    def test_latent_spec(self):
        spec = make_model().latent_spec()
        assert spec.fault_type is FaultType.LATENT
        assert spec.mean_detection_time == 1460.0

    def test_spec_dispatch(self):
        model = make_model()
        assert model.spec(FaultType.VISIBLE) == model.visible_spec()
        assert model.spec(FaultType.LATENT) == model.latent_spec()


class TestEvolutionHelpers:
    def test_with_correlation(self):
        updated = make_model().with_correlation(0.1)
        assert updated.correlation_factor == 0.1

    def test_with_detection_time(self):
        updated = make_model().with_detection_time(10.0)
        assert updated.mean_detect_latent == 10.0

    def test_with_latent_mean_time(self):
        updated = make_model().with_latent_mean_time(1e6)
        assert updated.mean_time_to_latent == 1e6

    def test_with_visible_mean_time(self):
        updated = make_model().with_visible_mean_time(2e6)
        assert updated.mean_time_to_visible == 2e6

    def test_with_repair_times(self):
        updated = make_model().with_repair_times(0.5, 0.25)
        assert updated.mean_repair_visible == 0.5
        assert updated.mean_repair_latent == 0.25

    def test_scaled_scales_both_fault_mean_times(self):
        model = make_model()
        scaled = model.scaled(2.0)
        assert scaled.mean_time_to_visible == pytest.approx(2 * model.mv)
        assert scaled.mean_time_to_latent == pytest.approx(2 * model.ml)
        assert scaled.mean_repair_visible == model.mrv

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            make_model().scaled(0.0)

    def test_original_unchanged_by_helpers(self):
        model = make_model()
        model.with_correlation(0.5)
        model.with_detection_time(1.0)
        assert model.correlation_factor == 1.0
        assert model.mean_detect_latent == 1460.0


class TestSerialisation:
    def test_as_dict_uses_paper_notation(self):
        d = make_model().as_dict()
        assert set(d) == {"MV", "ML", "MRV", "MRL", "MDL", "alpha"}
        assert d["MV"] == 1.4e6

    def test_describe_mentions_all_parameters(self):
        text = make_model().describe()
        for token in ("MV", "ML", "MRV", "MRL", "MDL", "alpha"):
            assert token in text


class TestModelFromSpecs:
    def test_round_trip(self):
        model = make_model(correlation_factor=0.3)
        rebuilt = model_from_specs(
            model.visible_spec(), model.latent_spec(), correlation_factor=0.3
        )
        assert rebuilt == model

    def test_rejects_swapped_specs(self):
        model = make_model()
        with pytest.raises(ValueError):
            model_from_specs(model.latent_spec(), model.latent_spec())
        with pytest.raises(ValueError):
            model_from_specs(model.visible_spec(), model.visible_spec())


@given(
    mv=st.floats(min_value=1e2, max_value=1e8),
    ml=st.floats(min_value=1e2, max_value=1e8),
    alpha=st.floats(min_value=0.001, max_value=1.0),
)
def test_rates_positive_property(mv, ml, alpha):
    model = FaultModel(
        mean_time_to_visible=mv,
        mean_time_to_latent=ml,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=10.0,
        correlation_factor=alpha,
    )
    assert model.visible_rate > 0
    assert model.latent_rate > 0
    assert model.total_fault_rate == pytest.approx(
        model.visible_rate + model.latent_rate
    )
