"""Tests for the Section 5.4 worked-example scenarios.

These are the headline reproduction tests: each scenario must reproduce
the MTTDL and 50-year loss probability the paper quotes when evaluated
with the paper's own method.
"""

import pytest

from repro.core.scenarios import (
    CHEETAH_LATENT_MTTF_HOURS,
    CHEETAH_MTTF_HOURS,
    CHEETAH_REPAIR_HOURS,
    SCRUB_THREE_PER_YEAR_MDL_HOURS,
    cheetah_correlated_scenario,
    cheetah_negligent_scenario,
    cheetah_no_scrub_scenario,
    cheetah_scrubbed_scenario,
    paper_scenarios,
)


class TestScenarioParameters:
    def test_cheetah_mttf_matches_datasheet(self):
        assert CHEETAH_MTTF_HOURS == 1.4e6

    def test_latent_faults_five_times_as_frequent(self):
        assert CHEETAH_MTTF_HOURS / CHEETAH_LATENT_MTTF_HOURS == pytest.approx(5.0)

    def test_repair_time_is_twenty_minutes(self):
        assert CHEETAH_REPAIR_HOURS == pytest.approx(20.0 / 60.0)

    def test_scrub_three_times_a_year_gives_1460_hours(self):
        assert SCRUB_THREE_PER_YEAR_MDL_HOURS == pytest.approx(1460.0)

    def test_correlated_scenario_uses_alpha_point_one(self):
        assert cheetah_correlated_scenario().model.correlation_factor == 0.1

    def test_negligent_scenario_uses_rare_latent_faults(self):
        assert cheetah_negligent_scenario().model.mean_time_to_latent == 1.4e7


class TestPaperMttdlReproduction:
    """The four headline numbers of Section 5.4."""

    def test_no_scrub_32_years(self):
        scenario = cheetah_no_scrub_scenario()
        assert scenario.paper_method_mttdl_years() == pytest.approx(32.0, rel=0.005)

    def test_scrubbed_6128_years(self):
        scenario = cheetah_scrubbed_scenario()
        assert scenario.paper_method_mttdl_years() == pytest.approx(6128.7, rel=0.001)

    def test_correlated_612_years(self):
        scenario = cheetah_correlated_scenario()
        assert scenario.paper_method_mttdl_years() == pytest.approx(612.9, rel=0.001)

    def test_negligent_159_years(self):
        scenario = cheetah_negligent_scenario()
        assert scenario.paper_method_mttdl_years() == pytest.approx(159.8, rel=0.001)


class TestPaperLossProbabilityReproduction:
    def test_no_scrub_79_percent(self):
        scenario = cheetah_no_scrub_scenario()
        assert scenario.paper_method_loss_probability() == pytest.approx(
            0.79, abs=0.005
        )

    def test_scrubbed_under_one_percent(self):
        scenario = cheetah_scrubbed_scenario()
        assert scenario.paper_method_loss_probability() == pytest.approx(
            0.008, abs=0.001
        )

    def test_correlated_7_8_percent(self):
        scenario = cheetah_correlated_scenario()
        assert scenario.paper_method_loss_probability() == pytest.approx(
            0.078, abs=0.002
        )

    def test_negligent_26_8_percent(self):
        scenario = cheetah_negligent_scenario()
        assert scenario.paper_method_loss_probability() == pytest.approx(
            0.268, abs=0.003
        )


class TestFullModelAgreement:
    """The library's default (full Eq. 7) evaluation should stay within a
    small factor of the paper's approximation-based numbers."""

    @pytest.mark.parametrize(
        "scenario_factory, max_ratio",
        [
            (cheetah_no_scrub_scenario, 1.05),
            (cheetah_scrubbed_scenario, 1.3),
            (cheetah_correlated_scenario, 1.3),
            (cheetah_negligent_scenario, 11.0),
        ],
    )
    def test_full_vs_paper_method(self, scenario_factory, max_ratio):
        scenario = scenario_factory()
        full = scenario.mttdl_years()
        paper_method = scenario.paper_method_mttdl_years()
        ratio = max(full, paper_method) / min(full, paper_method)
        assert ratio <= max_ratio

    def test_ordering_of_scenarios_preserved(self):
        # The paper's qualitative ranking: scrubbed > correlated >
        # negligent > unscrubbed ... except the negligent case swaps with
        # no-scrub depending on evaluation; the key orderings are that
        # the scrubbed system is best and the unscrubbed system is worst
        # among the alpha=1 variants.
        scrubbed = cheetah_scrubbed_scenario().mttdl_years()
        correlated = cheetah_correlated_scenario().mttdl_years()
        unscrubbed = cheetah_no_scrub_scenario().mttdl_years()
        assert scrubbed > correlated > unscrubbed


class TestScenarioRegistry:
    def test_registry_contains_all_four(self):
        scenarios = paper_scenarios()
        assert set(scenarios) == {
            "cheetah_no_scrub",
            "cheetah_scrubbed",
            "cheetah_correlated",
            "cheetah_negligent",
        }

    def test_registry_values_are_self_consistent(self):
        for name, scenario in paper_scenarios().items():
            assert scenario.name == name
            assert scenario.paper_mttdl_years is not None
            assert scenario.paper_loss_probability_50yr is not None

    def test_loss_probability_uses_50_year_default(self):
        scenario = cheetah_scrubbed_scenario()
        assert scenario.loss_probability() == scenario.loss_probability(50.0)

    def test_longer_missions_are_riskier(self):
        scenario = cheetah_scrubbed_scenario()
        assert scenario.loss_probability(100.0) > scenario.loss_probability(10.0)
