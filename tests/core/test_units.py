"""Tests for time-unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import units


class TestConversions:
    def test_hours_per_year_constant(self):
        assert units.HOURS_PER_YEAR == 8760.0

    def test_hours_to_years_round_trip(self):
        assert units.hours_to_years(units.years_to_hours(3.5)) == pytest.approx(3.5)

    def test_years_to_hours(self):
        assert units.years_to_hours(1.0) == 8760.0

    def test_minutes_to_hours(self):
        assert units.minutes_to_hours(20.0) == pytest.approx(1.0 / 3.0)

    def test_hours_to_minutes(self):
        assert units.hours_to_minutes(2.0) == 120.0

    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(7200.0) == 2.0

    def test_hours_to_seconds(self):
        assert units.hours_to_seconds(0.5) == 1800.0

    def test_days_to_hours(self):
        assert units.days_to_hours(2.0) == 48.0

    def test_hours_to_days(self):
        assert units.hours_to_days(36.0) == 1.5

    def test_rate_per_hour_to_per_year(self):
        assert units.per_hour_to_per_year(1.0) == 8760.0

    def test_rate_per_year_to_per_hour(self):
        assert units.per_year_to_per_hour(8760.0) == pytest.approx(1.0)

    @given(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
    def test_year_hour_round_trip_property(self, hours):
        assert units.hours_to_years(units.years_to_hours(hours)) == pytest.approx(
            hours, rel=1e-12
        )

    @given(st.floats(min_value=1e-9, max_value=1e9))
    def test_rate_mean_time_inverse_property(self, mean_time):
        rate = units.rate_from_mean_time(mean_time)
        assert units.mean_time_from_rate(rate) == pytest.approx(mean_time, rel=1e-12)


class TestValidation:
    def test_rate_from_mean_time_rejects_zero(self):
        with pytest.raises(ValueError):
            units.rate_from_mean_time(0.0)

    def test_rate_from_mean_time_rejects_negative(self):
        with pytest.raises(ValueError):
            units.rate_from_mean_time(-1.0)

    def test_mean_time_from_rate_rejects_zero(self):
        with pytest.raises(ValueError):
            units.mean_time_from_rate(0.0)

    def test_mean_time_from_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            units.mean_time_from_rate(-2.0)
