"""Tests for parameter sensitivity / elasticity analysis."""

import pytest

from repro.core.parameters import FaultModel
from repro.core.sensitivity import (
    elasticity,
    most_sensitive_parameter,
    parameter_sensitivities,
)


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=0.5,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestElasticity:
    def test_alpha_elasticity_is_one(self):
        # MTTDL is exactly linear in alpha in the scrubbed regime.
        assert elasticity(model(), "alpha") == pytest.approx(1.0, abs=0.02)

    def test_ml_elasticity_near_two_in_latent_dominated_regime(self):
        # Eq. 10: MTTDL ~ ML^2.  The full Eq. 7 evaluation keeps the MV
        # cross-terms, so the elasticity sits a little below 2.
        assert 1.6 <= elasticity(model(), "ML") <= 2.05

    def test_mdl_elasticity_near_minus_one(self):
        # Eq. 10: MTTDL ~ 1 / (MRL + MDL), with MDL >> MRL.
        assert elasticity(model(), "MDL") == pytest.approx(-1.0, abs=0.05)

    def test_mv_elasticity_small_in_latent_dominated_regime(self):
        assert abs(elasticity(model(), "MV")) < 0.2

    def test_mrv_elasticity_near_minus_one_when_visible_dominates(self):
        visible_dominated = model(
            mean_time_to_latent=1e12, mean_detect_latent=0.0, correlation_factor=1.0
        )
        assert elasticity(visible_dominated, "MRV") == pytest.approx(-1.0, abs=0.05)

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError):
            elasticity(model(), "XYZ")

    def test_zero_valued_parameter_returns_zero(self):
        no_detection_delay = model(mean_detect_latent=0.0)
        assert elasticity(no_detection_delay, "MDL") == 0.0

    def test_custom_metric(self):
        # Elasticity of a constant metric is zero.
        assert elasticity(model(), "ML", metric=lambda m: 42.0) == 0.0


class TestSensitivityTable:
    def test_contains_every_parameter(self):
        table = parameter_sensitivities(model())
        assert set(table) == {"MV", "ML", "MRV", "MRL", "MDL", "alpha"}

    def test_most_sensitive_is_ml_in_latent_dominated_regime(self):
        assert most_sensitive_parameter(model()) == "ML"

    def test_most_sensitive_is_mv_in_visible_dominated_regime(self):
        visible_dominated = model(
            mean_time_to_latent=1e12, mean_detect_latent=0.0, correlation_factor=1.0
        )
        assert most_sensitive_parameter(visible_dominated) == "MV"

    def test_sensitivities_are_finite(self):
        table = parameter_sensitivities(model())
        assert all(abs(value) < 10 for value in table.values())
