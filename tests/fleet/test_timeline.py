"""Tests for fleet timeline declarations, builders, and serialisation."""

import math

import pytest

from repro.core.migration import CAMERA_RAW, FormatRisk
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.fleet.timeline import (
    FleetEpoch,
    FleetTimeline,
    MigrationEvent,
    RegionalShockModel,
    generation_refresh_timeline,
    shock_model_from_threats,
    stationary_timeline,
    timeline_from_recommendation,
)
from repro.storage.site import diversified_placement, single_site_placement
from repro.threats.taxonomy import THREAT_REGISTRY


def fast_model(**overrides):
    base = dict(
        mean_time_to_visible=500.0,
        mean_time_to_latent=100.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=5.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestValidation:
    def test_first_epoch_must_start_at_zero(self):
        with pytest.raises(ValueError):
            FleetTimeline(
                years=10.0, epochs=(FleetEpoch(1.0, fast_model()),)
            )

    def test_epoch_starts_must_increase(self):
        with pytest.raises(ValueError):
            FleetTimeline(
                years=10.0,
                epochs=(
                    FleetEpoch(0.0, fast_model()),
                    FleetEpoch(5.0, fast_model()),
                    FleetEpoch(5.0, fast_model()),
                ),
            )

    def test_epoch_past_horizon_rejected(self):
        with pytest.raises(ValueError):
            FleetTimeline(
                years=10.0,
                epochs=(
                    FleetEpoch(0.0, fast_model()),
                    FleetEpoch(10.0, fast_model()),
                ),
            )

    def test_migration_past_horizon_rejected(self):
        with pytest.raises(ValueError):
            FleetTimeline(
                years=10.0,
                epochs=(FleetEpoch(0.0, fast_model()),),
                migrations=(MigrationEvent(10.0, CAMERA_RAW),),
            )

    def test_needs_at_least_one_epoch(self):
        with pytest.raises(ValueError):
            FleetTimeline(years=10.0, epochs=())

    def test_epoch_rejects_bad_hazard(self):
        with pytest.raises(ValueError):
            FleetEpoch(0.0, fast_model(), hazard_multiplier=0.0)

    def test_shock_model_bounds(self):
        with pytest.raises(ValueError):
            RegionalShockModel(rate_per_year=-1.0)
        with pytest.raises(ValueError):
            RegionalShockModel(rate_per_year=1.0, replica_penetration=1.5)
        with pytest.raises(ValueError):
            RegionalShockModel(rate_per_year=1.0, regions=0)


class TestStructure:
    def timeline(self):
        return FleetTimeline(
            years=30.0,
            epochs=(
                FleetEpoch(0.0, fast_model(), label="a"),
                FleetEpoch(10.0, fast_model(), label="b"),
                FleetEpoch(20.0, fast_model(), label="c"),
            ),
        )

    def test_epoch_at_picks_the_epoch_in_force(self):
        timeline = self.timeline()
        assert timeline.epoch_at(0.0).label == "a"
        assert timeline.epoch_at(9.99).label == "a"
        assert timeline.epoch_at(10.0).label == "b"
        assert timeline.epoch_at(29.0).label == "c"
        with pytest.raises(ValueError):
            timeline.epoch_at(31.0)

    def test_spans_partition_the_horizon(self):
        spans = self.timeline().spans_hours()
        assert spans[0][1] == 0.0
        assert spans[-1][2] == 30.0 * HOURS_PER_YEAR
        for (_, _, end), (_, start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_effective_model_folds_the_hazard_multiplier(self):
        epoch = FleetEpoch(0.0, fast_model(), hazard_multiplier=4.0)
        effective = epoch.effective_model()
        assert effective.mean_time_to_visible == pytest.approx(125.0)
        assert effective.mean_time_to_latent == pytest.approx(25.0)
        # Repairs and detection are machinery, not hazard.
        assert effective.mean_repair_visible == 1.0
        assert effective.mean_detect_latent == 5.0

    def test_migration_window_loss_probability(self):
        risk = FormatRisk("x", 8.0, 5.0, 1.0)
        event = MigrationEvent(5.0, risk)
        assert event.loss_probability == pytest.approx(1.0 / 6.0)


class TestCostSchedule:
    def test_stationary_cost_is_flat(self):
        timeline = stationary_timeline(
            fast_model(), 10.0, annual_cost_per_member=100.0
        )
        costs = timeline.base_cost_by_year()
        assert costs[:10] == pytest.approx([100.0] * 10)
        assert costs.sum() == pytest.approx(1000.0)

    def test_migration_cost_lands_in_its_year(self):
        timeline = FleetTimeline(
            years=10.0,
            epochs=(
                FleetEpoch(0.0, fast_model(), annual_cost_per_member=10.0),
            ),
            migrations=(
                MigrationEvent(5.5, CAMERA_RAW, cost_per_member=77.0),
            ),
        )
        costs = timeline.base_cost_by_year()
        assert costs[5] == pytest.approx(87.0)
        assert costs[4] == pytest.approx(10.0)

    def test_epoch_change_prorates_partial_years(self):
        timeline = FleetTimeline(
            years=2.0,
            epochs=(
                FleetEpoch(0.0, fast_model(), annual_cost_per_member=100.0),
                FleetEpoch(0.5, fast_model(), annual_cost_per_member=200.0),
            ),
        )
        costs = timeline.base_cost_by_year()
        assert costs[0] == pytest.approx(0.5 * 100.0 + 0.5 * 200.0)
        assert costs[1] == pytest.approx(200.0)


class TestSerialisation:
    def rich_timeline(self):
        shocks = RegionalShockModel(
            rate_per_year=0.1, regions=3, replica_penetration=0.4, latent=True
        )
        return FleetTimeline(
            years=20.0,
            replicas=3,
            label="rich",
            epochs=(
                FleetEpoch(
                    0.0,
                    fast_model(),
                    audits_per_year=12.0,
                    annual_cost_per_member=42.0,
                    shocks=shocks,
                    label="fresh",
                ),
                FleetEpoch(
                    12.0,
                    fast_model(correlation_factor=0.5),
                    hazard_multiplier=2.5,
                    label="aged",
                ),
            ),
            migrations=(
                MigrationEvent(8.0, CAMERA_RAW, cost_per_member=5.0),
            ),
        )

    def test_roundtrip_preserves_everything(self):
        timeline = self.rich_timeline()
        clone = FleetTimeline.from_dict(timeline.as_dict())
        assert clone == timeline
        assert clone.content_hash() == timeline.content_hash()

    def test_json_roundtrip_via_file(self, tmp_path):
        timeline = self.rich_timeline()
        path = tmp_path / "timeline.json"
        timeline.to_json(path)
        assert FleetTimeline.from_json(path) == timeline
        # And straight from the JSON text.
        assert FleetTimeline.from_json(timeline.to_json()) == timeline

    def test_content_hash_tracks_changes(self):
        timeline = self.rich_timeline()
        other = FleetTimeline.from_dict(
            {**timeline.as_dict(), "years": 21.0}
        )
        assert other.content_hash() != timeline.content_hash()


class TestBuilders:
    def test_stationary_timeline_is_one_epoch(self):
        timeline = stationary_timeline(fast_model(), 50.0, replicas=3)
        assert len(timeline.epochs) == 1
        assert timeline.replicas == 3
        assert timeline.epochs[0].hazard_multiplier == 1.0

    def test_generation_refresh_epoch_structure(self):
        timeline = generation_refresh_timeline(
            years=50.0,
            refresh_every_years=15.0,
            aging_onset_fraction=0.6,
            aging_hazard_multiplier=3.0,
        )
        labels = [epoch.label for epoch in timeline.epochs]
        # Four generations (ceil(50/15)); the last aged epoch (onset at
        # year 54) falls past the horizon and is dropped.
        assert labels == [
            "gen-0 fresh", "gen-0 aged",
            "gen-1 fresh", "gen-1 aged",
            "gen-2 fresh", "gen-2 aged",
            "gen-3 fresh",
        ]
        for epoch in timeline.epochs:
            expected = 3.0 if epoch.label.endswith("aged") else 1.0
            assert epoch.hazard_multiplier == expected

    def test_generation_refresh_costs_decline_kryder_style(self):
        timeline = generation_refresh_timeline(
            years=45.0, refresh_every_years=15.0, kryder_decline=0.15
        )
        fresh = [
            epoch for epoch in timeline.epochs
            if epoch.label.endswith("fresh")
        ]
        assert len(fresh) == 3
        costs = [epoch.annual_cost_per_member for epoch in fresh]
        assert costs[0] > costs[1] > costs[2]
        # Aged epochs keep their generation's cost.
        aged = [
            epoch for epoch in timeline.epochs
            if epoch.label.endswith("aged")
        ]
        assert aged[0].annual_cost_per_member == pytest.approx(costs[0])

    def test_generation_refresh_rejects_unknown_medium(self):
        with pytest.raises(KeyError):
            generation_refresh_timeline(medium="drive:floppy")

    def test_planner_handoff_builds_epoch_zero(self):
        from repro.optimize.evaluate import EvaluationSettings, screen
        from repro.optimize.space import CandidateDesign

        candidate = CandidateDesign(
            medium="drive:cheetah",
            replicas=3,
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=5.0,
        )
        evaluation = screen(candidate, EvaluationSettings(mission_years=50.0))
        timeline = timeline_from_recommendation(evaluation, years=50.0)
        assert len(timeline.epochs) == 1
        assert timeline.replicas == 3
        epoch = timeline.epochs[0]
        assert epoch.model == candidate.fault_model()
        assert epoch.audits_per_year == 12.0
        assert epoch.annual_cost_per_member == pytest.approx(
            evaluation.annual_cost
        )


class TestShockFromThreats:
    def test_rate_and_penetration_derived(self):
        profiles = list(THREAT_REGISTRY.values())[:3]
        shock = shock_model_from_threats(profiles)
        expected_rate = sum(
            HOURS_PER_YEAR / p.mean_time_to_occurrence for p in profiles
        )
        assert shock.rate_per_year == pytest.approx(expected_rate)
        assert 0.0 <= shock.replica_penetration <= 1.0

    def test_diversified_placement_attenuates_penetration(self):
        profiles = list(THREAT_REGISTRY.values())[:3]
        shared = shock_model_from_threats(
            profiles, placement=single_site_placement(3)
        )
        diverse = shock_model_from_threats(
            profiles, placement=diversified_placement(3)
        )
        assert diverse.replica_penetration < shared.replica_penetration
