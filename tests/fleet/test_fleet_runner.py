"""Tests for chunked, parallel, cached fleet execution."""

import json

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.fleet.runner import (
    FleetChunkCache,
    _chunk_sizes,
    chunk_cache_key,
    simulate_fleet,
)
from repro.fleet.timeline import FleetEpoch, FleetTimeline, stationary_timeline


def fast_model():
    return FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)


def timeline():
    return stationary_timeline(fast_model(), 2.0, annual_cost_per_member=50.0)


class TestChunking:
    def test_chunk_sizes_cover_the_fleet(self):
        assert _chunk_sizes(2500, 1000) == [1000, 1000, 500]
        assert _chunk_sizes(1000, 1000) == [1000]
        assert _chunk_sizes(3, 10) == [3]

    def test_parallel_equals_serial(self):
        serial = simulate_fleet(
            timeline(), members=800, seed=5, jobs=1, chunk_size=200
        )
        parallel = simulate_fleet(
            timeline(), members=800, seed=5, jobs=4, chunk_size=200
        )
        assert serial.tally.as_dict() == parallel.tally.as_dict()

    def test_chunk_seeds_are_order_independent(self):
        # The same fleet in one chunk vs several: different layouts are
        # different (equally valid) populations, but each layout is
        # fully deterministic.
        once = simulate_fleet(timeline(), members=600, seed=5, chunk_size=200)
        again = simulate_fleet(timeline(), members=600, seed=5, chunk_size=200)
        assert once.tally.as_dict() == again.tally.as_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fleet(timeline(), members=0)
        with pytest.raises(ValueError):
            simulate_fleet(timeline(), members=10, chunk_size=0)
        with pytest.raises(ValueError):
            simulate_fleet(timeline(), members=10, jobs=0)


class TestCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        first = simulate_fleet(
            timeline(), members=600, seed=5, chunk_size=200,
            cache_dir=tmp_path,
        )
        second = simulate_fleet(
            timeline(), members=600, seed=5, chunk_size=200,
            cache_dir=tmp_path,
        )
        assert first.new_chunks == 3
        assert first.cache_hits == 0
        assert second.new_chunks == 0
        assert second.cache_hits == 3
        assert second.tally.as_dict() == first.tally.as_dict()

    def test_different_seed_misses(self, tmp_path):
        simulate_fleet(
            timeline(), members=200, seed=5, chunk_size=200,
            cache_dir=tmp_path,
        )
        other = simulate_fleet(
            timeline(), members=200, seed=6, chunk_size=200,
            cache_dir=tmp_path,
        )
        assert other.new_chunks == 1

    def test_corrupted_entry_degrades_to_resimulation(self, tmp_path):
        run = simulate_fleet(
            timeline(), members=200, seed=5, chunk_size=200,
            cache_dir=tmp_path,
        )
        key = chunk_cache_key(timeline(), 200, 5, 0)
        cache = FleetChunkCache(tmp_path)
        cache._path(key).write_text("not json", encoding="utf-8")
        redo = simulate_fleet(
            timeline(), members=200, seed=5, chunk_size=200,
            cache_dir=tmp_path,
        )
        assert redo.new_chunks == 1
        assert redo.tally.as_dict() == run.tally.as_dict()

    def test_key_depends_on_timeline_content(self):
        base = timeline()
        changed = FleetTimeline(
            years=2.0,
            epochs=(
                FleetEpoch(
                    0.0, fast_model(), annual_cost_per_member=51.0
                ),
            ),
        )
        assert chunk_cache_key(base, 200, 5, 0) != chunk_cache_key(
            changed, 200, 5, 0
        )


class TestFleetResult:
    def test_summary_and_curves(self):
        result = simulate_fleet(timeline(), members=600, seed=5)
        summary = result.summary()
        assert summary["members"] == 600
        assert summary["losses"] == result.tally.losses
        assert 0 <= summary["loss_fraction"] <= 1
        assert summary["loss_ci_low"] <= summary["loss_fraction"]
        assert summary["loss_fraction"] <= summary["loss_ci_high"]
        curve = result.survival_curve()
        assert curve[0] == 1.0
        assert np.all(np.diff(curve) <= 0)

    def test_cost_trajectory_accumulates_base_and_repairs(self):
        result = simulate_fleet(timeline(), members=600, seed=5)
        per_year = result.cost_per_member_by_year()
        # Base cost is $50/member-year; simulated repairs add on top.
        assert per_year[0] >= 50.0
        cumulative = result.cumulative_cost_per_member()
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(per_year.sum())
        assert result.summary()["total_cost_per_member"] == pytest.approx(
            cumulative[-1]
        )

    def test_as_dict_is_json_serialisable(self):
        result = simulate_fleet(timeline(), members=200, seed=5)
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["summary"]["members"] == 200
        # The curve spans year boundaries 0..ceil(years) only — the
        # histogram overflow bin is not a simulated year.
        assert len(payload["survival_curve"]) == 3
        assert len(payload["cumulative_cost_per_member"]) == 2

    def test_shock_schedule_is_shared_across_chunks(self):
        from repro.fleet.timeline import RegionalShockModel

        shocks = RegionalShockModel(
            rate_per_year=0.5, regions=1, replica_penetration=1.0
        )
        shocked = FleetTimeline(
            years=2.0,
            epochs=(FleetEpoch(0.0, fast_model(), shocks=shocks),),
        )
        coarse = simulate_fleet(
            shocked, members=2000, seed=3, chunk_size=2000
        )
        fine = simulate_fleet(shocked, members=2000, seed=3, chunk_size=100)
        # The schedule is a fleet fact keyed by the root seed: cutting
        # the fleet into more chunks must not multiply the shocks.
        assert (
            coarse.summary()["shock_events"]
            == fine.summary()["shock_events"]
        )


class TestTransport:
    def test_shm_equals_pickle_equals_serial(self):
        serial = simulate_fleet(
            timeline(), members=800, seed=5, jobs=1, chunk_size=200
        )
        pickled = simulate_fleet(
            timeline(),
            members=800,
            seed=5,
            jobs=2,
            chunk_size=200,
            transport="pickle",
        )
        shm = simulate_fleet(
            timeline(),
            members=800,
            seed=5,
            jobs=2,
            chunk_size=200,
            transport="shm",
        )
        # The transport moves bits, it does not touch the physics: all
        # three tallies must be bit-identical.
        assert serial.tally.as_dict() == pickled.tally.as_dict()
        assert serial.tally.as_dict() == shm.tally.as_dict()

    def test_shm_serial_falls_back_cleanly(self):
        # jobs=1 never allocates a shared buffer; the request is still
        # legal and bit-identical.
        serial = simulate_fleet(timeline(), members=400, seed=7, jobs=1)
        shm = simulate_fleet(
            timeline(), members=400, seed=7, jobs=1, transport="shm"
        )
        assert serial.tally.as_dict() == shm.tally.as_dict()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            simulate_fleet(
                timeline(), members=10, seed=0, transport="carrier-pigeon"
            )
