"""Tests for the streaming, mergeable fleet tallies."""

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.fleet.aggregate import FleetTally
from repro.fleet.population import simulate_fleet_chunk
from repro.fleet.timeline import stationary_timeline


def fast_model():
    return FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)


@pytest.fixture
def chunks():
    timeline = stationary_timeline(fast_model(), 2.0)
    return [
        simulate_fleet_chunk(timeline, members=200, seed=1, chunk=index)
        for index in range(3)
    ]


def tally_of(chunk):
    return FleetTally.from_chunk(chunk)


class TestMergeProperties:
    def test_merge_is_commutative(self, chunks):
        a, b = tally_of(chunks[0]), tally_of(chunks[1])
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    def test_merge_is_associative(self, chunks):
        a, b, c = (tally_of(chunk) for chunk in chunks)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.as_dict() == right.as_dict()

    def test_merge_equals_streaming_add(self, chunks):
        streamed = FleetTally(year_bins=chunks[0].repair_year_counts.size)
        for chunk in chunks:
            streamed.add(chunk)
        merged = tally_of(chunks[0]).merge(tally_of(chunks[1])).merge(
            tally_of(chunks[2])
        )
        assert streamed.as_dict() == merged.as_dict()

    def test_merge_rejects_mismatched_bins(self, chunks):
        a = tally_of(chunks[0])
        with pytest.raises(ValueError):
            a.merge(FleetTally(year_bins=a.year_bins + 1))

    def test_add_rejects_mismatched_bins(self, chunks):
        tally = FleetTally(year_bins=2)
        with pytest.raises(ValueError):
            tally.add(chunks[0])


class TestDerivedCurves:
    def test_survival_curve_shape(self, chunks):
        tally = tally_of(chunks[0])
        curve = tally.survival_curve()
        assert curve[0] == 1.0
        assert np.all(np.diff(curve) <= 0)
        assert curve[-1] == pytest.approx(1.0 - tally.loss_fraction)

    def test_loss_fraction_by_year_is_cumulative(self, chunks):
        tally = tally_of(chunks[0])
        series = tally.loss_fraction_by_year()
        assert np.all(np.diff(series) >= 0)
        assert series[-1] == pytest.approx(tally.loss_fraction)
        assert np.allclose(tally.survival_curve()[1:], 1.0 - series)

    def test_loss_estimate_is_binomial(self, chunks):
        tally = tally_of(chunks[0])
        estimate = tally.loss_estimate()
        assert estimate.mean == pytest.approx(tally.loss_fraction)
        assert estimate.trials == tally.members
        low, high = estimate.confidence_interval()
        assert 0.0 <= low <= estimate.mean <= high <= 1.0

    def test_zero_loss_fleet_reports_rule_of_three_bound(self):
        tally = FleetTally(year_bins=5, members=50, losses=0)
        estimate = tally.loss_estimate()
        low, high = estimate.confidence_interval()
        assert low == 0.0
        assert high == pytest.approx(3.0 / 50)

    def test_curves_exclude_the_overflow_bin(self, chunks):
        tally = tally_of(chunks[0])
        # year_bins = ceil(years) + 1 histogram bins; the curves span
        # the simulated years only.
        assert tally.survival_curve().size == tally.year_bins
        assert tally.loss_fraction_by_year().size == tally.year_bins - 1

    def test_empty_tally_refuses_curves(self):
        tally = FleetTally(year_bins=3)
        with pytest.raises(ValueError):
            tally.survival_curve()
        with pytest.raises(ValueError):
            tally.loss_estimate()


class TestSerialisation:
    def test_dict_roundtrip(self, chunks):
        tally = tally_of(chunks[0]).merge(tally_of(chunks[1]))
        clone = FleetTally.from_dict(tally.as_dict())
        assert clone.as_dict() == tally.as_dict()
        assert np.array_equal(clone.loss_year_counts, tally.loss_year_counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetTally(year_bins=0)
        with pytest.raises(ValueError):
            FleetTally(year_bins=3, loss_year_counts=np.zeros(2))


class TestRowCodec:
    def test_round_trips_through_fixed_width_row(self, chunks):
        for chunk in chunks:
            tally = tally_of(chunk)
            width = FleetTally.row_width(tally.year_bins)
            row = tally.as_row()
            assert row.dtype == np.int64
            assert row.size == width
            back = FleetTally.from_row(row)
            assert back.as_dict() == tally.as_dict()

    def test_row_width_matches_layout(self):
        assert FleetTally.row_width(0) == FleetTally.ROW_SCALARS
        assert FleetTally.row_width(50) == FleetTally.ROW_SCALARS + 100
