"""Tests for the vectorized fleet population kernel."""

import numpy as np
import pytest

from repro.core.migration import FormatRisk
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.fleet.population import simulate_fleet_chunk
from repro.fleet.timeline import (
    FleetEpoch,
    FleetTimeline,
    MigrationEvent,
    RegionalShockModel,
    stationary_timeline,
)
from repro.simulation.monte_carlo import estimate_loss_probability


def paper_model():
    return FaultModel(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )


def fast_model(**overrides):
    base = dict(
        mean_time_to_visible=500.0,
        mean_time_to_latent=100.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=5.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestStationaryAnchor:
    def test_matches_estimate_loss_probability_within_ci(self):
        """A stationary timeline is the point estimators' system; the
        fleet loss fraction must agree within combined 95% CIs."""
        model = paper_model()
        chunk = simulate_fleet_chunk(
            stationary_timeline(model, 50.0), members=4000, seed=1
        )
        p_fleet = np.count_nonzero(chunk.lost) / chunk.members
        se_fleet = np.sqrt(p_fleet * (1 - p_fleet) / chunk.members)
        reference = estimate_loss_probability(
            model,
            mission_time=50.0 * HOURS_PER_YEAR,
            trials=20000,
            seed=2,
            backend="batch",
            method="standard",
        )
        low, high = reference.confidence_interval()
        assert p_fleet - 1.96 * se_fleet <= high
        assert low <= p_fleet + 1.96 * se_fleet

    def test_losses_happen_before_the_horizon(self):
        chunk = simulate_fleet_chunk(
            stationary_timeline(fast_model(), 2.0), members=500, seed=3
        )
        assert chunk.lost.any()
        assert np.all(
            chunk.loss_time[chunk.lost] < 2.0 * HOURS_PER_YEAR
        )
        assert np.all(np.isinf(chunk.loss_time[~chunk.lost]))


class TestEpochBoundaries:
    def test_identical_epochs_are_a_no_op(self):
        """Cutting a stationary timeline into epochs with the same rates
        must reproduce the single-epoch run bit for bit."""
        model = fast_model()
        single = stationary_timeline(model, 2.0)
        split = FleetTimeline(
            years=2.0,
            epochs=(
                FleetEpoch(0.0, model),
                FleetEpoch(0.75, model),
                FleetEpoch(1.5, model),
            ),
        )
        a = simulate_fleet_chunk(single, members=800, seed=7)
        b = simulate_fleet_chunk(split, members=800, seed=7)
        assert np.array_equal(a.lost, b.lost)
        assert np.array_equal(a.loss_time, b.loss_time)
        assert np.array_equal(a.repair_year_counts, b.repair_year_counts)

    def test_switching_to_a_safe_epoch_stops_losses(self):
        """After a switch to a near-immortal regime, the only losses can
        come from windows already open at the boundary."""
        safe = fast_model(
            mean_time_to_visible=1e13, mean_time_to_latent=1e13
        )
        timeline = FleetTimeline(
            years=2.0,
            epochs=(
                FleetEpoch(0.0, fast_model()),
                FleetEpoch(1.0, safe),
            ),
        )
        chunk = simulate_fleet_chunk(timeline, members=800, seed=11)
        boundary = 1.0 * HOURS_PER_YEAR
        # Outstanding latent faults at the boundary can still complete a
        # loss within a detection window (interval 10h) plus repair.
        margin = 2.0 * 5.0 + 1.0 + 1.0
        assert chunk.lost.any()
        assert np.all(chunk.loss_time[chunk.lost] <= boundary + margin)

    def test_aging_epoch_increases_losses(self):
        model = fast_model(
            mean_time_to_visible=5000.0, mean_time_to_latent=1000.0
        )
        base = stationary_timeline(model, 1.0)
        aged = FleetTimeline(
            years=1.0,
            epochs=(
                FleetEpoch(0.0, model),
                FleetEpoch(0.5, model, hazard_multiplier=6.0),
            ),
        )
        losses_base = np.count_nonzero(
            simulate_fleet_chunk(base, 2000, seed=5).lost
        )
        losses_aged = np.count_nonzero(
            simulate_fleet_chunk(aged, 2000, seed=5).lost
        )
        assert losses_aged > losses_base * 1.5


class TestMigrations:
    def test_lethal_migration_kills_every_survivor(self):
        doomed = FormatRisk("doomed", 1.0, 1e-12, 10.0)
        timeline = FleetTimeline(
            years=10.0,
            epochs=(FleetEpoch(0.0, paper_model()),),
            migrations=(MigrationEvent(5.0, doomed),),
        )
        chunk = simulate_fleet_chunk(timeline, members=400, seed=2)
        assert chunk.lost.all()
        organic = chunk.members - chunk.migration_losses
        migrated_at = chunk.loss_time == 5.0 * HOURS_PER_YEAR
        assert chunk.migration_losses == np.count_nonzero(migrated_at)
        assert organic == np.count_nonzero(~migrated_at)

    def test_migration_loss_fraction_matches_window_risk(self):
        risk = FormatRisk("camera RAW", 8.0, 5.0, 1.0)
        timeline = FleetTimeline(
            years=10.0,
            epochs=(FleetEpoch(0.0, paper_model()),),
            migrations=(MigrationEvent(5.0, risk),),
        )
        chunk = simulate_fleet_chunk(timeline, members=4000, seed=9)
        p = risk.migration_sweep_years / (
            risk.migration_sweep_years + risk.mean_years_endangered_to_dead
        )
        observed = chunk.migration_losses / chunk.members
        assert observed == pytest.approx(p, abs=3 * np.sqrt(p / 4000))


class TestShocks:
    def test_total_penetration_single_region_kills_everyone(self):
        shocks = RegionalShockModel(
            rate_per_year=50.0, regions=1, replica_penetration=1.0
        )
        timeline = FleetTimeline(
            years=1.0,
            epochs=(FleetEpoch(0.0, paper_model(), shocks=shocks),),
        )
        chunk = simulate_fleet_chunk(timeline, members=300, seed=4)
        assert chunk.lost.all()
        assert chunk.shock_events >= 1
        assert chunk.shock_faults >= 300

    def test_shocks_only_strike_one_region(self):
        shocks = RegionalShockModel(
            rate_per_year=2.0, regions=4, replica_penetration=1.0
        )
        timeline = FleetTimeline(
            years=1.0,
            epochs=(FleetEpoch(0.0, paper_model(), shocks=shocks),),
        )
        chunk = simulate_fleet_chunk(timeline, members=400, seed=6)
        if chunk.shock_events == 1:
            # One total-penetration shock kills exactly one region.
            assert np.count_nonzero(chunk.lost) == pytest.approx(
                100, abs=5
            )

    def test_single_replica_hits_degrade_without_killing(self):
        shocks = RegionalShockModel(
            rate_per_year=5.0, regions=1, replica_penetration=0.35
        )
        timeline = FleetTimeline(
            years=1.0,
            epochs=(FleetEpoch(0.0, paper_model(), shocks=shocks),),
        )
        chunk = simulate_fleet_chunk(timeline, members=500, seed=8)
        # Partial penetration: some members lose both replicas to one
        # shock, most survive with a repairable fault.
        assert chunk.shock_faults > 0
        assert 0 < np.count_nonzero(chunk.lost) < chunk.members

    def test_schedule_seed_shares_shocks_across_chunk_seeds(self):
        shocks = RegionalShockModel(
            rate_per_year=1.0, regions=1, replica_penetration=1.0
        )
        timeline = FleetTimeline(
            years=5.0,
            epochs=(FleetEpoch(0.0, paper_model(), shocks=shocks),),
        )
        a = simulate_fleet_chunk(
            timeline, members=100, seed=101, schedule_seed=7
        )
        b = simulate_fleet_chunk(
            timeline, members=100, seed=202, schedule_seed=7
        )
        # Different chunk seeds, same fleet: identical shock schedule,
        # so total-penetration shocks kill both chunks at the same
        # instants.
        assert a.shock_events == b.shock_events
        assert a.shock_events > 0
        assert set(a.loss_time[a.lost]) == set(b.loss_time[b.lost])

    def test_shock_randomness_does_not_disturb_fault_clocks(self):
        """Organic physics draws from the clock stream; adding shocks
        must not change which exponentials organic faults consume."""
        quiet = stationary_timeline(paper_model(), 5.0)
        noisy = FleetTimeline(
            years=5.0,
            epochs=(
                FleetEpoch(
                    0.0,
                    paper_model(),
                    shocks=RegionalShockModel(
                        rate_per_year=0.2,
                        regions=4,
                        replica_penetration=0.0,
                    ),
                ),
            ),
        )
        a = simulate_fleet_chunk(quiet, members=600, seed=12)
        b = simulate_fleet_chunk(noisy, members=600, seed=12)
        # Zero-penetration shocks consume only event-stream draws, so
        # the organic outcome is untouched.
        assert np.array_equal(a.lost, b.lost)
        assert np.array_equal(a.loss_time, b.loss_time)


class TestBookkeeping:
    def test_repair_histogram_sums_to_total(self):
        chunk = simulate_fleet_chunk(
            stationary_timeline(fast_model(), 2.0), members=300, seed=1
        )
        assert chunk.repair_year_counts.sum() == chunk.repairs
        assert chunk.repairs > 0

    def test_loss_year_counts_clip_into_bins(self):
        chunk = simulate_fleet_chunk(
            stationary_timeline(fast_model(), 2.0), members=300, seed=1
        )
        counts = chunk.loss_year_counts(3)
        assert counts.sum() == np.count_nonzero(chunk.lost)

    def test_rejects_non_positive_members(self):
        with pytest.raises(ValueError):
            simulate_fleet_chunk(
                stationary_timeline(fast_model(), 1.0), members=0
            )
