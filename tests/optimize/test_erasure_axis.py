"""Tests for the planner's erasure-coding design axis."""

import pytest

from repro.core.redundancy import ErasureCode, Replication
from repro.optimize.evaluate import (
    EvaluationSettings,
    refine,
    screen,
    screen_loss_rate,
)
from repro.optimize.space import CandidateDesign, DesignSpace
from repro.storage.costs import (
    CostModel,
    replication_cost,
    scheme_storage_cost,
)


class TestSchemeStorageCost:
    MODEL = CostModel(hardware_cost_per_tb=100.0, site_cost_per_year=200.0)

    def test_k1_identical_to_replication_cost(self):
        for r in (1, 2, 4):
            assert scheme_storage_cost(
                self.MODEL,
                10.0,
                Replication(r),
                audits_per_fragment_year=12.0,
                expected_repairs_per_fragment_year=0.5,
            ) == replication_cost(
                self.MODEL,
                10.0,
                r,
                audits_per_replica_year=12.0,
                expected_repairs_per_replica_year=0.5,
            )

    def test_hardware_scales_with_overhead_not_fragments(self):
        # EC(6,4) stores 1.5x the data across 6 fragments: hardware
        # tracks the 1.5x, administration tracks the 6 fragments.
        ec = scheme_storage_cost(self.MODEL, 10.0, ErasureCode(6, 4))
        rep = scheme_storage_cost(self.MODEL, 10.0, Replication(6))
        assert ec.hardware_per_year == pytest.approx(
            rep.hardware_per_year * 1.5 / 6.0
        )
        assert ec.administration_per_year == rep.administration_per_year

    def test_repairs_charge_k_fragment_reads(self):
        ec = scheme_storage_cost(
            self.MODEL,
            10.0,
            ErasureCode(6, 4),
            expected_repairs_per_fragment_year=1.0,
        )
        rep = scheme_storage_cost(
            self.MODEL,
            10.0,
            Replication(6),
            expected_repairs_per_fragment_year=1.0,
        )
        assert ec.repairs_per_year_cost == pytest.approx(
            rep.repairs_per_year_cost * 4.0
        )

    def test_sites_bounded_by_fragment_count(self):
        with pytest.raises(ValueError):
            scheme_storage_cost(
                self.MODEL, 10.0, ErasureCode(4, 2), independent_sites=5
            )


class TestCandidateDesignScheme:
    def test_scheme_forces_replica_count(self):
        candidate = CandidateDesign(
            medium="drive:cheetah",
            replicas=2,
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=10.0,
            scheme=ErasureCode(6, 4),
        )
        assert candidate.replicas == 6

    def test_key_and_dict_are_scheme_conditional(self):
        plain = CandidateDesign(
            medium="drive:cheetah",
            replicas=3,
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=10.0,
        )
        assert "scheme" not in plain.key()
        assert "scheme" not in plain.as_dict()
        coded = CandidateDesign(
            medium="drive:cheetah",
            replicas=6,
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=10.0,
            scheme=ErasureCode(6, 4),
        )
        assert coded.key().endswith("|scheme=6,4")
        rebuilt = CandidateDesign.from_dict(coded.as_dict())
        assert rebuilt == coded

    def test_erasure_candidate_cheaper_than_same_n_replication(self):
        kwargs = dict(
            medium="drive:cheetah",
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=10.0,
        )
        coded = CandidateDesign(replicas=6, scheme=ErasureCode(6, 4), **kwargs)
        replicated = CandidateDesign(replicas=6, **kwargs)
        assert coded.annual_cost() < replicated.annual_cost()


class TestDesignSpaceErasureAxis:
    def test_size_counts_erasure_schemes(self):
        base = DesignSpace(
            media=("drive:cheetah",),
            replica_counts=(2, 3),
            audit_rates=(12.0,),
            placements=("multi",),
        )
        grown = DesignSpace(
            media=("drive:cheetah",),
            replica_counts=(2, 3),
            audit_rates=(12.0,),
            placements=("multi",),
            erasure_schemes=("6,4", "9,6"),
        )
        assert grown.size == base.size + 2

    def test_candidates_enumerate_replication_first(self):
        space = DesignSpace(
            media=("drive:cheetah",),
            replica_counts=(2,),
            audit_rates=(12.0,),
            placements=("multi",),
            erasure_schemes=("6,4",),
        )
        candidates = list(space.candidates())
        assert len(candidates) == 2
        assert candidates[0].scheme is None
        assert candidates[1].scheme == ErasureCode(6, 4)

    def test_as_dict_conditional_for_hash_stability(self):
        assert "erasure_schemes" not in DesignSpace().as_dict()
        grown = DesignSpace(erasure_schemes=("6,4",))
        assert grown.as_dict()["erasure_schemes"] == ["6,4"]

    def test_invalid_scheme_strings_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(erasure_schemes=("6,4,2",))
        with pytest.raises(ValueError):
            DesignSpace(erasure_schemes=("1,1",))


class TestSchemeAwareEvaluation:
    SETTINGS = EvaluationSettings(mission_years=50.0, trials=200, seed=0)

    def _candidate(self, scheme):
        return CandidateDesign(
            medium="drive:cheetah",
            replicas=scheme.n if scheme else 3,
            audits_per_year=12.0,
            placement="multi",
            dataset_tb=10.0,
            scheme=scheme,
        )

    def test_screen_loss_rate_scheme_aware(self):
        candidate = self._candidate(ErasureCode(4, 2))
        model = candidate.fault_model()
        coded = screen_loss_rate(model, 4, scheme=ErasureCode(4, 2))
        plain = screen_loss_rate(model, 4)
        assert coded > plain  # smaller loss threshold, higher rate

    def test_screen_n1_scheme_bit_for_bit(self):
        plain = screen(self._candidate(None), self.SETTINGS)
        coded = screen(self._candidate(Replication(3)), self.SETTINGS)
        assert coded.analytic_mttdl_hours == plain.analytic_mttdl_hours
        assert coded.analytic_loss_probability == (
            plain.analytic_loss_probability
        )

    def test_erasure_screen_less_reliable_than_same_n_replication(self):
        coded = screen(self._candidate(ErasureCode(4, 2)), self.SETTINGS)
        replicated = screen(
            CandidateDesign(
                medium="drive:cheetah",
                replicas=4,
                audits_per_year=12.0,
                placement="multi",
                dataset_tb=10.0,
            ),
            self.SETTINGS,
        )
        assert coded.analytic_loss_probability > (
            replicated.analytic_loss_probability
        )

    def test_refine_attaches_simulation_to_erasure_candidate(self):
        evaluation = screen(self._candidate(ErasureCode(4, 2)), self.SETTINGS)
        refined = refine(evaluation, self.SETTINGS)
        assert refined.simulated is not None
        assert refined.simulated.trials >= self.SETTINGS.trials
