"""Tests for the multi-fidelity candidate evaluator."""

import math

import pytest

from repro.core.mttdl import double_fault_rate
from repro.optimize.evaluate import (
    CandidateEvaluation,
    EvaluationSettings,
    refine,
    screen,
    screen_candidates,
    screen_loss_rate,
    screen_mttdl_hours,
    survivors_for_refinement,
)
from repro.optimize.space import CandidateDesign


def candidate(**overrides):
    base = dict(
        medium="drive:cheetah",
        replicas=2,
        audits_per_year=52.0,
        placement="multi",
        dataset_tb=10.0,
    )
    base.update(overrides)
    return CandidateDesign(**base)


def fake_evaluation(cost, loss, **candidate_overrides):
    """Screen-only evaluation with hand-picked coordinates."""
    return CandidateEvaluation(
        candidate=candidate(**candidate_overrides),
        annual_cost=cost,
        analytic_mttdl_hours=1.0,
        analytic_loss_probability=loss,
        mission_years=50.0,
    )


class TestScreenFormula:
    def test_mirrored_rate_is_twice_the_paper_convention(self, cheetah_scrubbed_model):
        # The simulators open a window when EITHER replica faults; the
        # paper's Eq. 7 counts one window owner.
        assert screen_loss_rate(cheetah_scrubbed_model, 2) == pytest.approx(
            2.0 * double_fault_rate(cheetah_scrubbed_model), rel=1e-9
        )

    def test_more_replicas_lose_less(self, cheetah_scrubbed_model):
        rates = [screen_loss_rate(cheetah_scrubbed_model, r) for r in (2, 3, 4)]
        assert rates[0] > rates[1] > rates[2]

    def test_correlation_hurts(self, cheetah_scrubbed_model):
        correlated = cheetah_scrubbed_model.with_correlation(0.01)
        assert screen_loss_rate(correlated, 2) > screen_loss_rate(
            cheetah_scrubbed_model, 2
        )

    def test_mttdl_inverts_rate(self, cheetah_scrubbed_model):
        rate = screen_loss_rate(cheetah_scrubbed_model, 2)
        assert screen_mttdl_hours(cheetah_scrubbed_model, 2) == pytest.approx(1.0 / rate)

    def test_rejects_single_replica(self, cheetah_scrubbed_model):
        with pytest.raises(ValueError):
            screen_loss_rate(cheetah_scrubbed_model, 1)


class TestScreen:
    def test_screen_populates_cost_and_loss(self):
        evaluation = screen(candidate(), EvaluationSettings())
        assert evaluation.annual_cost > 0
        assert 0 <= evaluation.analytic_loss_probability <= 1
        assert not evaluation.refined
        assert evaluation.agrees_with_screen is None

    def test_more_audits_screen_safer(self):
        settings = EvaluationSettings()
        rare = screen(candidate(audits_per_year=1.0), settings)
        frequent = screen(candidate(audits_per_year=52.0), settings)
        assert frequent.analytic_loss_probability < rare.analytic_loss_probability

    def test_multi_site_screens_safer_than_single(self):
        settings = EvaluationSettings()
        single = screen(candidate(placement="single"), settings)
        multi = screen(candidate(placement="multi"), settings)
        assert multi.analytic_loss_probability < single.analytic_loss_probability

    def test_longer_missions_lose_more(self):
        short = screen(candidate(), EvaluationSettings(mission_years=10.0))
        long = screen(candidate(), EvaluationSettings(mission_years=100.0))
        assert long.analytic_loss_probability > short.analytic_loss_probability

    def test_dict_round_trip(self):
        evaluation = screen(candidate(), EvaluationSettings())
        assert CandidateEvaluation.from_dict(evaluation.as_dict()) == evaluation


class TestRefine:
    def test_refinement_is_deterministic(self):
        settings = EvaluationSettings(trials=200, seed=3)
        evaluation = screen(candidate(), settings)
        first = refine(evaluation, settings)
        second = refine(evaluation, settings)
        assert first.simulated == second.simulated

    def test_different_candidates_get_different_seeds(self):
        settings = EvaluationSettings(trials=100, seed=3)
        a = refine(screen(candidate(), settings), settings)
        b = refine(screen(candidate(replicas=3), settings), settings)
        assert a.simulated.seed != b.simulated.seed

    def test_zero_losses_use_rule_of_three_upper_bound(self):
        # Cheetah, weekly audits, 3 multi-site replicas: no losses in
        # 200 standard trials, so the CI must widen to the rule-of-three
        # bound.
        settings = EvaluationSettings(trials=200, seed=3, method="standard")
        refined = refine(screen(candidate(replicas=3), settings), settings)
        assert refined.simulated.losses == 0
        assert refined.simulated.method == "standard"
        assert refined.simulated.ci_high == pytest.approx(3.0 / 200)
        assert refined.agrees_with_screen is True

    def test_auto_refinement_rescues_zero_loss_candidates(self):
        # The same high-reliability candidate under the default
        # method="auto": the standard pilot censors to zero losses, so
        # the refinement must switch to importance sampling and come
        # back with a real (non-rule-of-three) confidence interval.
        settings = EvaluationSettings(trials=200, seed=3)
        refined = refine(screen(candidate(replicas=3), settings), settings)
        simulated = refined.simulated
        assert simulated.method == "is"
        assert simulated.losses > 0
        assert 0.0 < simulated.mean < 3.0 / 200
        assert simulated.ci_low <= simulated.mean <= simulated.ci_high
        assert simulated.effective_sample_size > 0
        assert refined.agrees_with_screen is True

    def test_agreement_at_lossy_operating_point(self):
        # The unscrubbed single-site pair loses data often enough for a
        # substantive CI check: screen and simulation must tell the same
        # story where the Monte-Carlo actually observes losses.
        settings = EvaluationSettings(trials=2000, seed=5)
        evaluation = screen(
            candidate(medium="drive:barracuda", audits_per_year=52.0), settings
        )
        refined = refine(evaluation, settings)
        assert refined.simulated.losses > 0
        assert refined.agrees_with_screen is True

    def test_dict_round_trip_with_refinement(self):
        settings = EvaluationSettings(trials=100, seed=3)
        refined = refine(screen(candidate(), settings), settings)
        assert CandidateEvaluation.from_dict(refined.as_dict()) == refined


class TestSurvivors:
    def test_strictly_dominated_candidates_are_pruned(self):
        cheap_good = fake_evaluation(100.0, 1e-6)
        expensive_bad = fake_evaluation(200.0, 1e-3, replicas=3)
        survivors = survivors_for_refinement([expensive_bad, cheap_good], slack=4.0)
        assert survivors == [cheap_good]

    def test_near_frontier_candidates_survive_within_slack(self):
        cheap_good = fake_evaluation(100.0, 1e-6)
        slightly_worse = fake_evaluation(200.0, 3e-6, replicas=3)
        survivors = survivors_for_refinement([cheap_good, slightly_worse], slack=4.0)
        assert slightly_worse in survivors

    def test_slack_one_is_strict_pareto(self):
        cheap = fake_evaluation(100.0, 1e-3)
        better_but_pricier = fake_evaluation(200.0, 1e-4, replicas=3)
        same_loss_pricier = fake_evaluation(300.0, 1e-3, replicas=4)
        survivors = survivors_for_refinement(
            [cheap, better_but_pricier, same_loss_pricier], slack=1.0
        )
        assert survivors == [cheap, better_but_pricier]

    def test_survivors_sorted_by_cost(self):
        evaluations = [
            fake_evaluation(300.0, 1e-8, replicas=4),
            fake_evaluation(100.0, 1e-2),
            fake_evaluation(200.0, 1e-5, replicas=3),
        ]
        survivors = survivors_for_refinement(evaluations)
        costs = [e.annual_cost for e in survivors]
        assert costs == sorted(costs)

    def test_cheapest_candidate_always_survives(self):
        terrible_but_cheap = fake_evaluation(1.0, 1.0)
        good = fake_evaluation(50.0, 1e-9, replicas=3)
        survivors = survivors_for_refinement([good, terrible_but_cheap])
        assert terrible_but_cheap in survivors

    def test_rejects_slack_below_one(self):
        with pytest.raises(ValueError):
            survivors_for_refinement([], slack=0.5)


class TestEvaluationSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationSettings(mission_years=0.0)
        with pytest.raises(ValueError):
            EvaluationSettings(trials=0)
        with pytest.raises(ValueError):
            EvaluationSettings(seed=-1)
