"""Tests for the planner's declarative design space."""

import pytest

from repro.core.units import HOURS_PER_YEAR
from repro.optimize.space import (
    LATENT_TO_VISIBLE_RATIO,
    CandidateDesign,
    DesignSpace,
    placement_alpha,
    resolve_medium,
)


def candidate(**overrides):
    base = dict(
        medium="drive:cheetah",
        replicas=2,
        audits_per_year=12.0,
        placement="multi",
        dataset_tb=10.0,
    )
    base.update(overrides)
    return CandidateDesign(**base)


class TestResolveMedium:
    def test_explicit_drive_prefix(self):
        resolved = resolve_medium("drive:cheetah")
        assert resolved.kind == "drive"
        assert "Cheetah" in resolved.display_name

    def test_explicit_media_prefix(self):
        resolved = resolve_medium("media:tape")
        assert resolved.kind == "media"
        assert "tape" in resolved.display_name

    def test_bare_identifier_prefers_drives(self):
        assert resolve_medium("barracuda").kind == "drive"
        assert resolve_medium("tape").kind == "media"

    def test_bare_identifier_is_normalised(self):
        assert resolve_medium("barracuda").identifier == "drive:barracuda"

    def test_unknown_medium_lists_catalog(self):
        with pytest.raises(KeyError, match="drive:cheetah"):
            resolve_medium("floppy")

    def test_wrong_prefix_is_not_found(self):
        with pytest.raises(KeyError):
            resolve_medium("media:cheetah")


class TestPlacementAlpha:
    def test_multi_site_is_fully_independent(self):
        assert placement_alpha("multi", 3) == pytest.approx(1.0)

    def test_single_site_is_strongly_correlated(self):
        assert placement_alpha("single", 3) < 0.01

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            placement_alpha("orbital", 2)


class TestCandidateDesign:
    def test_fault_model_uses_half_audit_interval_for_mdl(self):
        model = candidate(audits_per_year=12.0).fault_model()
        assert model.mean_detect_latent == pytest.approx(HOURS_PER_YEAR / 12.0 / 2.0)

    def test_unaudited_drive_never_detects_latent_faults(self):
        # MDL == ML is the simulators' "no scrubbing" sentinel.
        model = candidate(audits_per_year=0.0).fault_model()
        assert model.mean_detect_latent == pytest.approx(model.mean_time_to_latent)

    def test_drive_latent_ratio(self):
        model = candidate().fault_model()
        assert model.latent_to_visible_ratio == pytest.approx(LATENT_TO_VISIBLE_RATIO)

    def test_media_candidate_includes_access_latency_in_repairs(self):
        model = candidate(medium="media:tape").fault_model()
        # 72h retrieval + 12h restore
        assert model.mean_repair_visible == pytest.approx(84.0)

    def test_placement_sets_correlation_factor(self):
        assert candidate(placement="multi").fault_model().correlation_factor == 1.0
        assert candidate(placement="single").fault_model().correlation_factor < 0.01

    def test_more_replicas_cost_more(self):
        assert candidate(replicas=3).annual_cost() > candidate(replicas=2).annual_cost()

    def test_site_cost_charged_for_multi_only(self):
        multi = candidate(site_cost_per_year=1000.0)
        single = candidate(placement="single", site_cost_per_year=1000.0)
        assert multi.cost_breakdown().sites_per_year == pytest.approx(1000.0)
        assert single.cost_breakdown().sites_per_year == 0.0

    def test_audits_add_cost(self):
        assert (
            candidate(audits_per_year=52.0).annual_cost()
            > candidate(audits_per_year=0.0).annual_cost()
        )

    def test_key_and_hash_are_stable_and_distinct(self):
        assert candidate().key() == candidate().key()
        assert candidate().content_hash() == candidate().content_hash()
        assert candidate().content_hash() != candidate(replicas=3).content_hash()

    def test_dict_round_trip(self):
        original = candidate(site_cost_per_year=42.0)
        assert CandidateDesign.from_dict(original.as_dict()) == original

    def test_validation(self):
        with pytest.raises(ValueError):
            candidate(replicas=1)
        with pytest.raises(ValueError):
            candidate(audits_per_year=-1.0)
        with pytest.raises(ValueError):
            candidate(placement="orbital")
        with pytest.raises(ValueError):
            candidate(dataset_tb=0.0)
        with pytest.raises(KeyError):
            candidate(medium="drive:floppy")


class TestDesignSpace:
    def test_size_is_grid_product(self):
        space = DesignSpace(
            media=("drive:cheetah", "media:tape"),
            replica_counts=(2, 3),
            audit_rates=(0.0, 12.0),
            placements=("single", "multi"),
        )
        assert space.size == 16
        assert len(list(space.candidates())) == 16

    def test_candidates_are_unique_and_deterministic(self):
        space = DesignSpace()
        first = [c.key() for c in space.candidates()]
        second = [c.key() for c in space.candidates()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_candidates_inherit_space_settings(self):
        space = DesignSpace(dataset_tb=7.0, site_cost_per_year=99.0)
        sample = next(space.candidates())
        assert sample.dataset_tb == 7.0
        assert sample.site_cost_per_year == 99.0

    def test_content_hash_tracks_definition(self):
        assert DesignSpace().content_hash() == DesignSpace().content_hash()
        assert (
            DesignSpace(dataset_tb=11.0).content_hash()
            != DesignSpace().content_hash()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpace(replica_counts=(1, 2))
        with pytest.raises(ValueError):
            DesignSpace(media=())
        with pytest.raises(ValueError):
            DesignSpace(audit_rates=(-1.0,))
        with pytest.raises(ValueError):
            DesignSpace(placements=("orbital",))
        with pytest.raises(KeyError):
            DesignSpace(media=("drive:floppy",))
