"""Tests for CI-aware Pareto extraction and recommendation queries."""

import pytest

from repro.optimize.evaluate import CandidateEvaluation, SimulatedLoss
from repro.optimize.frontier import dominates, pareto_frontier, recommend
from repro.optimize.space import CandidateDesign


def evaluation(cost, loss, ci=None, analytic=None, replicas=2, audits=12.0):
    """Build an evaluation at chosen coordinates.

    ``ci`` attaches a simulated refinement with that interval; without
    it the evaluation is screen-only (a point on the loss axis).
    """
    candidate = CandidateDesign(
        medium="drive:cheetah",
        replicas=replicas,
        audits_per_year=audits,
        placement="multi",
        dataset_tb=10.0,
    )
    simulated = None
    if ci is not None:
        low, high = ci
        simulated = SimulatedLoss(
            mean=loss,
            std_error=0.0,
            trials=1000,
            losses=int(loss * 1000),
            ci_low=low,
            ci_high=high,
            seed=0,
        )
    return CandidateEvaluation(
        candidate=candidate,
        annual_cost=cost,
        analytic_mttdl_hours=1.0,
        analytic_loss_probability=loss if analytic is None else analytic,
        mission_years=50.0,
        simulated=simulated,
    )


class TestDominance:
    def test_cheaper_and_statistically_better_dominates(self):
        a = evaluation(100.0, 0.001, ci=(0.0005, 0.002))
        b = evaluation(200.0, 0.1, ci=(0.05, 0.2))
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_overlapping_intervals_do_not_dominate(self):
        a = evaluation(100.0, 0.01, ci=(0.005, 0.02))
        b = evaluation(200.0, 0.015, ci=(0.01, 0.03))
        assert not dominates(a, b)

    def test_equal_cost_needs_strictly_separated_loss(self):
        a = evaluation(100.0, 0.001, ci=(0.0005, 0.002))
        twin = evaluation(100.0, 0.001, ci=(0.0005, 0.002))
        assert not dominates(a, twin)
        better = evaluation(100.0, 0.0001, ci=(0.00005, 0.0002))
        assert dominates(better, a)

    def test_point_evaluations_use_classic_dominance(self):
        a = evaluation(100.0, 0.001)
        b = evaluation(200.0, 0.01)
        assert dominates(a, b)


class TestParetoFrontier:
    def test_dominated_points_are_dropped(self):
        good = evaluation(100.0, 0.001, ci=(0.0005, 0.002))
        dominated = evaluation(200.0, 0.1, ci=(0.05, 0.2))
        frontier = pareto_frontier([dominated, good])
        assert frontier == [good]

    def test_indistinguishable_points_are_both_kept(self):
        a = evaluation(100.0, 0.01, ci=(0.005, 0.02))
        b = evaluation(200.0, 0.008, ci=(0.004, 0.016))
        assert set(
            e.annual_cost for e in pareto_frontier([a, b])
        ) == {100.0, 200.0}

    def test_frontier_sorted_by_cost(self):
        points = [
            evaluation(300.0, 1e-6, ci=(0.0, 2e-6)),
            evaluation(100.0, 1e-2, ci=(5e-3, 2e-2)),
            evaluation(200.0, 1e-4, ci=(5e-5, 2e-4)),
        ]
        frontier = pareto_frontier(points)
        assert [e.annual_cost for e in frontier] == [100.0, 200.0, 300.0]

    def test_empty_input(self):
        assert pareto_frontier([]) == []


class TestRecommend:
    def frontier(self):
        return [
            evaluation(100.0, 0.05, ci=(0.03, 0.08)),
            evaluation(500.0, 0.001, ci=(0.0005, 0.002)),
            evaluation(2000.0, 0.0, ci=(0.0, 0.003), analytic=1e-6, replicas=4),
        ]

    def test_budget_picks_most_reliable_affordable(self):
        best = recommend(self.frontier(), budget=600.0)
        assert best.annual_cost == 500.0

    def test_generous_budget_picks_most_reliable(self):
        assert recommend(self.frontier(), budget=1e6).annual_cost == 2000.0

    def test_target_loss_picks_cheapest_meeting_target(self):
        best = recommend(self.frontier(), target_loss=0.01)
        assert best.annual_cost == 500.0

    def test_target_loss_uses_the_ci_upper_bound(self):
        # A zero-loss refinement only demonstrates its rule-of-three
        # bound; a target below that bound must not be claimed as met.
        zero_loss = evaluation(100.0, 0.0, ci=(0.0, 0.003))
        with pytest.raises(ValueError, match="trials"):
            recommend([zero_loss], target_loss=1e-6)
        assert recommend([zero_loss], target_loss=0.003).annual_cost == 100.0

    def test_budget_and_target_combine(self):
        best = recommend(self.frontier(), budget=600.0, target_loss=0.01)
        assert best.annual_cost == 500.0

    def test_zero_loss_ties_break_by_analytic_screen(self):
        tied_worse = evaluation(
            100.0, 0.0, ci=(0.0, 0.003), analytic=1e-4
        )
        tied_better = evaluation(
            200.0, 0.0, ci=(0.0, 0.003), analytic=1e-8, replicas=3
        )
        best = recommend([tied_worse, tied_better], budget=1000.0)
        assert best.analytic_loss_probability == 1e-8

    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError, match="budget"):
            recommend(self.frontier(), budget=50.0)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="target|loss"):
            recommend(self.frontier(), budget=200.0, target_loss=1e-9)

    def test_no_constraints_raises(self):
        with pytest.raises(ValueError):
            recommend(self.frontier())

    def test_empty_frontier_raises(self):
        with pytest.raises(ValueError, match="empty"):
            recommend([], budget=100.0)
