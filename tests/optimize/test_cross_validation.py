"""Cross-validation: the planner must agree with the Section 6 analysis.

``core/strategies.py`` ranks the paper's reliability levers at an
operating point; the planner searches a concrete design space.  Both
views must tell the paper's story: at the Cheetah operating point,
detection latency (audit more), automated repair, and independence
dominate — so the planner's recommendation must audit at the highest
rate on offer and place replicas at independent sites, and the strategy
ranking must put those levers ahead of better hardware.
"""

import pytest

from repro.core.strategies import Strategy, rank_strategies
from repro.optimize import (
    DesignSpace,
    EvaluationSettings,
    optimize,
    recommend,
)

SPACE = DesignSpace(
    dataset_tb=10.0,
    media=("drive:barracuda", "drive:cheetah"),
    replica_counts=(2, 3),
    audit_rates=(0.0, 1.0, 12.0, 52.0),
    placements=("single", "multi"),
)

SETTINGS = EvaluationSettings(trials=400, seed=6)


@pytest.fixture(scope="module")
def result():
    return optimize(SPACE, SETTINGS)


class TestStrategyRankingMatchesPaper:
    def test_detection_and_independence_beat_better_hardware(
        self, cheetah_correlated_model
    ):
        # At the scrubbed-but-correlated operating point, halving the
        # detection delay or doubling independence each buy ~2x MTTDL
        # while doubling the hardware's visible-fault MTTF buys ~9% —
        # the Section 6 conclusion the planner must reproduce in
        # dollars.
        ranked = rank_strategies(cheetah_correlated_model, factor=2.0)
        by_strategy = {outcome.strategy: outcome for outcome in ranked}
        hardware = by_strategy[Strategy.INCREASE_MV].improvement_ratio
        assert by_strategy[Strategy.REDUCE_MDL].improvement_ratio > hardware
        assert (
            by_strategy[Strategy.INCREASE_INDEPENDENCE].improvement_ratio > hardware
        )
        # Replication is the one lever that beats both, and it is
        # exactly the lever the planner prices: more replicas cost
        # linearly more, which is why the frontier, not the ranking,
        # decides how many to buy.
        assert ranked[0].strategy is Strategy.INCREASE_REPLICATION


class TestFrontierMatchesRanking:
    def test_recommendation_audits_at_the_highest_rate(self, result):
        best = recommend(result.frontier, budget=50_000.0)
        assert best.candidate.audits_per_year == max(SPACE.audit_rates)

    def test_recommendation_places_replicas_independently(self, result):
        best = recommend(result.frontier, budget=50_000.0)
        assert best.candidate.placement == "multi"

    def test_frontier_below_the_cheap_end_is_all_multi_site(self, result):
        # Site diversity costs nothing in this space, so once the
        # frontier leaves the cheapest corner every surviving design is
        # multi-site: independence dominates at equal cost.
        cheapest = result.frontier[0]
        rest = result.frontier[1:]
        assert rest
        assert all(e.candidate.placement == "multi" for e in rest)

    def test_unaudited_designs_never_get_recommended(self, result):
        # Detection latency dominates: among refined designs, the
        # recommendation never falls on an unaudited configuration.
        best = recommend(result.frontier, budget=50_000.0)
        assert best.candidate.audits_per_year > 0

    def test_consumer_drives_with_independence_beat_enterprise(self, result):
        # Section 6.1's conclusion in planner form: the recommended
        # design uses consumer drives, not the 14x-pricier enterprise
        # option, because independence + auditing buys more per dollar.
        best = recommend(result.frontier, budget=50_000.0)
        assert best.candidate.medium == "drive:barracuda"

    def test_recommended_simulation_agrees_with_screen(self, result):
        best = recommend(result.frontier, budget=50_000.0)
        assert best.agrees_with_screen is True
