"""Tests for the parallel runner and its content-hash result cache."""

import json

import pytest

from repro.optimize.evaluate import EvaluationSettings
from repro.optimize.runner import (
    ResultCache,
    evaluation_cache_key,
    optimize,
    refine_evaluations,
)
from repro.optimize.space import DesignSpace

SMALL_SPACE = DesignSpace(
    dataset_tb=5.0,
    media=("drive:barracuda", "drive:cheetah"),
    replica_counts=(2, 3),
    audit_rates=(0.0, 52.0),
    placements=("single", "multi"),
)

FAST_SETTINGS = EvaluationSettings(trials=200, seed=9)


class TestOptimize:
    def test_pipeline_counts_are_consistent(self):
        result = optimize(SMALL_SPACE, FAST_SETTINGS)
        assert result.candidates == SMALL_SPACE.size
        assert len(result.survivors) + result.pruned == result.candidates
        assert len(result.refined) == len(result.survivors)
        assert result.new_evaluations == len(result.survivors)
        assert result.cache_hits == 0
        assert all(evaluation.refined for evaluation in result.refined)

    def test_screen_prunes_most_of_the_space(self):
        result = optimize(SMALL_SPACE, FAST_SETTINGS)
        assert result.pruned_fraction >= 0.5

    def test_frontier_is_subset_of_refined(self):
        result = optimize(SMALL_SPACE, FAST_SETTINGS)
        refined_keys = {e.candidate.key() for e in result.refined}
        assert result.frontier
        assert all(e.candidate.key() in refined_keys for e in result.frontier)

    def test_screen_only_mode_skips_simulation(self):
        result = optimize(SMALL_SPACE, FAST_SETTINGS, refine_survivors=False)
        assert result.new_evaluations == 0
        assert not any(evaluation.refined for evaluation in result.refined)
        assert result.frontier

    def test_parallel_matches_serial_exactly(self):
        serial = optimize(SMALL_SPACE, FAST_SETTINGS, jobs=1)
        parallel = optimize(SMALL_SPACE, FAST_SETTINGS, jobs=2)
        assert [e.as_dict() for e in serial.refined] == [
            e.as_dict() for e in parallel.refined
        ]

    def test_summary_shape(self):
        summary = optimize(SMALL_SPACE, FAST_SETTINGS).summary()
        assert summary["candidates"] == SMALL_SPACE.size
        assert summary["pruned_by_screen"] + summary["refined"] == summary["candidates"]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            refine_evaluations([], FAST_SETTINGS, jobs=0)


class TestCache:
    def test_rerun_evaluates_zero_new_candidates(self, tmp_path):
        first = optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        second = optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        assert first.new_evaluations == len(first.survivors)
        assert second.new_evaluations == 0
        assert second.cache_hits == len(second.survivors)
        assert [e.as_dict() for e in first.refined] == [
            e.as_dict() for e in second.refined
        ]

    def test_enlarged_space_only_pays_for_new_candidates(self, tmp_path):
        optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        larger = DesignSpace(
            dataset_tb=SMALL_SPACE.dataset_tb,
            media=SMALL_SPACE.media,
            replica_counts=SMALL_SPACE.replica_counts,
            audit_rates=SMALL_SPACE.audit_rates + (12.0,),
            placements=SMALL_SPACE.placements,
        )
        second = optimize(larger, FAST_SETTINGS, cache_dir=tmp_path)
        assert second.cache_hits > 0
        assert second.new_evaluations == len(second.survivors) - second.cache_hits
        assert second.new_evaluations < len(second.survivors)

    def test_changed_settings_miss_the_cache(self, tmp_path):
        optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        other = EvaluationSettings(trials=200, seed=10)
        second = optimize(SMALL_SPACE, other, cache_dir=tmp_path)
        assert second.cache_hits == 0
        assert second.new_evaluations == len(second.survivors)

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        first = optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        second = optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        assert second.cache_hits == 0
        assert second.new_evaluations == len(first.survivors)

    def test_cache_key_depends_on_candidate_and_settings(self):
        settings = FAST_SETTINGS
        evaluations = optimize(SMALL_SPACE, settings, refine_survivors=False).survivors
        a, b = evaluations[0], evaluations[1]
        assert evaluation_cache_key(a, settings) != evaluation_cache_key(b, settings)
        other = EvaluationSettings(trials=201, seed=9)
        assert evaluation_cache_key(a, settings) != evaluation_cache_key(a, other)

    def test_cache_round_trips_evaluations(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = optimize(SMALL_SPACE, FAST_SETTINGS)
        refined = result.refined[0]
        key = evaluation_cache_key(refined, FAST_SETTINGS)
        cache.put(key, refined)
        assert cache.get(key) == refined
        assert len(cache) == 1

    def test_cache_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("deadbeef") is None

    def test_cache_files_are_json(self, tmp_path):
        optimize(SMALL_SPACE, FAST_SETTINGS, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.json"))
        assert files
        payload = json.loads(files[0].read_text(encoding="utf-8"))
        assert "candidate" in payload and "simulated" in payload


class TestTransport:
    def test_shm_equals_pickle_equals_serial(self):
        serial = optimize(SMALL_SPACE, FAST_SETTINGS, jobs=1)
        pickled = optimize(
            SMALL_SPACE, FAST_SETTINGS, jobs=2, transport="pickle"
        )
        shm = optimize(SMALL_SPACE, FAST_SETTINGS, jobs=2, transport="shm")
        # The transport only moves the simulated rows; every refined
        # evaluation must come back bit-identical.
        assert serial.refined == pickled.refined
        assert serial.refined == shm.refined

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            optimize(SMALL_SPACE, FAST_SETTINGS, jobs=2, transport="smoke")
