"""Tests for audit policies, online/offline economics, and planning."""

import pytest

from repro.audit.online_offline import (
    audit_bandwidth_fraction,
    audit_induced_fault_rate,
    compare_online_offline,
    evaluate_media_audit,
    max_affordable_audit_rate,
)
from repro.audit.policies import (
    AuditKind,
    AuditSchedule,
    audits_needed_for_mdl,
    audits_needed_for_target_mttdl,
    detection_latency,
    on_access_schedule,
    periodic_schedule,
    poisson_schedule,
)
from repro.audit.scheduler import (
    budget_sweep,
    internal_vs_cross_replica_audit,
    plan_audits,
)
from repro.core.parameters import FaultModel
from repro.storage.media import OFFLINE_TAPE, ONLINE_DISK


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestSchedules:
    def test_periodic_three_per_year_gives_paper_mdl(self):
        schedule = periodic_schedule(3.0)
        assert detection_latency(schedule) == pytest.approx(1460.0)

    def test_zero_rate_becomes_none_schedule(self):
        schedule = periodic_schedule(0.0)
        assert schedule.kind is AuditKind.NONE
        assert detection_latency(schedule) == float("inf")

    def test_poisson_latency_is_full_interval(self):
        schedule = poisson_schedule(3.0)
        assert detection_latency(schedule) == pytest.approx(2920.0)

    def test_on_access_latency(self):
        schedule = on_access_schedule(0.5)
        assert detection_latency(schedule) == pytest.approx(2 * 8760.0)

    def test_imperfect_coverage_lengthens_periodic_latency(self):
        perfect = periodic_schedule(3.0, coverage=1.0)
        flaky = periodic_schedule(3.0, coverage=0.5)
        assert detection_latency(flaky) > detection_latency(perfect)

    def test_interval_hours(self):
        assert periodic_schedule(3.0).interval_hours == pytest.approx(2920.0)
        assert periodic_schedule(0.0).interval_hours == float("inf")

    def test_mean_detection_latency_method(self):
        schedule = periodic_schedule(3.0)
        assert schedule.mean_detection_latency() == detection_latency(schedule)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            AuditSchedule(AuditKind.PERIODIC, audits_per_year=0.0)
        with pytest.raises(ValueError):
            AuditSchedule(AuditKind.NONE, audits_per_year=2.0)
        with pytest.raises(ValueError):
            AuditSchedule(AuditKind.PERIODIC, audits_per_year=1.0, coverage=0.0)
        with pytest.raises(ValueError):
            AuditSchedule(AuditKind.PERIODIC, audits_per_year=-1.0)


class TestInversions:
    def test_audits_needed_for_mdl_round_trip(self):
        rate = audits_needed_for_mdl(1460.0)
        assert rate == pytest.approx(3.0)
        assert detection_latency(periodic_schedule(rate)) == pytest.approx(1460.0)

    def test_audits_needed_poisson(self):
        rate = audits_needed_for_mdl(2920.0, kind=AuditKind.POISSON)
        assert rate == pytest.approx(3.0)

    def test_audits_needed_rejects_none_kind(self):
        with pytest.raises(ValueError):
            audits_needed_for_mdl(100.0, kind=AuditKind.NONE)

    def test_audits_needed_rejects_bad_target(self):
        with pytest.raises(ValueError):
            audits_needed_for_mdl(0.0)

    def test_audits_needed_for_target_mttdl(self):
        target_years = 3000.0
        rate = audits_needed_for_target_mttdl(model(), target_years)
        assert rate is not None and rate > 0
        from repro.core.mttdl import mirrored_mttdl

        achieved = mirrored_mttdl(
            model().with_detection_time(detection_latency(periodic_schedule(rate)))
        )
        assert achieved >= target_years * 8760.0 * 0.99

    def test_unreachable_target_returns_none(self):
        assert audits_needed_for_target_mttdl(model(), 1e12) is None

    def test_already_met_target_needs_no_audits(self):
        assert audits_needed_for_target_mttdl(model(), 1.0) == 0.0


class TestOnlineOffline:
    def test_induced_fault_rate(self):
        assert audit_induced_fault_rate(OFFLINE_TAPE, 4.0) == pytest.approx(0.04)
        assert audit_induced_fault_rate(ONLINE_DISK, 52.0) == 0.0

    def test_bandwidth_fraction(self):
        fraction = audit_bandwidth_fraction(
            capacity_gb=146.0, bandwidth_mb_s=300.0, audits_per_year=52.0
        )
        assert 0.0 < fraction < 0.01

    def test_bandwidth_fraction_validation(self):
        with pytest.raises(ValueError):
            audit_bandwidth_fraction(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            audit_bandwidth_fraction(10.0, 10.0, -1.0)

    def test_online_beats_offline_at_affordable_rates(self):
        comparison = compare_online_offline(
            ONLINE_DISK, OFFLINE_TAPE,
            online_audits_per_year=12.0, offline_audits_per_year=1.0,
        )
        assert comparison["online"].mttdl_years > 5 * comparison["offline"].mttdl_years

    def test_offline_auditing_costs_more_per_pass(self):
        comparison = compare_online_offline(
            ONLINE_DISK, OFFLINE_TAPE,
            online_audits_per_year=12.0, offline_audits_per_year=12.0,
        )
        assert (
            comparison["offline"].annual_audit_cost
            > 10 * comparison["online"].annual_audit_cost
        )

    def test_offline_audits_consume_staff_hours(self):
        result = evaluate_media_audit(OFFLINE_TAPE, audits_per_year=4.0)
        assert result.staff_hours_per_year > 0
        assert evaluate_media_audit(ONLINE_DISK, 4.0).staff_hours_per_year == 0

    def test_handling_faults_fold_into_visible_rate(self):
        gentle = evaluate_media_audit(OFFLINE_TAPE, audits_per_year=1.0)
        rough = evaluate_media_audit(OFFLINE_TAPE, audits_per_year=200.0)
        assert rough.audit_induced_faults_per_year > gentle.audit_induced_faults_per_year

    def test_max_affordable_audit_rate(self):
        assert max_affordable_audit_rate(OFFLINE_TAPE, 1200.0) == pytest.approx(10.0)
        assert max_affordable_audit_rate(ONLINE_DISK, 0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            evaluate_media_audit(ONLINE_DISK, audits_per_year=-1.0)
        with pytest.raises(ValueError):
            audit_induced_fault_rate(ONLINE_DISK, -1.0)
        with pytest.raises(ValueError):
            max_affordable_audit_rate(ONLINE_DISK, -1.0)


class TestPlanning:
    def test_plan_spends_budget_evenly(self):
        plan = plan_audits(
            model(), replicas=2, annual_budget=120.0, cost_per_audit=10.0
        )
        assert plan.audits_per_replica_year == pytest.approx(6.0)
        assert plan.annual_cost == pytest.approx(120.0)

    def test_zero_budget_means_no_auditing(self):
        plan = plan_audits(model(), 2, annual_budget=0.0, cost_per_audit=10.0)
        assert plan.audits_per_replica_year == 0.0
        assert plan.mdl_hours == model().mean_time_to_latent

    def test_bigger_budget_better_mttdl(self):
        plans = budget_sweep(model(), [0.0, 100.0, 1000.0], cost_per_audit=10.0)
        mttdls = [plan.mttdl_years for plan in plans]
        assert mttdls == sorted(mttdls)

    def test_cross_replica_audit_wins_when_coverage_matters(self):
        # Internal audits are cheap but miss 40% of faults; cross-replica
        # audits cost 4x more but catch everything.  With a generous
        # budget the coverage advantage dominates.
        comparison = internal_vs_cross_replica_audit(
            model(),
            annual_budget=10000.0,
            internal_cost_per_audit=10.0,
            cross_cost_per_audit=40.0,
            internal_coverage=0.6,
            cross_coverage=1.0,
        )
        assert comparison["cross_replica"].mttdl_years > 0
        assert comparison["internal"].mttdl_years > 0

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            plan_audits(model(), 0, 100.0, 10.0)
        with pytest.raises(ValueError):
            plan_audits(model(), 2, -1.0, 10.0)
        with pytest.raises(ValueError):
            plan_audits(model(), 2, 100.0, 0.0)
