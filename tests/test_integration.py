"""Integration tests: workflows that cross subpackage boundaries.

These exercise the same paths as the examples and benchmarks: threat
profiles feeding the analytic model, placement feeding the correlation
factor, media specs feeding audit economics, and the three evaluation
methods (closed form, CTMC, Monte-Carlo) agreeing on a shared parameter
set.
"""

import pytest

from repro.analysis.compare import compare_models
from repro.analysis.report import scenario_experiment_report
from repro.analysis.sweep import sweep_audit_rate
from repro.audit.online_offline import compare_online_offline
from repro.audit.policies import audits_needed_for_target_mttdl
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.scenarios import cheetah_scrubbed_scenario
from repro.core.strategies import Strategy, evaluate_all_strategies
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import mirrored_mttdl_markov
from repro.simulation.monte_carlo import estimate_mttdl
from repro.storage.drives import BARRACUDA_ST3200822A
from repro.storage.media import OFFLINE_TAPE, ONLINE_DISK, fault_model_for_media
from repro.storage.site import assess_independence, diversified_placement, single_site_placement
from repro.threats.correlation_sources import correlation_pressure
from repro.threats.taxonomy import all_threat_profiles, combined_fault_model


class TestThreatsToModelPipeline:
    def test_threat_registry_produces_usable_model(self):
        model = combined_fault_model()
        mttdl = mirrored_mttdl(model)
        assert 0 < mttdl < float("inf")
        # The full end-to-end threat mix is brutal: a mirrored pair with a
        # shared administrative/organisational fate loses data within a
        # handful of years, so the 50-year loss probability saturates.
        assert 0 < probability_of_loss(mttdl, 50 * HOURS_PER_YEAR) <= 1

    def test_threat_alpha_consistent_between_views(self):
        pressure = correlation_pressure(all_threat_profiles())
        model = combined_fault_model()
        assert model.correlation_factor == pytest.approx(pressure.implied_alpha)

    def test_end_to_end_threats_much_worse_than_media_only(self):
        media_only = cheetah_scrubbed_scenario().model
        end_to_end = combined_fault_model()
        assert mirrored_mttdl(end_to_end) < mirrored_mttdl(media_only)


class TestPlacementToModelPipeline:
    def test_placement_alpha_feeds_mttdl(self):
        scenario = cheetah_scrubbed_scenario()
        colocated_alpha = assess_independence(single_site_placement(2)).effective_alpha
        diversified_alpha = assess_independence(diversified_placement(2)).effective_alpha
        colocated = mirrored_mttdl(scenario.model.with_correlation(colocated_alpha))
        diversified = mirrored_mttdl(scenario.model.with_correlation(diversified_alpha))
        assert diversified > 10 * colocated


class TestDriveToAuditPipeline:
    def test_drive_spec_drives_a_planning_loop(self):
        # Build a model from the consumer drive, then find the audit rate
        # that achieves a 1000-year MTTDL, and confirm it does.
        model = FaultModel(
            mean_time_to_visible=BARRACUDA_ST3200822A.mttf_hours,
            mean_time_to_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,
            mean_repair_visible=BARRACUDA_ST3200822A.full_read_hours(),
            mean_repair_latent=BARRACUDA_ST3200822A.full_read_hours(),
            mean_detect_latent=BARRACUDA_ST3200822A.mttf_hours / 5.0,
            correlation_factor=1.0,
        )
        rate = audits_needed_for_target_mttdl(model, 1000.0)
        assert rate is not None
        achieved = sweep_audit_rate(model, [rate]).metric("mttdl_years")[0]
        assert achieved >= 1000.0 * 0.99

    def test_media_catalog_feeds_audit_comparison(self):
        comparison = compare_online_offline(ONLINE_DISK, OFFLINE_TAPE, 12.0, 1.0)
        disk_model = fault_model_for_media(ONLINE_DISK, 12.0)
        assert comparison["online"].mttdl_years == pytest.approx(
            mirrored_mttdl(disk_model) / HOURS_PER_YEAR
        )


class TestStrategyAndScenarioPipeline:
    def test_strategy_evaluation_consistent_with_direct_model_edits(self):
        model = cheetah_scrubbed_scenario().model.with_correlation(0.5)
        outcomes = evaluate_all_strategies(model, factor=2.0)
        direct = mirrored_mttdl(model.with_detection_time(model.mean_detect_latent / 2))
        assert outcomes[Strategy.REDUCE_MDL].improved_mttdl_hours == pytest.approx(direct)

    def test_experiment_report_round_trip(self):
        report = scenario_experiment_report()
        rendered = report.render()
        assert "E1" in rendered and "E4" in rendered
        assert report.all_shapes_hold()


class TestThreeWayValidation:
    """The closed form, the chain, and the simulator on one model."""

    MODEL = FaultModel(
        mean_time_to_visible=2000.0,
        mean_time_to_latent=400.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=20.0,
        correlation_factor=1.0,
    )

    def test_markov_and_monte_carlo_agree(self):
        markov = mirrored_mttdl_markov(self.MODEL)
        estimate = estimate_mttdl(self.MODEL, trials=150, seed=7, max_time=3e6)
        assert estimate.censored == 0
        assert estimate.mean == pytest.approx(markov, rel=0.3)

    def test_closed_form_within_documented_factor(self):
        comparison = compare_models(self.MODEL)
        assert comparison.max_discrepancy_factor() < 4.0

    def test_correlation_ordering_consistent_across_methods(self):
        correlated = self.MODEL.with_correlation(0.1)
        analytic_ratio = mirrored_mttdl(correlated) / mirrored_mttdl(self.MODEL)
        markov_ratio = mirrored_mttdl_markov(correlated) / mirrored_mttdl_markov(
            self.MODEL
        )
        mc_base = estimate_mttdl(self.MODEL, trials=80, seed=9, max_time=3e6).mean
        mc_corr = estimate_mttdl(correlated, trials=80, seed=9, max_time=3e6).mean
        assert analytic_ratio < 1.0
        assert markov_ratio < 1.0
        assert mc_corr < mc_base
