"""Cross-layer properties of the (n, k) redundancy generalisation.

Two pillars:

* **Replication is bit-for-bit preserved.**  A scheme ``(n, 1)`` is
  r-way replication, and every engine — analytic, markov, batch, event,
  importance sampling, splitting, fleet — must return *exactly* the
  numbers the pre-scheme code returned for ``replicas=n`` at the same
  seed: the scheme threads through as a loss threshold without touching
  random-stream consumption, and replication scenarios serialise (and
  hash) exactly as before.
* **True erasure codes are exact.**  For a pure-visible-fault model the
  batch Monte-Carlo loss probability must sit inside its own confidence
  interval around the generalised birth-death chain's transient answer
  at multiple (n, k) operating points.
"""

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.core.redundancy import ErasureCode, RedundancyScheme, Replication
from repro.fleet import FleetTimeline, stationary_timeline
from repro.fleet.population import simulate_fleet_chunk
from repro.markov import build_scheme_chain, loss_probability_over_time
from repro.simulation.batch import simulate_batch
from repro.study import EstimatorPolicy, Scenario, SystemSpec, run

# Fast, loss-prone operating point so plain Monte Carlo sees events.
MODEL = FaultModel(
    mean_time_to_visible=5e4,
    mean_time_to_latent=5e4,
    mean_repair_visible=200.0,
    mean_repair_latent=200.0,
    mean_detect_latent=500.0,
    correlation_factor=1.0,
)

POINT_ENGINES = ("analytic", "batch", "event", "is", "auto")


def _loss(system: SystemSpec, engine: str) -> object:
    return run(
        Scenario(
            question="loss_probability",
            system=system,
            mission_years=10.0,
            policy=EstimatorPolicy(engine=engine, trials=300, seed=11),
        )
    )


class TestReplicationBitForBit:
    @pytest.mark.parametrize("engine", POINT_ENGINES)
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_n1_scheme_reproduces_replication(self, engine, n):
        plain = _loss(SystemSpec(model=MODEL, replicas=n), engine)
        scheme = _loss(SystemSpec(model=MODEL, scheme=Replication(n)), engine)
        assert scheme.value == plain.value
        assert scheme.std_error == plain.std_error
        assert scheme.ci_low == plain.ci_low
        assert scheme.ci_high == plain.ci_high

    def test_splitting_engine_bit_for_bit(self):
        plain = _loss(SystemSpec(model=MODEL, replicas=2), "splitting")
        scheme = _loss(
            SystemSpec(model=MODEL, scheme=Replication(2)), "splitting"
        )
        assert scheme.value == plain.value
        assert scheme.std_error == plain.std_error

    def test_markov_engine_bit_for_bit(self):
        def mttdl(system):
            return run(
                Scenario(
                    question="mttdl",
                    system=system,
                    policy=EstimatorPolicy(engine="markov"),
                )
            )

        plain = mttdl(SystemSpec(model=MODEL, replicas=2))
        scheme = mttdl(SystemSpec(model=MODEL, scheme=Replication(2)))
        assert scheme.value == plain.value

    @pytest.mark.parametrize("n", [2, 3])
    def test_fleet_chunk_bit_for_bit(self, n):
        plain = simulate_fleet_chunk(
            stationary_timeline(MODEL, years=5.0, replicas=n),
            members=200,
            seed=5,
        )
        scheme = simulate_fleet_chunk(
            stationary_timeline(MODEL, years=5.0, scheme=Replication(n)),
            members=200,
            seed=5,
        )
        assert np.array_equal(plain.lost, scheme.lost)
        assert np.array_equal(plain.loss_time, scheme.loss_time)
        assert plain.repairs == scheme.repairs

    def test_batch_kernel_bit_for_bit(self):
        horizon = 5.0 * 8760.0
        plain = simulate_batch(
            MODEL, trials=500, horizon=horizon, seed=9, replicas=3
        )
        scheme = simulate_batch(
            MODEL,
            trials=500,
            horizon=horizon,
            seed=9,
            replicas=3,
            scheme=Replication(3),
        )
        assert np.array_equal(plain.lost, scheme.lost)
        assert np.array_equal(plain.end_time, scheme.end_time)


class TestSerializationStability:
    """Replication payloads (and hence hashes/seeds) are unchanged."""

    def test_system_spec_dict_has_no_scheme_key_by_default(self):
        payload = SystemSpec(model=MODEL, replicas=3).as_dict()
        assert "scheme" not in payload

    def test_scenario_hash_unchanged_without_scheme(self):
        base = Scenario(
            question="loss_probability",
            system=SystemSpec(model=MODEL, replicas=3),
        )
        # (n, 1) carries the scheme explicitly, so it hashes differently
        # — but the plain-replication hash has no scheme key at all.
        assert "scheme" not in base.as_dict()["system"]
        withscheme = Scenario(
            question="loss_probability",
            system=SystemSpec(model=MODEL, scheme=Replication(3)),
        )
        assert withscheme.content_hash() != base.content_hash()

    def test_timeline_dict_roundtrip_with_scheme(self):
        timeline = stationary_timeline(
            MODEL, years=5.0, scheme=ErasureCode(6, 4)
        )
        assert timeline.replicas == 6
        rebuilt = FleetTimeline.from_dict(timeline.as_dict())
        assert rebuilt.scheme == ErasureCode(6, 4)
        assert rebuilt.content_hash() == timeline.content_hash()

    def test_timeline_dict_has_no_scheme_key_by_default(self):
        timeline = stationary_timeline(MODEL, years=5.0, replicas=2)
        assert "scheme" not in timeline.as_dict()

    def test_system_spec_roundtrip_with_scheme(self):
        spec = SystemSpec(model=MODEL, scheme=ErasureCode(6, 4))
        assert spec.replicas == 6
        rebuilt = SystemSpec.from_dict(spec.as_dict())
        assert rebuilt.scheme == ErasureCode(6, 4)
        assert rebuilt.replicas == 6


class TestErasureAgainstMarkov:
    """Batch MC must cover the exact chain at true-erasure points."""

    # Pure-visible model: latent faults pushed beyond the horizon so the
    # birth-death chain describes the simulated physics exactly.
    MV = 4e4
    MR = 500.0
    PURE = FaultModel(
        mean_time_to_visible=MV,
        mean_time_to_latent=1e12,
        mean_repair_visible=MR,
        mean_repair_latent=MR,
        mean_detect_latent=1.0,
        correlation_factor=1.0,
    )
    MISSION = 20.0 * 8760.0

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 4)])
    def test_mc_ci_covers_markov_exact(self, n, k):
        scheme = ErasureCode(n, k)
        # The batch kernel repairs faulty fragments independently, so
        # the matching chain uses parallel repair.
        chain = build_scheme_chain(
            self.MV, self.MR, scheme, parallel_repair=True
        )
        exact = loss_probability_over_time(chain, self.MISSION)
        result = simulate_batch(
            self.PURE,
            trials=20000,
            horizon=self.MISSION,
            seed=3,
            replicas=n,
            scheme=scheme,
        )
        mean = float(result.lost.mean())
        half = 3.0 * np.sqrt(mean * (1.0 - mean) / result.lost.size)
        assert mean - half <= exact <= mean + half

    def test_erasure_strictly_less_reliable_than_same_n_replication(self):
        scheme = ErasureCode(4, 2)
        loss_ec = simulate_batch(
            self.PURE,
            trials=5000,
            horizon=self.MISSION,
            seed=3,
            replicas=4,
            scheme=scheme,
        ).lost.mean()
        loss_rep = simulate_batch(
            self.PURE, trials=5000, horizon=self.MISSION, seed=3, replicas=4
        ).lost.mean()
        assert loss_ec > loss_rep

    def test_study_analytic_engine_answers_erasure(self):
        result = run(
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL, scheme=ErasureCode(6, 4)),
                policy=EstimatorPolicy(engine="analytic"),
            )
        )
        assert result.value > 0
        assert result.details["convention"] == "simulator"

    def test_markov_engine_rejects_erasure(self):
        with pytest.raises(ValueError, match="mirrored pairs"):
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL, scheme=ErasureCode(2, 2)),
                policy=EstimatorPolicy(engine="markov"),
            )
