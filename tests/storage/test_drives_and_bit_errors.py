"""Tests for drive specifications and the Section 6.1 bit-error arithmetic."""

import pytest

from repro.storage.bit_errors import (
    bit_error_comparison,
    bits_transferred,
    consumer_replicas_affordable,
    expected_bit_errors,
)
from repro.storage.drives import (
    BARRACUDA_ST3200822A,
    CHEETAH_15K4,
    DriveSpec,
    drive_catalog,
    lookup_drive,
    scale_drive,
)


class TestDriveSpecs:
    def test_paper_quoted_numbers_encoded(self):
        assert BARRACUDA_ST3200822A.capacity_gb == 200.0
        assert BARRACUDA_ST3200822A.bit_error_rate == 1e-14
        assert BARRACUDA_ST3200822A.in_service_fault_probability == 0.07
        assert BARRACUDA_ST3200822A.price_per_gb == 0.57
        assert CHEETAH_15K4.capacity_gb == 146.0
        assert CHEETAH_15K4.bit_error_rate == 1e-15
        assert CHEETAH_15K4.in_service_fault_probability == 0.03
        assert CHEETAH_15K4.price_per_gb == 8.20
        assert CHEETAH_15K4.mttf_hours == 1.4e6

    def test_cost_ratio_is_about_fourteen(self):
        assert CHEETAH_15K4.cost_ratio_to(BARRACUDA_ST3200822A) == pytest.approx(
            14.4, abs=0.2
        )

    def test_cheetah_full_read_is_about_eight_minutes_at_interface_rate(self):
        # 146 GB at the quoted 300 MB/s.  The paper rounds this up to a
        # 20-minute repair; the raw transfer is ~8 minutes.
        assert CHEETAH_15K4.full_read_hours() * 60 == pytest.approx(8.1, abs=0.2)

    def test_implied_mttf_from_fault_probability(self):
        implied = CHEETAH_15K4.implied_mttf_from_fault_probability()
        # 3% over 5 years implies an MTTF near 1.4e6 hours, consistent
        # with the datasheet figure the paper uses.
        assert implied == pytest.approx(1.44e6, rel=0.02)

    def test_annualised_failure_rate(self):
        assert CHEETAH_15K4.annualised_failure_rate() == pytest.approx(
            8760.0 / 1.4e6
        )

    def test_capacity_conversions(self):
        assert BARRACUDA_ST3200822A.capacity_bytes == 200e9
        assert BARRACUDA_ST3200822A.capacity_bits == 1.6e12

    def test_price_of_whole_drive(self):
        assert BARRACUDA_ST3200822A.price == pytest.approx(114.0)

    def test_catalog_and_lookup(self):
        catalog = drive_catalog()
        assert "barracuda" in catalog and "cheetah" in catalog
        assert lookup_drive("cheetah") is CHEETAH_15K4
        with pytest.raises(KeyError):
            lookup_drive("nonexistent")

    def test_scale_drive(self):
        scaled = scale_drive(BARRACUDA_ST3200822A, reliability_factor=2.0)
        assert scaled.mttf_hours == pytest.approx(2 * BARRACUDA_ST3200822A.mttf_hours)
        assert scaled.bit_error_rate == pytest.approx(
            BARRACUDA_ST3200822A.bit_error_rate / 2.0
        )

    def test_scale_drive_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            scale_drive(BARRACUDA_ST3200822A, price_factor=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriveSpec("bad", 0.0, 50.0, 1e-14, 1e6, 5.0, 0.05, 1.0)
        with pytest.raises(ValueError):
            DriveSpec("bad", 100.0, 50.0, 2.0, 1e6, 5.0, 0.05, 1.0)
        with pytest.raises(ValueError):
            DriveSpec("bad", 100.0, 50.0, 1e-14, 1e6, 5.0, 1.5, 1.0)


class TestBitsTransferred:
    def test_simple_case(self):
        # 1 MB/s for one hour at full duty = 3600 MB = 2.88e10 bits.
        assert bits_transferred(1.0, 1.0, 1.0) == pytest.approx(2.88e10)

    def test_idle_drive_transfers_nothing(self):
        assert bits_transferred(100.0, 0.0, 1000.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bits_transferred(0.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            bits_transferred(1.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            bits_transferred(1.0, 0.5, -1.0)


class TestSection61Comparison:
    def test_barracuda_suffers_about_eight_bit_errors(self):
        result = expected_bit_errors(BARRACUDA_ST3200822A)
        # Paper: "about 8"; the sustained-rate arithmetic gives ~7.3.
        assert 6.0 <= result.expected_bit_errors <= 9.0

    def test_cheetah_suffers_single_digit_bit_errors(self):
        result = expected_bit_errors(CHEETAH_15K4)
        # Paper: "about 6"; with the paper's quoted 300 MB/s this comes
        # to ~3.8.  Same order, same conclusion.
        assert 2.0 <= result.expected_bit_errors <= 7.0

    def test_enterprise_premium_buys_modest_error_reduction(self):
        comparison = bit_error_comparison(BARRACUDA_ST3200822A, CHEETAH_15K4)
        assert comparison["cost_per_gb_ratio"] > 10.0
        assert comparison["bit_error_ratio"] < 4.0
        assert comparison["fault_probability_ratio"] < 4.0

    def test_consumer_replicas_affordable(self):
        replicas = consumer_replicas_affordable(
            BARRACUDA_ST3200822A, CHEETAH_15K4, dataset_gb=1000.0
        )
        # The enterprise budget buys about 14 consumer replicas.
        assert replicas == pytest.approx(14.4, abs=0.2)

    def test_full_drive_reads_consistent_with_bits(self):
        result = expected_bit_errors(BARRACUDA_ST3200822A)
        assert result.full_drive_reads == pytest.approx(
            result.bits_transferred / BARRACUDA_ST3200822A.capacity_bits
        )

    def test_higher_idle_fraction_fewer_errors(self):
        busy = expected_bit_errors(BARRACUDA_ST3200822A, idle_fraction=0.5)
        idle = expected_bit_errors(BARRACUDA_ST3200822A, idle_fraction=0.99)
        assert busy.expected_bit_errors > idle.expected_bit_errors

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_bit_errors(BARRACUDA_ST3200822A, idle_fraction=1.5)
        with pytest.raises(ValueError):
            expected_bit_errors(BARRACUDA_ST3200822A, service_years=0.0)
        with pytest.raises(ValueError):
            consumer_replicas_affordable(BARRACUDA_ST3200822A, CHEETAH_15K4, 0.0)
