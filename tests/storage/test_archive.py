"""Tests for the collection-level archive model."""

import pytest

from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.storage.archive import (
    ArchiveCollection,
    access_based_detection_is_sufficient,
    achievable_detection_latency,
    audit_pass_hours,
    audit_rate_for_loss_budget,
    collection_reliability,
    on_access_detection_latency,
    required_audit_bandwidth,
)


def photo_collection(**overrides):
    base = dict(
        object_count=10_000_000,
        mean_object_size_mb=2.0,
        accesses_per_object_year=0.05,
        replicas=2,
    )
    base.update(overrides)
    return ArchiveCollection(**base)


def object_model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestCollection:
    def test_total_size(self):
        assert photo_collection().total_size_tb == pytest.approx(20.0)

    def test_mean_access_interval(self):
        collection = photo_collection(accesses_per_object_year=0.05)
        assert collection.mean_access_interval_hours == pytest.approx(20 * 8760.0)

    def test_zero_access_rate_is_never_accessed(self):
        assert photo_collection(accesses_per_object_year=0.0).mean_access_interval_hours == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            photo_collection(object_count=0)
        with pytest.raises(ValueError):
            photo_collection(mean_object_size_mb=0.0)
        with pytest.raises(ValueError):
            photo_collection(accesses_per_object_year=-1.0)
        with pytest.raises(ValueError):
            photo_collection(replicas=0)


class TestCollectionReliability:
    def test_expected_losses_scale_with_object_count(self):
        small = collection_reliability(
            photo_collection(object_count=1000), object_model()
        )
        large = collection_reliability(
            photo_collection(object_count=1_000_000), object_model()
        )
        assert large.expected_objects_lost == pytest.approx(
            1000 * small.expected_objects_lost, rel=1e-6
        )

    def test_scrubbing_reduces_expected_losses(self):
        scrubbed = collection_reliability(photo_collection(), object_model())
        unscrubbed = collection_reliability(
            photo_collection(), object_model(mean_detect_latent=2.8e5)
        )
        assert scrubbed.expected_objects_lost < unscrubbed.expected_objects_lost / 10

    def test_survival_probability_below_one_for_large_collections(self):
        result = collection_reliability(photo_collection(), object_model())
        assert 0.0 <= result.collection_survival_probability < 1.0

    def test_certain_per_object_loss_gives_zero_survival(self):
        lossy = object_model(
            mean_time_to_visible=10.0,
            mean_time_to_latent=10.0,
            mean_detect_latent=10.0,
            mean_repair_visible=10.0,
            mean_repair_latent=10.0,
        )
        result = collection_reliability(photo_collection(object_count=100), lossy)
        assert result.collection_survival_probability == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_mission(self):
        with pytest.raises(ValueError):
            collection_reliability(photo_collection(), object_model(), mission_years=0.0)


class TestAuditThroughput:
    def test_audit_pass_hours(self):
        collection = photo_collection(object_count=1_000_000, mean_object_size_mb=1.0)
        # 1 TB at 100 MB/s is about 2.8 hours.
        assert audit_pass_hours(collection, 100.0) == pytest.approx(2.78, rel=0.01)

    def test_detection_latency_is_half_a_pass(self):
        collection = photo_collection()
        assert achievable_detection_latency(collection, 50.0) == pytest.approx(
            audit_pass_hours(collection, 50.0) / 2.0
        )

    def test_required_bandwidth_round_trip(self):
        collection = photo_collection()
        bandwidth = required_audit_bandwidth(collection, target_mdl_hours=1460.0)
        assert achievable_detection_latency(collection, bandwidth) == pytest.approx(
            1460.0, rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            audit_pass_hours(photo_collection(), 0.0)
        with pytest.raises(ValueError):
            required_audit_bandwidth(photo_collection(), 0.0)


class TestAccessBasedDetection:
    def test_rare_access_is_not_sufficient(self):
        # The paper's point: archival objects are accessed too rarely for
        # access-triggered checking to bound losses.
        assert not access_based_detection_is_sufficient(
            photo_collection(accesses_per_object_year=0.05), object_model()
        )

    def test_hot_data_can_get_away_with_it(self):
        hot = photo_collection(accesses_per_object_year=1000.0, object_count=10_000)
        assert access_based_detection_is_sufficient(hot, object_model())

    def test_validation(self):
        with pytest.raises(ValueError):
            access_based_detection_is_sufficient(
                photo_collection(), object_model(), acceptable_loss_fraction=0.0
            )


class TestAuditRateForLossBudget:
    def test_returned_rate_meets_budget(self):
        collection = photo_collection(object_count=100_000)
        rate = audit_rate_for_loss_budget(
            collection, object_model(), acceptable_loss_fraction=1e-4
        )
        assert rate is not None
        mdl = HOURS_PER_YEAR / rate / 2.0 if rate > 0 else object_model().mean_time_to_latent
        adjusted = object_model().with_detection_time(mdl)
        result = collection_reliability(collection, adjusted)
        assert result.expected_objects_lost / collection.object_count <= 1e-4 * 1.01

    def test_impossible_budget_returns_none(self):
        # Even daily audits cannot push the per-object loss probability to
        # ~zero for an astronomically strict budget.
        collection = photo_collection()
        assert (
            audit_rate_for_loss_budget(
                collection, object_model(), acceptable_loss_fraction=1e-12
            )
            is None
        )

    def test_loose_budget_needs_no_audits(self):
        collection = photo_collection(object_count=100)
        rate = audit_rate_for_loss_budget(
            collection, object_model(), acceptable_loss_fraction=0.9
        )
        assert rate == 0.0
