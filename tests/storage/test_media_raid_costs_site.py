"""Tests for media classes, RAID baselines, the cost model, and placement."""

import pytest

from repro.core.mttdl import mirrored_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.storage.costs import (
    CostModel,
    compare_drive_costs,
    cost_model_for_drive,
    cost_model_for_media,
    cost_per_terabyte_year,
    expected_repairs_per_year,
    replication_cost,
)
from repro.storage.drives import BARRACUDA_ST3200822A, CHEETAH_15K4
from repro.storage.media import (
    OFFLINE_TAPE,
    ONLINE_DISK,
    OPTICAL_CDROM,
    MediaSpec,
    fault_model_for_media,
    media_catalog,
)
from repro.storage.raid import (
    RaidConfiguration,
    RaidLevel,
    raid0_mttdl,
    raid1_mttdl,
    raid5_mttdl,
    raid6_mttdl,
    raid_mttdl,
    raid_with_latent_faults_mttdl,
)
from repro.storage.site import (
    assess_independence,
    diversified_placement,
    effective_alpha,
    single_site_placement,
)


class TestMedia:
    def test_catalog_contents(self):
        catalog = media_catalog()
        assert set(catalog) == {"disk", "tape", "optical"}

    def test_disk_is_online(self):
        assert ONLINE_DISK.is_online
        assert not OFFLINE_TAPE.is_online

    def test_offline_audit_includes_access_latency(self):
        assert OFFLINE_TAPE.effective_audit_hours() > OFFLINE_TAPE.audit_hours
        assert ONLINE_DISK.effective_audit_hours() == ONLINE_DISK.audit_hours

    def test_online_media_support_far_more_audits(self):
        assert ONLINE_DISK.max_audits_per_year() > 50 * OFFLINE_TAPE.max_audits_per_year()

    def test_annual_audit_cost_scales_linearly(self):
        assert OFFLINE_TAPE.annual_audit_cost(4.0) == pytest.approx(480.0)

    def test_fault_model_for_media_uses_half_audit_interval(self):
        model = fault_model_for_media(ONLINE_DISK, audits_per_year=3.0)
        assert model.mean_detect_latent == pytest.approx(1460.0)

    def test_fault_model_zero_audits_uses_latent_mean(self):
        model = fault_model_for_media(OFFLINE_TAPE, audits_per_year=0.0)
        assert model.mean_detect_latent == OFFLINE_TAPE.mean_time_to_latent

    def test_disk_beats_tape_at_typical_audit_rates(self):
        # Disk audited monthly vs tape audited yearly: the paper's
        # disk-over-tape conclusion.
        disk = mirrored_mttdl(fault_model_for_media(ONLINE_DISK, 12.0))
        tape = mirrored_mttdl(fault_model_for_media(OFFLINE_TAPE, 1.0))
        assert disk > 5 * tape

    def test_optical_media_worst_latent_mean_time(self):
        assert OPTICAL_CDROM.mean_time_to_latent < OFFLINE_TAPE.mean_time_to_latent
        assert OPTICAL_CDROM.mean_time_to_latent < ONLINE_DISK.mean_time_to_latent

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaSpec(
                "bad", ONLINE_DISK.media_class, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0
            )
        with pytest.raises(ValueError):
            fault_model_for_media(ONLINE_DISK, audits_per_year=-1.0)


class TestRaid:
    MTTF = 1.0e6
    MTTR = 24.0

    def test_raid0_first_fault_loses_data(self):
        assert raid0_mttdl(self.MTTF, 8) == pytest.approx(self.MTTF / 8)

    def test_raid1_two_way_closed_form(self):
        assert raid1_mttdl(self.MTTF, self.MTTR, 2) == pytest.approx(
            self.MTTF ** 2 / (2 * self.MTTR)
        )

    def test_raid5_closed_form(self):
        disks = 8
        assert raid5_mttdl(self.MTTF, self.MTTR, disks) == pytest.approx(
            self.MTTF ** 2 / (disks * (disks - 1) * self.MTTR)
        )

    def test_raid6_beats_raid5(self):
        assert raid6_mttdl(self.MTTF, self.MTTR, 8) > 100 * raid5_mttdl(
            self.MTTF, self.MTTR, 8
        )

    def test_dispatch(self):
        assert raid_mttdl(RaidLevel.RAID5, self.MTTF, self.MTTR, 8) == raid5_mttdl(
            self.MTTF, self.MTTR, 8
        )

    def test_usable_fraction(self):
        assert RaidConfiguration(RaidLevel.RAID5, 8, self.MTTF, self.MTTR).usable_fraction() == pytest.approx(7 / 8)
        assert RaidConfiguration(RaidLevel.RAID6, 8, self.MTTF, self.MTTR).usable_fraction() == pytest.approx(6 / 8)
        assert RaidConfiguration(RaidLevel.RAID1, 2, self.MTTF, self.MTTR).usable_fraction() == pytest.approx(0.5)

    def test_latent_faults_collapse_raid5_reliability(self):
        clean = raid5_mttdl(self.MTTF, self.MTTR, 8)
        with_latent = raid_with_latent_faults_mttdl(
            self.MTTF, self.MTTR, 8, latent_mttf=self.MTTF / 5.0
        )
        assert with_latent < clean / 10

    def test_minimum_disk_counts_enforced(self):
        with pytest.raises(ValueError):
            raid5_mttdl(self.MTTF, self.MTTR, 2)
        with pytest.raises(ValueError):
            raid6_mttdl(self.MTTF, self.MTTR, 3)
        with pytest.raises(ValueError):
            raid1_mttdl(self.MTTF, self.MTTR, 1)


class TestCosts:
    def cost_model(self):
        return CostModel(
            hardware_cost_per_tb=570.0,
            hardware_lifetime_years=5.0,
            power_cooling_per_tb_year=50.0,
            admin_cost_per_replica_year=500.0,
            site_cost_per_year=1000.0,
            audit_cost_per_pass=1.0,
            repair_cost_per_event=10.0,
        )

    def test_breakdown_total_is_sum_of_parts(self):
        breakdown = replication_cost(
            self.cost_model(), dataset_tb=10.0, replicas=3,
            audits_per_replica_year=12.0, expected_repairs_per_replica_year=0.1,
        )
        assert breakdown.total_per_year == pytest.approx(
            sum(value for key, value in breakdown.as_dict().items() if key != "total")
        )

    def test_more_replicas_cost_more(self):
        two = replication_cost(self.cost_model(), 10.0, 2).total_per_year
        four = replication_cost(self.cost_model(), 10.0, 4).total_per_year
        assert four > two

    def test_single_site_avoids_site_cost(self):
        spread = replication_cost(self.cost_model(), 10.0, 3, independent_sites=3)
        colocated = replication_cost(self.cost_model(), 10.0, 3, independent_sites=1)
        assert spread.sites_per_year > colocated.sites_per_year

    def test_cost_per_terabyte_year(self):
        breakdown = replication_cost(self.cost_model(), 10.0, 2)
        assert cost_per_terabyte_year(breakdown, 10.0) == pytest.approx(
            breakdown.total_per_year / 10.0
        )

    def test_enterprise_design_much_more_expensive(self):
        comparison = compare_drive_costs(
            BARRACUDA_ST3200822A, CHEETAH_15K4, dataset_tb=10.0,
            consumer_replicas=4, enterprise_replicas=2,
        )
        assert comparison["cost_ratio_enterprise_to_consumer"] > 1.5

    def test_cost_model_for_drive_uses_price(self):
        model = cost_model_for_drive(BARRACUDA_ST3200822A)
        assert model.hardware_cost_per_tb == pytest.approx(570.0)

    def test_cost_model_for_media_offline_has_no_power(self):
        model = cost_model_for_media(OFFLINE_TAPE)
        assert model.power_cooling_per_tb_year == 0.0

    def test_expected_repairs_per_year(self):
        assert expected_repairs_per_year(HOURS_PER_YEAR) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            replication_cost(self.cost_model(), 0.0, 2)
        with pytest.raises(ValueError):
            replication_cost(self.cost_model(), 1.0, 0)
        with pytest.raises(ValueError):
            replication_cost(self.cost_model(), 1.0, 2, independent_sites=3)
        with pytest.raises(ValueError):
            CostModel(hardware_cost_per_tb=-1.0)
        with pytest.raises(ValueError):
            expected_repairs_per_year(0.0)


class TestPlacementIndependence:
    def test_single_site_placement_is_heavily_correlated(self):
        assessment = assess_independence(single_site_placement(3))
        assert assessment.mean_shared_fraction > 0.9
        assert assessment.effective_alpha < 0.01

    def test_diversified_placement_is_independent(self):
        assessment = assess_independence(diversified_placement(3))
        assert assessment.mean_shared_fraction == pytest.approx(0.0)
        assert assessment.effective_alpha == pytest.approx(1.0)

    def test_pairwise_scores_cover_all_pairs(self):
        assessment = assess_independence(diversified_placement(4))
        assert len(assessment.pairwise_scores) == 6

    def test_effective_alpha_monotone_in_sharing(self):
        assert effective_alpha(0.0) > effective_alpha(0.5) > effective_alpha(1.0)

    def test_effective_alpha_bounds(self):
        assert effective_alpha(1.0, alpha_floor=1e-3) == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            effective_alpha(1.5)
        with pytest.raises(ValueError):
            effective_alpha(0.5, alpha_floor=0.0)

    def test_assessment_needs_two_sites(self):
        with pytest.raises(ValueError):
            assess_independence(single_site_placement(1))

    def test_placement_factories_validate(self):
        with pytest.raises(ValueError):
            single_site_placement(0)
        with pytest.raises(ValueError):
            diversified_placement(3, regions=["only-one"])
