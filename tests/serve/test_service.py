"""StudyService: store layer, single-flight, batching, progress events."""

import asyncio

import pytest

from repro.core.parameters import FaultModel
from repro.serve import (
    ResultStore,
    StudyService,
    batchable,
    group_key,
    run_group,
)
from repro.study import EstimatorPolicy, Scenario, SystemSpec, run

MODEL = FaultModel(2500.0, 500.0, 1.0, 1.0, 25.0)


def scenario(mission=0.5, trials=300, seed=3, engine="batch", target=None):
    return Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=mission,
        policy=EstimatorPolicy(
            engine=engine,
            trials=trials,
            seed=seed,
            target_relative_error=target,
        ),
    )


def counters(service):
    return service.telemetry.snapshot().counters


# ---------------------------------------------------------------------------
# batch eligibility + grouped kernel correctness
# ---------------------------------------------------------------------------


def test_batchable_is_narrow():
    assert batchable(scenario())
    assert not batchable(scenario(engine="event"))
    assert not batchable(scenario(engine="auto"))
    assert not batchable(scenario(target=0.05))
    mttdl = Scenario(
        question="mttdl",
        system=SystemSpec(model=MODEL),
        policy=EstimatorPolicy(engine="batch"),
    )
    assert not batchable(mttdl)


def test_group_key_ignores_mission_and_label_only():
    base = scenario()
    assert group_key(scenario(mission=40.0)) == group_key(base)
    labelled = Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=25.0,
        label="renamed",
        policy=base.policy,
    )
    assert group_key(labelled) == group_key(base)
    assert group_key(scenario(seed=9)) != group_key(base)
    assert group_key(scenario(trials=400)) != group_key(base)


def test_run_group_max_mission_member_is_bit_identical_to_solo():
    missions = (5.0, 15.0, 30.0)
    group = [scenario(mission=m) for m in missions]
    results = run_group(group)
    solo = run(scenario(mission=30.0))
    grouped = results[-1]
    assert grouped.value == solo.value
    assert grouped.std_error == solo.std_error
    assert grouped.trials == solo.trials
    assert grouped.losses == solo.losses
    assert grouped.censored == solo.censored
    assert (grouped.ci_low, grouped.ci_high) == (solo.ci_low, solo.ci_high)
    assert grouped.scenario_hash == solo.scenario_hash
    assert grouped.details["batched"]["bit_identical_to_solo"]


def test_run_group_members_are_monotone_and_sane():
    missions = (5.0, 15.0, 30.0)
    results = run_group([scenario(mission=m) for m in missions])
    values = [r.value for r in results]
    # Loss probability cannot decrease with mission length on shared
    # trajectories (each trial's loss time is fixed; longer missions
    # include every shorter mission's losses).
    assert values == sorted(values)
    for result in results:
        assert result.question == "loss_probability"
        assert result.engine == "batch"
        assert result.method == "standard"
        assert 0.0 <= result.value <= 1.0
        assert result.losses + result.censored == result.trials
        assert result.details["batched"]["members"] == 3


def test_run_group_of_one_equals_solo_run():
    s = scenario(mission=12.0)
    (grouped,) = run_group([s])
    solo = run(s)
    assert grouped.value == solo.value
    assert grouped.losses == solo.losses


def test_run_group_rejects_mixed_groups():
    with pytest.raises(ValueError, match="compatibility class"):
        run_group([scenario(), scenario(seed=9)])
    with pytest.raises(ValueError, match="batchable"):
        run_group([scenario(engine="event")])
    assert run_group([]) == []


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------


def test_store_hit_on_resubmission(tmp_path):
    async def main():
        service = StudyService(store=ResultStore(tmp_path))
        first = await service.submit(scenario())
        second = await service.submit(scenario())
        await service.close()
        return first, second, counters(service)

    first, second, stats = asyncio.run(main())
    assert first.served_from == "engine"
    assert second.served_from == "store"
    assert second.result.as_dict() == first.result.as_dict()
    assert stats["serve.engine_runs"] == 1
    assert stats["cache.serve.hit"] == 1
    assert stats["cache.serve.miss"] == 1


def test_single_flight_shares_one_engine_run():
    async def main():
        # No store: every request must resolve via in-flight sharing.
        service = StudyService(batch_window=None)
        s = scenario(engine="auto", trials=400)
        answers = await asyncio.gather(*[service.submit(s) for _ in range(8)])
        await service.close()
        return answers, counters(service)

    answers, stats = asyncio.run(main())
    assert sorted(a.served_from for a in answers) == (
        ["engine"] + ["inflight"] * 7
    )
    assert stats["serve.engine_runs"] == 1
    assert stats["serve.singleflight.shared"] == 7
    payloads = {str(a.result.as_dict()) for a in answers}
    assert len(payloads) == 1


def test_batching_coalesces_compatible_scenarios_into_one_run(tmp_path):
    missions = [4.0, 8.0, 16.0, 32.0]

    async def main():
        service = StudyService(
            store=ResultStore(tmp_path), batch_window=0.05
        )
        answers = await asyncio.gather(
            *[service.submit(scenario(mission=m)) for m in missions]
        )
        await service.close()
        return answers, counters(service)

    answers, stats = asyncio.run(main())
    assert stats["serve.engine_runs"] == 1
    assert stats["serve.batch.flushes"] == 1
    assert stats["serve.batch.members"] == len(missions)
    for answer, mission in zip(answers, missions):
        assert answer.served_from == "engine"
        solo_hash = scenario(mission=mission).content_hash()
        assert answer.result.scenario_hash == solo_hash
    # The batched answers are persisted: resubmission is a store hit.
    async def again():
        service = StudyService(store=ResultStore(tmp_path))
        answer = await service.submit(scenario(mission=16.0))
        await service.close()
        return answer

    assert asyncio.run(again()).served_from == "store"


def test_incompatible_scenarios_do_not_share_a_batch():
    async def main():
        service = StudyService(batch_window=0.05)
        answers = await asyncio.gather(
            service.submit(scenario(mission=10.0, seed=1)),
            service.submit(scenario(mission=10.0, seed=2)),
        )
        await service.close()
        return answers, counters(service)

    answers, stats = asyncio.run(main())
    assert stats["serve.engine_runs"] == 2
    assert answers[0].result.scenario_hash != answers[1].result.scenario_hash


def test_max_batch_flushes_immediately():
    async def main():
        service = StudyService(batch_window=30.0, max_batch=3)
        answers = await asyncio.wait_for(
            asyncio.gather(
                *[service.submit(scenario(mission=m)) for m in (3.0, 6.0, 9.0)]
            ),
            timeout=20.0,
        )
        await service.close()
        return answers, counters(service)

    # With a 30 s window, only the size trigger can flush in time.
    answers, stats = asyncio.run(main())
    assert len(answers) == 3
    assert stats["serve.batch.flushes"] == 1


def test_stale_store_entry_is_refreshed_to_the_tighter_target(tmp_path):
    async def main():
        store = ResultStore(tmp_path)
        service = StudyService(store=store)
        coarse = await service.submit(scenario(trials=200))
        achieved = (
            coarse.result.std_error / coarse.result.value
        )
        # /4 keeps the needed trial count comfortably under the
        # default max_trials cap (64x the base trials).
        tight = scenario(target=achieved / 4, trials=200)
        refreshed = await service.submit(tight)
        hot = await service.submit(tight)
        await service.close()
        return coarse, refreshed, hot, counters(service), achieved

    coarse, refreshed, hot, stats, achieved = asyncio.run(main())
    assert refreshed.served_from == "engine"
    assert refreshed.result.std_error / refreshed.result.value <= achieved / 4
    assert hot.served_from == "store"
    assert stats["cache.serve.stale"] == 1
    assert stats["serve.engine_runs"] == 2


def test_corrupt_store_entry_degrades_to_recompute(tmp_path):
    async def main():
        store = ResultStore(tmp_path)
        service = StudyService(store=store)
        first = await service.submit(scenario())
        for path in tmp_path.glob("*.json"):
            path.write_text("{ torn write", encoding="utf-8")
        second = await service.submit(scenario())
        third = await service.submit(scenario())
        await service.close()
        return first, second, third, counters(service), store

    first, second, third, stats, store = asyncio.run(main())
    assert second.served_from == "engine"  # recomputed, not crashed
    assert third.served_from == "store"  # the recompute repaired the entry
    assert stats["cache.serve.error"] == 1
    assert store.errors == 1
    assert second.result.value == first.result.value


def test_progress_stream_and_telemetry_stripping():
    events = []

    async def main():
        service = StudyService()
        s = scenario(engine="auto", trials=400)
        answer = await service.submit(s, progress=events.append)
        await service.close()
        return answer

    answer = asyncio.run(main())
    kinds = [record["event"] for record in events]
    assert kinds[0] == "study_start"
    assert "engine_resolved" in kinds
    assert "estimate" in kinds
    assert kinds[-1] == "study_end"
    # The engine-run snapshot is operational data, not payload.
    assert "telemetry" not in answer.result.details
    # Progress-subscribed runs bypass the batching queue but still
    # produce the solo answer.
    solo = run(Scenario.from_dict(
        scenario(engine="auto", trials=400).as_dict()
    ))
    assert answer.result.value == solo.value


def test_deterministic_engines_memoize_forever(tmp_path):
    async def main():
        service = StudyService(store=ResultStore(tmp_path))
        first = await service.submit(scenario(engine="analytic"))
        # A different seed and a brutal target are irrelevant to an
        # exact answer: still a store hit.
        demanding = scenario(engine="analytic", seed=9, target=1e-12)
        second = await service.submit(demanding)
        await service.close()
        return first, second

    first, second = asyncio.run(main())
    assert first.served_from == "engine"
    assert second.served_from == "store"
    assert second.result.std_error == 0.0


def test_submit_after_close_raises():
    async def main():
        service = StudyService()
        await service.close()
        with pytest.raises(RuntimeError, match="closed"):
            await service.submit(scenario())

    asyncio.run(main())


def test_infeasible_run_error_reaches_all_sharers(tmp_path):
    # A scenario that validates but whose engine raises at run time:
    # a frontier recommendation with an impossible budget.
    from repro.optimize import DesignSpace

    space = DesignSpace(
        dataset_tb=10.0,
        media=("drive:cheetah",),
        replica_counts=(2,),
        audit_rates=(12.0,),
        placements=("single",),
    )
    bad = Scenario(
        question="frontier",
        space=space,
        budget=0.01,  # nothing fits one cent a year
        policy=EstimatorPolicy(engine="analytic"),
    )

    async def main():
        service = StudyService()
        results = await asyncio.gather(
            service.submit(bad),
            service.submit(bad),
            return_exceptions=True,
        )
        await service.close()
        return results, counters(service)

    results, stats = asyncio.run(main())
    assert len(results) == 2
    assert all(isinstance(r, ValueError) for r in results)
    assert stats["serve.engine_runs"] == 1
