"""The HTTP and stdio transports in front of StudyService.

Blocking-client calls (``ServeClient`` wraps ``http.client``) must run
off the event loop via ``run_in_executor`` — calling them inline from a
coroutine would block the loop the server itself runs on.
"""

import asyncio
import json

import pytest

from repro.core.parameters import FaultModel
from repro.serve import (
    ANSWER_SCHEMA_VERSION,
    ResultStore,
    ServeClient,
    ServeError,
    StudyService,
    serve_lines,
    start_server,
)
from repro.serve.server import _scenario_from_body
from repro.study import EstimatorPolicy, Scenario, SystemSpec

MODEL = FaultModel(2500.0, 500.0, 1.0, 1.0, 25.0)


def scenario_dict(mission=0.5, trials=300, seed=3, engine="batch"):
    return Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=mission,
        policy=EstimatorPolicy(engine=engine, trials=trials, seed=seed),
    ).as_dict()


def with_server(test_body, store=None):
    """Run ``await test_body(client)`` against a live server on port 0."""

    async def main():
        service = StudyService(store=store)
        server = await start_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        client = ServeClient(port=port)
        loop = asyncio.get_running_loop()

        def call(fn, *args, **kwargs):
            return loop.run_in_executor(None, lambda: fn(*args, **kwargs))

        try:
            return await test_body(client, call, service)
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# HTTP routes
# ---------------------------------------------------------------------------


def test_healthz_and_metrics():
    async def body(client, call, service):
        assert await call(client.health)
        text = await call(client.metrics)
        return text

    text = with_server(body)
    # The service registry is live from construction; a scrape before
    # any query still renders (possibly empty) valid exposition text.
    for line in text.splitlines():
        assert line.startswith("# TYPE") or " " in line


def test_query_cold_then_hot(tmp_path):
    async def body(client, call, service):
        cold = await call(client.query, scenario_dict())
        hot = await call(client.query, scenario_dict())
        metrics = await call(client.metrics)
        return cold, hot, metrics

    cold, hot, metrics = with_server(body, store=ResultStore(tmp_path))
    assert cold["schema"] == ANSWER_SCHEMA_VERSION
    assert cold["served_from"] == "engine"
    assert hot["served_from"] == "store"
    assert hot["result"] == cold["result"]
    assert len(cold["scenario_hash"]) == 32
    assert cold["result"]["question"] == "loss_probability"
    assert "repro_serve_requests_total 2" in metrics
    assert "repro_cache_serve_hit_total 1" in metrics


def test_query_accepts_wrapped_scenario_envelope(tmp_path):
    async def body(client, call, service):
        # The CLI's render_json envelope wraps the scenario; POSTing it
        # back verbatim must work.
        envelope = {"command": "study", "scenario": scenario_dict()}
        return await call(client.query, envelope)

    answer = with_server(body, store=ResultStore(tmp_path))
    assert answer["served_from"] == "engine"


def test_bad_request_is_a_400_not_a_crash():
    async def body(client, call, service):
        with pytest.raises(ServeError) as bad_json:
            await call(client.query, {"question": "no_such_question"})
        # The connection survives the error: a good query still works.
        answer = await call(client.query, scenario_dict())
        return bad_json.value, answer

    error, answer = with_server(body)
    assert error.status == 400
    assert "invalid scenario" in str(error)
    assert answer["served_from"] == "engine"


def test_unknown_route_is_404():
    async def body(client, call, service):
        def raw_get():
            conn = client._connect()
            try:
                conn.request("GET", "/nope")
                response = conn.getresponse()
                return response.status, response.read()
            finally:
                conn.close()

        return await call(raw_get)

    status, payload = with_server(body)
    assert status == 404
    assert b"no route" in payload


def test_stream_query_yields_progress_then_result():
    events = []

    async def body(client, call, service):
        return await call(
            client.query_stream, scenario_dict(engine="auto"), events.append
        )

    answer = with_server(body)
    assert answer["served_from"] == "engine"
    kinds = [record["event"] for record in events]
    assert kinds[0] == "study_start"
    assert kinds[-1] == "study_end"
    assert "estimate" in kinds


def test_scenario_from_body_rejects_garbage():
    for garbage in (b"{ not json", b"[1, 2]", b'{"scenario": 7}'):
        with pytest.raises(ValueError):
            _scenario_from_body(garbage)


# ---------------------------------------------------------------------------
# stdio / JSON-lines mode
# ---------------------------------------------------------------------------


def run_stdio(lines):
    """Feed request lines through serve_lines; return output records."""

    async def main():
        service = StudyService()
        reader = asyncio.StreamReader()
        for line in lines:
            reader.feed_data((json.dumps(line) + "\n").encode("utf-8"))
        reader.feed_eof()
        out = []
        count = await serve_lines(service, reader, out.append)
        await service.close()
        return count, [json.loads(line) for line in out]

    return asyncio.run(main())


def test_serve_lines_round_trip():
    count, records = run_stdio(
        [
            {"id": "a", "scenario": scenario_dict()},
            {"id": "b", "scenario": scenario_dict(mission=1.0)},
            {"id": "oops", "scenario": {"question": "bogus"}},
        ]
    )
    assert count == 3
    by_id = {}
    for record in records:
        by_id.setdefault(record["id"], []).append(record)
    assert by_id["a"][-1]["served_from"] in ("engine", "inflight")
    assert by_id["b"][-1]["result"]["question"] == "loss_probability"
    assert "error" in by_id["oops"][-1]


def test_serve_lines_streamed_request_gets_progress_records():
    count, records = run_stdio(
        [{"id": 1, "scenario": scenario_dict(engine="auto"), "stream": True}]
    )
    assert count == 1
    assert [r for r in records if r.get("event") == "study_start"]
    final = records[-1]
    assert final["id"] == 1
    assert final["schema"] == ANSWER_SCHEMA_VERSION
    assert "result" in final


def test_serve_lines_identical_lines_share_one_engine_run():
    request = {"id": None, "scenario": scenario_dict()}
    lines = [dict(request, id=i) for i in range(4)]

    async def main():
        service = StudyService()
        reader = asyncio.StreamReader()
        for line in lines:
            reader.feed_data((json.dumps(line) + "\n").encode("utf-8"))
        reader.feed_eof()
        out = []
        await serve_lines(service, reader, out.append)
        stats = service.telemetry.snapshot().counters
        await service.close()
        return [json.loads(line) for line in out], stats

    records, stats = asyncio.run(main())
    assert len(records) == 4
    assert stats["serve.engine_runs"] == 1
    values = {json.dumps(r["result"], sort_keys=True) for r in records}
    assert len(values) == 1
