"""The persistent ResultStore: keys, staleness, corruption, concurrency."""

import json
import multiprocessing
import os

import pytest

from repro.core.parameters import FaultModel
from repro.serve.store import (
    ENTRY_SCHEMA_VERSION,
    ResultStore,
    achieved_relative_error,
    question_key,
)
from repro.study import EstimatorPolicy, Scenario, StudyResult, SystemSpec, run

#: Compressed-time operating point: losses are common, so a few hundred
#: trials answer in milliseconds.
MODEL = FaultModel(2500.0, 500.0, 1.0, 1.0, 25.0)


def scenario(
    mission=0.5,
    trials=300,
    seed=3,
    engine="batch",
    target=None,
    max_trials=None,
    label=None,
):
    return Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL),
        mission_years=mission,
        label=label,
        policy=EstimatorPolicy(
            engine=engine,
            trials=trials,
            seed=seed,
            target_relative_error=target,
            max_trials=max_trials,
        ),
    )


# ---------------------------------------------------------------------------
# question_key
# ---------------------------------------------------------------------------


def test_question_key_invariant_to_precision_knobs_and_label():
    base = scenario()
    for other in (
        scenario(trials=5000),
        scenario(seed=99),
        scenario(target=0.01),
        scenario(trials=500, max_trials=50_000),
        scenario(label="renamed"),
    ):
        assert question_key(other) == question_key(base)
        # ... while the exact-identity content hash does change (except
        # for a pure label change, which as_dict does serialise).
    assert scenario(trials=5000).content_hash() != base.content_hash()


def test_question_key_differs_for_different_questions():
    base = scenario()
    assert question_key(scenario(mission=20.0)) != question_key(base)
    assert question_key(scenario(engine="event")) != question_key(base)
    other_model = Scenario(
        question="loss_probability",
        system=SystemSpec(model=MODEL, replicas=3),
        mission_years=10.0,
        policy=base.policy,
    )
    assert question_key(other_model) != question_key(base)


def test_question_key_matches_content_hash_shape():
    key = question_key(scenario())
    assert len(key) == 32
    assert all(c in "0123456789abcdef" for c in key)


# ---------------------------------------------------------------------------
# round trip + hit/miss/stale semantics
# ---------------------------------------------------------------------------


def test_roundtrip_hit(tmp_path):
    store = ResultStore(tmp_path)
    s = scenario()
    result = run(s)
    stored, outcome = store.lookup(s)
    assert (stored, outcome) == (None, "miss")
    key = store.put(s, result)
    assert (tmp_path / f"{key}.json").exists()
    stored, outcome = store.lookup(s)
    assert outcome == "hit"
    assert stored.as_dict() == result.as_dict()
    assert store.stats() == {
        "hits": 1,
        "misses": 1,
        "stales": 0,
        "errors": 0,
        "stores": 1,
    }


def test_precision_variants_share_one_entry(tmp_path):
    store = ResultStore(tmp_path)
    s = scenario()
    store.put(s, run(s))
    for variant in (
        scenario(trials=5000),
        scenario(seed=42),
        scenario(label="renamed"),
    ):
        stored, outcome = store.lookup(variant)
        assert outcome == "hit"
        # Provenance is the producing run's, not the asker's.
        assert stored.seed == s.policy.seed
    assert len(store) == 1


def test_exact_answers_hit_any_target(tmp_path):
    store = ResultStore(tmp_path)
    s = scenario(engine="analytic")
    store.put(s, run(s))
    demanding = scenario(engine="analytic", target=1e-9)
    stored, outcome = store.lookup(demanding)
    assert outcome == "hit"
    assert stored.std_error == 0.0


def test_tighter_target_is_stale_then_refreshed(tmp_path):
    store = ResultStore(tmp_path)
    coarse = scenario(trials=200)
    store.put(coarse, run(coarse))
    achieved = achieved_relative_error(store.lookup(coarse)[0])
    tight = scenario(target=achieved / 10, trials=200)
    stored, outcome = store.lookup(tight)
    assert (stored, outcome) == (None, "stale")
    assert store.stales == 1
    # A satisfiable demand still hits.
    loose = scenario(target=achieved * 10)
    assert store.lookup(loose)[1] == "hit"
    # Refreshing overwrites the shared entry with the sharper answer.
    sharper = run(scenario(target=achieved / 10, trials=200, max_trials=200_000))
    store.put(tight, sharper)
    stored, outcome = store.lookup(tight)
    assert outcome == "hit"
    assert achieved_relative_error(stored) <= achieved / 10
    assert len(store) == 1


def test_memory_cache_revalidates_on_external_overwrite(tmp_path):
    writer = ResultStore(tmp_path)
    reader = ResultStore(tmp_path)
    s = scenario()
    first = run(s)
    key = writer.put(s, first)
    assert reader.lookup(s)[1] == "hit"  # primes reader's memory cache
    second = run(scenario(seed=77))
    writer.put(s, second)
    stored, outcome = reader.lookup(s)
    assert outcome == "hit"
    assert stored.seed == 77
    # The overwrite is one file, atomically replaced.
    assert sorted(p.name for p in tmp_path.iterdir()) == [f"{key}.json"]


# ---------------------------------------------------------------------------
# corruption degrades to recompute
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "garbage",
    [
        "{ not json",
        '"a bare string"',
        json.dumps({"schema": 999, "result": {}}),
        json.dumps({"schema": ENTRY_SCHEMA_VERSION}),  # missing result
        json.dumps({"schema": ENTRY_SCHEMA_VERSION, "result": {"value": []}}),
    ],
)
def test_corrupt_entry_degrades_to_error(tmp_path, garbage):
    store = ResultStore(tmp_path)
    s = scenario()
    key = store.put(s, run(s))
    (tmp_path / f"{key}.json").write_text(garbage, encoding="utf-8")
    stored, outcome = store.lookup(s)
    assert (stored, outcome) == (None, "error")
    assert store.errors == 1
    # put() repairs the entry; subsequent lookups hit again.
    store.put(s, run(s))
    assert store.lookup(s)[1] == "hit"


def test_relative_error_edge_cases():
    exact = StudyResult(
        question="mttdl", engine="analytic", method="analytic",
        value=123.0, std_error=0.0,
    )
    assert achieved_relative_error(exact) == 0.0
    zero_mean = StudyResult(
        question="loss_probability", engine="batch", method="standard",
        value=0.0, std_error=1e-3,
    )
    assert achieved_relative_error(zero_mean) is None
    lossless = StudyResult(
        question="mttdl", engine="batch", method="standard",
        value=None, std_error=None,
    )
    assert achieved_relative_error(lossless) is None


# ---------------------------------------------------------------------------
# two processes sharing one directory
# ---------------------------------------------------------------------------


def _hammer(directory, seed, rounds, out):
    """Worker: interleave writes and reads against the shared store."""
    store = ResultStore(directory)
    s = scenario(seed=seed)
    result = run(s)
    corrupt = 0
    for _ in range(rounds):
        store.put(s, result)
        stored, outcome = store.lookup(scenario(seed=seed + 1))
        if outcome == "error":
            corrupt += 1
        elif stored is not None and stored.schema != 1:
            corrupt += 1
    out.put(corrupt)


def test_two_processes_share_one_store_without_corruption(tmp_path):
    ctx = multiprocessing.get_context("spawn")
    out = ctx.Queue()
    workers = [
        ctx.Process(target=_hammer, args=(str(tmp_path), seed, 25, out))
        for seed in (1, 2)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
        assert w.exitcode == 0
    assert out.get() == 0
    assert out.get() == 0
    # Both wrote the same question key; the surviving entry decodes.
    store = ResultStore(tmp_path)
    assert len(store) == 1
    stored, outcome = store.lookup(scenario(seed=1))
    assert outcome == "hit"
    assert stored.question == "loss_probability"
    # No staging files leaked.
    assert not list(tmp_path.glob("*.tmp"))


def test_unreadable_directory_is_a_miss_not_a_crash(tmp_path):
    store = ResultStore(tmp_path)
    s = scenario()
    key = store.put(s, run(s))
    os.remove(tmp_path / f"{key}.json")
    assert store.lookup(s)[1] == "miss"
