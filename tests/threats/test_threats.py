"""Tests for the threat taxonomy, correlation sources, and event timelines."""

import pytest

from repro.core.faults import FaultClass, FaultType
from repro.threats.correlation_sources import (
    correlation_pressure,
    dominant_correlation_sources,
    implied_alpha_from_reach,
    mitigation_effect,
)
from repro.threats.events import (
    ThreatEventGenerator,
    sample_threat_timeline,
    summarize_timeline,
)
from repro.threats.taxonomy import (
    THREAT_REGISTRY,
    all_threat_profiles,
    combined_fault_model,
    default_type_for,
    threat_profile,
)


class TestRegistry:
    def test_every_paper_threat_class_has_a_profile(self):
        assert set(THREAT_REGISTRY) == set(FaultClass)

    def test_profiles_are_self_describing(self):
        for profile in all_threat_profiles():
            assert profile.description
            assert profile.example
            assert profile.mitigations

    def test_visible_threats_have_zero_detection_time(self):
        for profile in all_threat_profiles():
            if profile.fault_type is FaultType.VISIBLE:
                assert profile.mean_detection_time == 0.0

    def test_latent_threats_have_positive_detection_time(self):
        for profile in all_threat_profiles():
            if profile.fault_type is FaultType.LATENT:
                assert profile.mean_detection_time > 0.0

    def test_media_fault_profile_uses_paper_derived_rates(self):
        media = threat_profile(FaultClass.MEDIA_FAULT)
        assert media.mean_time_to_occurrence == pytest.approx(2.8e5)
        assert media.mean_detection_time == pytest.approx(1460.0)

    def test_obsolescence_threats_are_decade_scale(self):
        for fault_class in (
            FaultClass.MEDIA_OBSOLESCENCE,
            FaultClass.SOFTWARE_OBSOLESCENCE,
            FaultClass.LOSS_OF_CONTEXT,
        ):
            profile = threat_profile(fault_class)
            assert profile.mean_time_to_occurrence >= 5 * 8760.0

    def test_format_obsolescence_hits_every_replica(self):
        assert (
            threat_profile(FaultClass.SOFTWARE_OBSOLESCENCE).correlation_reach == 1.0
        )

    def test_rate_per_year(self):
        profile = threat_profile(FaultClass.MEDIA_FAULT)
        assert profile.rate_per_year == pytest.approx(8760.0 / 2.8e5)

    def test_default_type_for_matches_faults_module(self):
        assert default_type_for(FaultClass.MEDIA_FAULT) is FaultType.LATENT
        assert default_type_for(FaultClass.LARGE_SCALE_DISASTER) is FaultType.VISIBLE


class TestCombinedFaultModel:
    def test_combined_model_is_valid(self):
        model = combined_fault_model()
        assert model.mean_time_to_visible > 0
        assert model.mean_time_to_latent > 0
        assert 0 < model.correlation_factor <= 1

    def test_combined_latent_rate_at_least_each_contributor(self):
        # Rates add, so the combined latent mean time cannot exceed the
        # mean time of any single contributing latent threat.
        model = combined_fault_model()
        latent_profiles = [p for p in all_threat_profiles() if p.is_latent]
        assert model.mean_time_to_latent <= min(
            p.mean_time_to_occurrence for p in latent_profiles
        )

    def test_explicit_correlation_override(self):
        model = combined_fault_model(correlation_factor=0.5)
        assert model.correlation_factor == 0.5

    def test_requires_both_fault_types(self):
        latent_only = [p for p in all_threat_profiles() if p.is_latent]
        with pytest.raises(ValueError):
            combined_fault_model(latent_only)

    def test_requires_at_least_one_profile(self):
        with pytest.raises(ValueError):
            combined_fault_model([])


class TestCorrelationPressure:
    def test_alpha_mapping_extremes(self):
        assert implied_alpha_from_reach(0.0) == 1.0
        assert implied_alpha_from_reach(1.0, alpha_floor=1e-3) == pytest.approx(1e-3)

    def test_pressure_weighted_reach_in_unit_interval(self):
        pressure = correlation_pressure(all_threat_profiles())
        assert 0.0 <= pressure.weighted_reach <= 1.0

    def test_per_threat_contributions_sorted(self):
        pressure = correlation_pressure(all_threat_profiles())
        contributions = [value for _, value in pressure.per_threat]
        assert contributions == sorted(contributions, reverse=True)

    def test_dominant_sources_returned_in_order(self):
        top = dominant_correlation_sources(all_threat_profiles(), top=3)
        assert len(top) == 3

    def test_mitigation_raises_alpha(self):
        profiles = all_threat_profiles()
        target = dominant_correlation_sources(profiles, top=1)[0]
        before, after = mitigation_effect(profiles, target, reach_reduction=0.9)
        assert after > before

    def test_mitigation_requires_member_profile(self):
        subset = [
            threat_profile(FaultClass.LARGE_SCALE_DISASTER),
            threat_profile(FaultClass.HUMAN_ERROR),
        ]
        outsider = threat_profile(FaultClass.MEDIA_FAULT)
        with pytest.raises(ValueError):
            mitigation_effect(subset, outsider)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            correlation_pressure([])

    def test_bad_reach_rejected(self):
        with pytest.raises(ValueError):
            implied_alpha_from_reach(1.5)


class TestThreatTimelines:
    def test_timeline_sorted_by_time(self):
        events = sample_threat_timeline(horizon_years=50.0, seed=1)
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_timeline_reproducible(self):
        a = sample_threat_timeline(horizon_years=20.0, seed=5)
        b = sample_threat_timeline(horizon_years=20.0, seed=5)
        assert len(a) == len(b)
        assert all(x.time == y.time for x, y in zip(a, b))

    def test_events_within_horizon(self):
        events = sample_threat_timeline(horizon_years=10.0, seed=2)
        assert all(event.time <= 10.0 * 8760.0 for event in events)

    def test_fifty_year_archive_sees_many_media_faults(self):
        events = sample_threat_timeline(horizon_years=50.0, replicas=3, seed=3)
        media = [e for e in events if e.fault_class is FaultClass.MEDIA_FAULT]
        assert len(media) >= 1

    def test_latent_events_have_positive_detection_delay(self):
        events = sample_threat_timeline(horizon_years=50.0, seed=4)
        for event in events:
            if event.is_latent:
                assert event.detected_at >= event.time

    def test_replicas_affected_bounded(self):
        events = sample_threat_timeline(horizon_years=50.0, replicas=4, seed=6)
        assert all(1 <= event.replicas_affected <= 4 for event in events)

    def test_summary_counts(self):
        events = sample_threat_timeline(horizon_years=50.0, seed=7)
        summary = summarize_timeline(events)
        assert summary["total"] == len(events)
        assert 0.0 <= summary["latent_fraction"] <= 1.0
        assert summary["multi_replica_events"] <= summary["total"]

    def test_empty_summary(self):
        summary = summarize_timeline([])
        assert summary["total"] == 0

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            ThreatEventGenerator(profiles=[], replicas=3)
        with pytest.raises(ValueError):
            ThreatEventGenerator(replicas=0)
        with pytest.raises(ValueError):
            ThreatEventGenerator().timeline(0.0)
