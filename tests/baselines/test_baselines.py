"""Tests for the prior-work baseline models."""

import math

import pytest

from repro.baselines.chen import chen_correlated_mttdl, chen_vs_alpha_model, implied_alpha
from repro.baselines.raid_patterson import (
    patterson_array_mttdl,
    patterson_group_mttdl,
    patterson_mirrored_mttdl,
    patterson_raid5_mttdl,
    patterson_reliability_over_mission,
)
from repro.baselines.schwarz import (
    latent_mttf_from_visible,
    opportunistic_scrub_mdl,
    schwarz_latent_to_visible_ratio,
    schwarz_scrub_benefit,
    scrub_rate_for_bandwidth_budget,
)
from repro.baselines.weatherspoon import (
    durability_with_latent_fault_penalty,
    equivalent_replication_for_durability,
    erasure_coding_durability,
    fragment_survival_probability,
    replication_durability,
    storage_overhead_comparison,
)
from repro.core.approximations import visible_dominated_mttdl
from repro.core.parameters import FaultModel


class TestPatterson:
    def test_mirrored_closed_form(self):
        assert patterson_mirrored_mttdl(1e6, 10.0) == pytest.approx(1e12 / 20.0)

    def test_paper_eq9_is_twice_patterson_due_to_convention(self):
        model = FaultModel(
            mean_time_to_visible=1e6,
            mean_time_to_latent=1e12,
            mean_repair_visible=10.0,
            mean_repair_latent=10.0,
            mean_detect_latent=0.0,
            correlation_factor=1.0,
        )
        assert visible_dominated_mttdl(model) == pytest.approx(
            2.0 * patterson_mirrored_mttdl(1e6, 10.0)
        )

    def test_raid5_group(self):
        assert patterson_raid5_mttdl(1e6, 10.0, 8) == pytest.approx(
            1e12 / (8 * 7 * 10.0)
        )

    def test_group_of_more_disks_less_reliable(self):
        assert patterson_raid5_mttdl(1e6, 10.0, 14) < patterson_raid5_mttdl(
            1e6, 10.0, 6
        )

    def test_array_scales_with_group_count(self):
        single = patterson_raid5_mttdl(1e6, 10.0, 8)
        assert patterson_array_mttdl(1e6, 10.0, 8, 10) == pytest.approx(single / 10)

    def test_reliability_over_mission(self):
        assert patterson_reliability_over_mission(8760.0, 1.0) == pytest.approx(
            math.exp(-1.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            patterson_mirrored_mttdl(0.0, 1.0)
        with pytest.raises(ValueError):
            patterson_raid5_mttdl(1e6, 10.0, 2)
        with pytest.raises(ValueError):
            patterson_group_mttdl(1e6, 10.0, 0)
        with pytest.raises(ValueError):
            patterson_array_mttdl(1e6, 10.0, 8, 0)
        with pytest.raises(ValueError):
            patterson_reliability_over_mission(0.0, 1.0)


class TestChen:
    def test_correlated_mttdl(self):
        assert chen_correlated_mttdl(1e6, 10.0, 1e5) == pytest.approx(1e6 * 1e5 / 10.0)

    def test_implied_alpha(self):
        assert implied_alpha(1e6, 1e5) == pytest.approx(0.1)
        assert implied_alpha(1e6, 2e6) == 1.0

    def test_correlated_mttf_cannot_exceed_independent(self):
        with pytest.raises(ValueError):
            chen_correlated_mttdl(1e6, 10.0, 2e6)

    def test_comparison_against_alpha_model(self):
        model = FaultModel(
            mean_time_to_visible=1.4e6,
            mean_time_to_latent=2.8e5,
            mean_repair_visible=1.0 / 3.0,
            mean_repair_latent=1.0 / 3.0,
            mean_detect_latent=1460.0,
            correlation_factor=1.0,
        )
        result = chen_vs_alpha_model(model, correlated_second_mttf=1.4e5)
        assert result["implied_alpha"] == pytest.approx(0.1)
        # Chen's visible-only threat model reports a much longer MTTDL
        # than the paper's latent-aware model: the latent faults are the
        # dominant threat that Chen's model does not see.
        assert result["latent_fault_penalty"] > 10.0


class TestSchwarz:
    def test_ratio_constant(self):
        assert schwarz_latent_to_visible_ratio() == 5.0

    def test_latent_mttf_from_visible(self):
        assert latent_mttf_from_visible(1.4e6) == pytest.approx(2.8e5)

    def test_opportunistic_scrub_reduces_mdl(self):
        dedicated = opportunistic_scrub_mdl(2920.0, 0.0)
        opportunistic = opportunistic_scrub_mdl(2920.0, 0.8)
        assert dedicated == pytest.approx(1460.0)
        assert opportunistic == pytest.approx(292.0)

    def test_scrub_benefit_matches_paper_shape(self):
        model = FaultModel(
            mean_time_to_visible=1.4e6,
            mean_time_to_latent=2.8e5,
            mean_repair_visible=1.0 / 3.0,
            mean_repair_latent=1.0 / 3.0,
            mean_detect_latent=2.8e5,
            correlation_factor=1.0,
        )
        benefit = schwarz_scrub_benefit(model, scrubs_per_year=3.0)
        assert benefit["improvement_factor"] > 100.0

    def test_scrub_rate_for_bandwidth_budget(self):
        rate = scrub_rate_for_bandwidth_budget(
            capacity_gb=146.0, bandwidth_mb_s=300.0, bandwidth_fraction=0.01
        )
        assert rate > 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            latent_mttf_from_visible(0.0)
        with pytest.raises(ValueError):
            opportunistic_scrub_mdl(0.0, 0.5)
        with pytest.raises(ValueError):
            opportunistic_scrub_mdl(100.0, 1.0)
        with pytest.raises(ValueError):
            scrub_rate_for_bandwidth_budget(146.0, 300.0, 0.0)


class TestWeatherspoon:
    def test_fragment_survival_all_needed(self):
        # m = n: every fragment must survive.
        assert fragment_survival_probability(0.1, 4, 4) == pytest.approx(0.9 ** 4)

    def test_fragment_survival_any_needed(self):
        # m = 1 behaves like replication.
        assert fragment_survival_probability(0.1, 4, 1) == pytest.approx(
            1.0 - 0.1 ** 4
        )

    def test_erasure_beats_replication_at_same_overhead(self):
        # 16-of-32 coding (2x overhead) vs 2 replicas (2x overhead).
        erasure = erasure_coding_durability(0.1, n=32, m=16)
        replication = replication_durability(0.1, replicas=2)
        assert erasure > replication

    def test_multiple_epochs_compound(self):
        single = erasure_coding_durability(0.05, 16, 12, epochs=1)
        many = erasure_coding_durability(0.05, 16, 12, epochs=10)
        assert many == pytest.approx(single ** 10)

    def test_storage_overhead_comparison(self):
        overhead = storage_overhead_comparison(n=32, m=16, replicas=4)
        assert overhead["erasure_overhead"] == 2.0
        assert overhead["replication_overhead"] == 4.0
        assert overhead["erasure_savings_factor"] == 2.0

    def test_equivalent_replication_needs_more_copies(self):
        replicas = equivalent_replication_for_durability(0.1, n=32, m=16)
        assert replicas > 2

    def test_latent_faults_erode_coded_durability(self):
        clean = erasure_coding_durability(0.05, 16, 12)
        rotted = durability_with_latent_fault_penalty(0.05, 0.10, 16, 12)
        assert rotted < clean

    def test_validation(self):
        with pytest.raises(ValueError):
            fragment_survival_probability(1.5, 4, 2)
        with pytest.raises(ValueError):
            fragment_survival_probability(0.1, 4, 5)
        with pytest.raises(ValueError):
            replication_durability(0.1, 0)
        with pytest.raises(ValueError):
            erasure_coding_durability(0.1, 4, 2, epochs=0)
        with pytest.raises(ValueError):
            storage_overhead_comparison(4, 5, 2)
