"""Tests for absorbing-chain analysis against known closed forms."""

import pytest

from repro.markov.absorbing import (
    absorption_probabilities,
    expected_visits,
    mean_time_to_absorption,
    mean_time_to_state,
    occupancy_fractions,
)
from repro.markov.chain import MarkovChain, TransitionError


def two_state_chain(rate=0.1):
    """Single transient state flowing into one absorbing state."""
    chain = MarkovChain()
    chain.add_state("alive")
    chain.add_state("dead", absorbing=True)
    chain.add_transition("alive", "dead", rate)
    return chain


def mirrored_visible_only(mttf=1000.0, mttr=2.0):
    """Classic RAID-1 chain: MTTDL = MTTF^2 / (2 MTTR)."""
    chain = MarkovChain()
    chain.add_state("both_up")
    chain.add_state("one_up")
    chain.add_state("lost", absorbing=True)
    chain.add_transition("both_up", "one_up", 2.0 / mttf)
    chain.add_transition("one_up", "both_up", 1.0 / mttr)
    chain.add_transition("one_up", "lost", 1.0 / mttf)
    return chain


class TestMeanTimeToAbsorption:
    def test_single_exponential(self):
        assert mean_time_to_absorption(two_state_chain(0.1)) == pytest.approx(10.0)

    def test_raid1_closed_form(self):
        mttf, mttr = 1000.0, 2.0
        chain = mirrored_visible_only(mttf, mttr)
        expected = mttf ** 2 / (2.0 * mttr) + 1.5 * mttf  # exact birth-death MTTA
        # The dominant term is MTTF^2 / (2 MTTR); the exact chain answer
        # includes lower-order corrections, so compare against the exact
        # birth-death expression: (mu + 3 lam) / (2 lam^2) with
        # lam = 1/mttf, mu = 1/mttr.
        lam, mu = 1.0 / mttf, 1.0 / mttr
        exact = (mu + 3 * lam) / (2 * lam ** 2)
        assert mean_time_to_absorption(chain) == pytest.approx(exact, rel=1e-9)
        assert mean_time_to_absorption(chain) == pytest.approx(expected, rel=0.01)

    def test_start_state_matters(self):
        chain = mirrored_visible_only()
        from_degraded = mean_time_to_absorption(chain, start="one_up")
        from_healthy = mean_time_to_absorption(chain, start="both_up")
        assert from_degraded < from_healthy

    def test_absorbing_start_rejected(self):
        with pytest.raises(TransitionError):
            mean_time_to_absorption(mirrored_visible_only(), start="lost")

    def test_chain_without_absorbing_state_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        chain.add_state("b")
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("b", "a", 1.0)
        with pytest.raises(TransitionError):
            mean_time_to_absorption(chain)


class TestExpectedVisits:
    def test_visit_times_sum_to_mtta(self):
        chain = mirrored_visible_only()
        visits = expected_visits(chain)
        assert sum(visits.values()) == pytest.approx(mean_time_to_absorption(chain))

    def test_healthy_state_dominates_occupancy(self):
        fractions = occupancy_fractions(mirrored_visible_only())
        assert fractions["both_up"] > 0.99

    def test_occupancy_fractions_sum_to_one(self):
        fractions = occupancy_fractions(mirrored_visible_only())
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestAbsorptionProbabilities:
    def test_single_absorbing_state_gets_probability_one(self):
        probabilities = absorption_probabilities(mirrored_visible_only())
        assert probabilities["lost"] == pytest.approx(1.0)

    def test_two_absorbing_states_split(self):
        chain = MarkovChain()
        chain.add_state("start")
        chain.add_state("left", absorbing=True)
        chain.add_state("right", absorbing=True)
        chain.add_transition("start", "left", 1.0)
        chain.add_transition("start", "right", 3.0)
        probabilities = absorption_probabilities(chain)
        assert probabilities["left"] == pytest.approx(0.25)
        assert probabilities["right"] == pytest.approx(0.75)


class TestMeanTimeToState:
    def test_single_absorbing_target(self):
        chain = two_state_chain(0.5)
        assert mean_time_to_state(chain, "dead") == pytest.approx(2.0)

    def test_multiple_absorbing_states_unsupported(self):
        chain = MarkovChain()
        chain.add_state("start")
        chain.add_state("left", absorbing=True)
        chain.add_state("right", absorbing=True)
        chain.add_transition("start", "left", 1.0)
        chain.add_transition("start", "right", 1.0)
        with pytest.raises(TransitionError):
            mean_time_to_state(chain, "left")
