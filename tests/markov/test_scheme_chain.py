"""Tests for the generalised (n, k) birth-death Markov chain."""

import pytest

from repro.core.redundancy import ErasureCode, RedundancyScheme, Replication
from repro.core.replication import replicated_mttdl
from repro.core.redundancy import scheme_mttdl_eq12
from repro.markov import (
    build_replicated_chain,
    build_scheme_chain,
    loss_probability_over_time,
    mean_time_to_absorption,
    replicated_mttdl_markov,
    scheme_mttdl_markov,
)

MV = 1.4e6
MR = 1.0 / 3.0


class TestBuildSchemeChain:
    def test_state_count_is_loss_threshold_plus_one(self):
        chain = build_scheme_chain(MV, MR, ErasureCode(6, 4))
        # 0..3 faulty fragments; 3 = n - k + 1 is absorbing.
        assert len(chain.states) == 4
        absorbing = [s for s in chain.states if chain.is_absorbing(s)]
        assert len(absorbing) == 1

    def test_replicated_chain_is_thin_wrapper(self):
        for r in (2, 3, 5):
            direct = build_replicated_chain(MV, MR, r)
            via_scheme = build_scheme_chain(MV, MR, Replication(r))
            assert direct.states == via_scheme.states
            for source in direct.states:
                for target in direct.states:
                    assert direct.rate(source, target) == (
                        via_scheme.rate(source, target)
                    )

    def test_replicated_mttdl_markov_equivalence(self):
        for r in (2, 3, 4):
            assert replicated_mttdl_markov(MV, MR, r) == (
                scheme_mttdl_markov(MV, MR, Replication(r))
            )

    def test_erasure_mttdl_between_adjacent_replication_degrees(self):
        # EC(n, k) tolerates n - k faults, so its MTTDL sits between
        # the replication degrees with the same tolerated-fault count
        # (r = n - k + 1, fewer fragments exposed) and one more.
        ec = scheme_mttdl_markov(MV, MR, ErasureCode(4, 2))
        r3 = scheme_mttdl_markov(MV, MR, Replication(3))
        assert ec < r3  # same tolerated faults, more fragments faulting

    def test_mttdl_decreases_with_k_at_fixed_n(self):
        values = [
            scheme_mttdl_markov(MV, MR, RedundancyScheme(n=6, k=k))
            for k in (1, 2, 3, 4, 5, 6)
        ]
        assert values == sorted(values, reverse=True)

    def test_agrees_with_generalised_eq12_in_reliable_regime(self):
        # Eq. 12 tracks one fragment's exposure (no survivor-count
        # multiplicity), so compare against the chain built the same way
        # — the flag exists precisely for this like-for-like check.
        for scheme in (Replication(3), ErasureCode(4, 2), ErasureCode(6, 4)):
            exact = scheme_mttdl_markov(
                MV, MR, scheme, scale_fault_rate_with_survivors=False
            )
            approx = scheme_mttdl_eq12(MV, MR, scheme)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_parallel_repair_never_hurts(self):
        scheme = ErasureCode(6, 4)
        serial = scheme_mttdl_markov(MV, MR, scheme, parallel_repair=False)
        parallel = scheme_mttdl_markov(MV, MR, scheme, parallel_repair=True)
        assert parallel >= serial

    def test_correlation_shortens_mttdl(self):
        scheme = ErasureCode(6, 4)
        independent = scheme_mttdl_markov(MV, MR, scheme, correlation_factor=1.0)
        correlated = scheme_mttdl_markov(MV, MR, scheme, correlation_factor=0.01)
        assert correlated < independent

    def test_transient_loss_probability_monotone(self):
        chain = build_scheme_chain(1e4, 100.0, ErasureCode(4, 2))
        probabilities = [
            loss_probability_over_time(chain, t)
            for t in (1e3, 1e4, 1e5, 1e6)
        ]
        assert probabilities == sorted(probabilities)
        assert 0.0 <= probabilities[0] <= probabilities[-1] <= 1.0

    def test_mean_time_to_absorption_start_state(self):
        chain = build_scheme_chain(MV, MR, ErasureCode(4, 2))
        assert mean_time_to_absorption(chain, chain.states[0]) == (
            scheme_mttdl_markov(MV, MR, ErasureCode(4, 2))
        )
