"""Tests for transient CTMC analysis."""

import math

import pytest

from repro.markov.chain import MarkovChain
from repro.markov.transient import (
    exponentiality_error,
    instantaneous_loss_rate,
    loss_probability_over_time,
    survival_curve,
    transient_distribution,
)


def two_state_chain(rate=0.01):
    chain = MarkovChain()
    chain.add_state("alive")
    chain.add_state("dead", absorbing=True)
    chain.add_transition("alive", "dead", rate)
    return chain


def repairable_chain():
    chain = MarkovChain()
    chain.add_state("up")
    chain.add_state("degraded")
    chain.add_state("lost", absorbing=True)
    chain.add_transition("up", "degraded", 0.01)
    chain.add_transition("degraded", "up", 1.0)
    chain.add_transition("degraded", "lost", 0.02)
    return chain


class TestTransientDistribution:
    def test_time_zero_is_initial_distribution(self):
        distribution = transient_distribution(two_state_chain(), 0.0)
        assert distribution["alive"] == pytest.approx(1.0)
        assert distribution["dead"] == pytest.approx(0.0)

    def test_matches_exponential_for_pure_death(self):
        rate = 0.01
        distribution = transient_distribution(two_state_chain(rate), 50.0)
        assert distribution["dead"] == pytest.approx(1.0 - math.exp(-rate * 50.0))

    def test_distribution_sums_to_one(self):
        distribution = transient_distribution(repairable_chain(), 500.0)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            transient_distribution(two_state_chain(), -1.0)


class TestLossProbability:
    def test_monotone_in_time(self):
        chain = repairable_chain()
        times = [10.0, 100.0, 1000.0, 10000.0]
        probabilities = [loss_probability_over_time(chain, t) for t in times]
        assert probabilities == sorted(probabilities)

    def test_approaches_one_for_long_horizons(self):
        chain = repairable_chain()
        assert loss_probability_over_time(chain, 1e6) > 0.99

    def test_survival_curve_complements_loss(self):
        chain = repairable_chain()
        times = [10.0, 100.0, 1000.0]
        curve = survival_curve(chain, times)
        for t in times:
            assert curve[t] == pytest.approx(
                1.0 - loss_probability_over_time(chain, t)
            )

    def test_survival_curve_rejects_negative_times(self):
        with pytest.raises(ValueError):
            survival_curve(repairable_chain(), [-1.0])


class TestHazardRate:
    def test_pure_death_hazard_is_flat(self):
        chain = two_state_chain(0.05)
        early = instantaneous_loss_rate(chain, 1.0)
        late = instantaneous_loss_rate(chain, 50.0)
        assert early == pytest.approx(0.05, rel=1e-6)
        assert late == pytest.approx(0.05, rel=1e-6)

    def test_repairable_chain_hazard_settles_near_inverse_mttdl(self):
        from repro.markov.absorbing import mean_time_to_absorption

        chain = repairable_chain()
        mttdl = mean_time_to_absorption(chain)
        settled = instantaneous_loss_rate(chain, 50.0)
        assert settled == pytest.approx(1.0 / mttdl, rel=0.05)


class TestExponentialityError:
    def test_pure_death_process_has_negligible_error(self):
        chain = two_state_chain(0.01)
        error = exponentiality_error(chain, mttdl=100.0, times=[10.0, 50.0, 200.0])
        assert error < 1e-9

    def test_error_detects_wrong_mttdl(self):
        chain = two_state_chain(0.01)
        error = exponentiality_error(chain, mttdl=10.0, times=[50.0])
        assert error > 0.3

    def test_rejects_bad_mttdl(self):
        with pytest.raises(ValueError):
            exponentiality_error(two_state_chain(), 0.0, [1.0])
