"""Tests for the storage-system chain builders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import FaultModel
from repro.core.replication import replicated_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.markov.absorbing import mean_time_to_absorption
from repro.markov.builders import (
    HEALTHY,
    LOST,
    ONE_LATENT_DETECTED,
    ONE_LATENT_UNDETECTED,
    ONE_VISIBLE,
    build_mirrored_chain,
    build_replicated_chain,
    build_scrubbed_chain,
    mirrored_mttdl_markov,
    replicated_mttdl_markov,
)


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestMirroredChainStructure:
    def test_has_expected_states(self):
        chain = build_mirrored_chain(model())
        for state in (HEALTHY, ONE_VISIBLE, ONE_LATENT_UNDETECTED, ONE_LATENT_DETECTED, LOST):
            assert state in chain

    def test_lost_is_only_absorbing_state(self):
        chain = build_mirrored_chain(model())
        assert chain.absorbing_states == [LOST]

    def test_double_first_fault_rate_doubles_healthy_exit(self):
        m = model()
        doubled = build_mirrored_chain(m, double_first_fault_rate=True)
        single = build_mirrored_chain(m, double_first_fault_rate=False)
        assert doubled.exit_rate(HEALTHY) == pytest.approx(2.0 * single.exit_rate(HEALTHY))

    def test_correlation_raises_second_fault_rate(self):
        independent = build_mirrored_chain(model())
        correlated = build_mirrored_chain(model(correlation_factor=0.1))
        assert correlated.rate(ONE_VISIBLE, LOST) == pytest.approx(
            10.0 * independent.rate(ONE_VISIBLE, LOST)
        )

    def test_zero_detection_time_handled(self):
        chain = build_mirrored_chain(model(mean_detect_latent=0.0))
        assert chain.rate(ONE_LATENT_UNDETECTED, ONE_LATENT_DETECTED) > 0


class TestMirroredChainMttdl:
    def test_matches_raid_form_when_latent_negligible(self):
        m = model(mean_time_to_latent=1e12, mean_detect_latent=0.0)
        markov = mirrored_mttdl_markov(m)
        raid = m.mean_time_to_visible ** 2 / (2.0 * m.mean_repair_visible)
        assert markov == pytest.approx(raid, rel=0.01)

    def test_paper_convention_matches_analytic_within_factor(self):
        from repro.core.mttdl import mirrored_mttdl

        m = model()
        markov = mirrored_mttdl_markov(m, double_first_fault_rate=False)
        analytic = mirrored_mttdl(m)
        assert 0.8 <= markov / analytic <= 1.3

    def test_scrubbing_improves_markov_mttdl(self):
        scrubbed = mirrored_mttdl_markov(model(mean_detect_latent=1460.0))
        unscrubbed = mirrored_mttdl_markov(model(mean_detect_latent=2.8e5))
        assert scrubbed > 10 * unscrubbed

    def test_correlation_reduces_markov_mttdl(self):
        base = mirrored_mttdl_markov(model())
        correlated = mirrored_mttdl_markov(model(correlation_factor=0.1))
        assert correlated < base

    @given(alpha=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=20)
    def test_mttdl_monotone_in_alpha_property(self, alpha):
        low = mirrored_mttdl_markov(model(correlation_factor=alpha))
        high = mirrored_mttdl_markov(model(correlation_factor=1.0))
        assert low <= high * (1 + 1e-9)


class TestReplicatedChain:
    def test_states_are_failure_counts(self):
        chain = build_replicated_chain(1000.0, 2.0, replicas=3)
        assert chain.states == [0, 1, 2, 3]
        assert chain.absorbing_states == [3]

    def test_single_replica_mttdl_is_mean_time_to_fault(self):
        assert replicated_mttdl_markov(1000.0, 2.0, 1) == pytest.approx(1000.0)

    def test_mirrored_matches_birth_death_closed_form(self):
        mttf, mttr = 1000.0, 2.0
        lam, mu = 1.0 / mttf, 1.0 / mttr
        exact = (mu + 3 * lam) / (2 * lam ** 2)
        assert replicated_mttdl_markov(mttf, mttr, 2) == pytest.approx(exact, rel=1e-9)

    def test_more_replicas_improves_mttdl(self):
        two = replicated_mttdl_markov(1000.0, 2.0, 2)
        three = replicated_mttdl_markov(1000.0, 2.0, 3)
        assert three > two * 10

    def test_correlation_erodes_replication_gain(self):
        independent = replicated_mttdl_markov(1000.0, 2.0, 4, correlation_factor=1.0)
        correlated = replicated_mttdl_markov(1000.0, 2.0, 4, correlation_factor=0.01)
        assert correlated < independent / 100

    def test_parallel_repair_improves_mttdl(self):
        serial = replicated_mttdl_markov(1000.0, 20.0, 4, parallel_repair=False)
        parallel = replicated_mttdl_markov(1000.0, 20.0, 4, parallel_repair=True)
        assert parallel > serial

    def test_eq12_agrees_with_chain_within_order_of_magnitude(self):
        # Eq. 12 ignores the survivor-count factor and treats windows as
        # exactly overlapping; the chain keeps both.  They should agree
        # within roughly an order of magnitude for modest degrees.
        mttf, mttr, replicas, alpha = 1.0e5, 5.0, 3, 0.5
        closed_form = replicated_mttdl(mttf, mttr, replicas, alpha)
        chain = replicated_mttdl_markov(
            mttf, mttr, replicas, alpha, scale_fault_rate_with_survivors=False
        )
        ratio = max(closed_form, chain) / min(closed_form, chain)
        assert ratio < 10.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_replicated_chain(0.0, 1.0, 2)
        with pytest.raises(ValueError):
            build_replicated_chain(10.0, 0.0, 2)
        with pytest.raises(ValueError):
            build_replicated_chain(10.0, 1.0, 0)
        with pytest.raises(ValueError):
            build_replicated_chain(10.0, 1.0, 2, correlation_factor=0.0)


class TestScrubbedChain:
    def test_scrub_rate_sets_detection_transition(self):
        chain = build_scrubbed_chain(model(), audits_per_year=3.0)
        expected_mdl = HOURS_PER_YEAR / 3.0 / 2.0
        assert chain.rate(ONE_LATENT_UNDETECTED, ONE_LATENT_DETECTED) == pytest.approx(
            1.0 / expected_mdl
        )

    def test_zero_audit_rate_uses_latent_mean_time(self):
        chain = build_scrubbed_chain(model(), audits_per_year=0.0)
        assert chain.rate(ONE_LATENT_UNDETECTED, ONE_LATENT_DETECTED) == pytest.approx(
            1.0 / model().mean_time_to_latent
        )

    def test_negative_audit_rate_rejected(self):
        with pytest.raises(ValueError):
            build_scrubbed_chain(model(), audits_per_year=-1.0)

    def test_more_audits_longer_mttdl(self):
        rare = mean_time_to_absorption(build_scrubbed_chain(model(), 1.0))
        frequent = mean_time_to_absorption(build_scrubbed_chain(model(), 12.0))
        assert frequent > rare
