"""Tests for the generic CTMC builder."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain, TransitionError, chain_from_matrix


def simple_chain():
    chain = MarkovChain()
    chain.add_state("up")
    chain.add_state("degraded")
    chain.add_state("down", absorbing=True)
    chain.add_transition("up", "degraded", 0.01)
    chain.add_transition("degraded", "up", 1.0)
    chain.add_transition("degraded", "down", 0.005)
    return chain


class TestConstruction:
    def test_states_in_insertion_order(self):
        chain = simple_chain()
        assert chain.states == ["up", "degraded", "down"]

    def test_duplicate_state_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        with pytest.raises(TransitionError):
            chain.add_state("a")

    def test_ensure_state_is_idempotent(self):
        chain = MarkovChain()
        chain.ensure_state("a")
        chain.ensure_state("a")
        assert chain.states == ["a"]

    def test_ensure_state_can_mark_absorbing_later(self):
        chain = MarkovChain()
        chain.ensure_state("a")
        chain.ensure_state("a", absorbing=True)
        assert chain.is_absorbing("a")

    def test_unknown_source_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        with pytest.raises(TransitionError):
            chain.add_transition("missing", "a", 1.0)

    def test_unknown_target_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        with pytest.raises(TransitionError):
            chain.add_transition("a", "missing", 1.0)

    def test_self_loop_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        chain.add_state("b")
        with pytest.raises(TransitionError):
            chain.add_transition("a", "a", 1.0)

    def test_non_positive_rate_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        chain.add_state("b")
        with pytest.raises(TransitionError):
            chain.add_transition("a", "b", 0.0)

    def test_transition_out_of_absorbing_rejected(self):
        chain = MarkovChain()
        chain.add_state("a", absorbing=True)
        chain.add_state("b")
        with pytest.raises(TransitionError):
            chain.add_transition("a", "b", 1.0)

    def test_parallel_transitions_accumulate(self):
        chain = MarkovChain()
        chain.add_state("a")
        chain.add_state("b")
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("a", "b", 2.0)
        assert chain.rate("a", "b") == 3.0


class TestInspection:
    def test_absorbing_and_transient_partition(self):
        chain = simple_chain()
        assert chain.absorbing_states == ["down"]
        assert chain.transient_states == ["up", "degraded"]

    def test_exit_rate(self):
        chain = simple_chain()
        assert chain.exit_rate("degraded") == pytest.approx(1.005)

    def test_len_and_contains(self):
        chain = simple_chain()
        assert len(chain) == 3
        assert "up" in chain
        assert "missing" not in chain

    def test_state_index(self):
        chain = simple_chain()
        assert chain.state_index("degraded") == 1
        with pytest.raises(TransitionError):
            chain.state_index("missing")

    def test_describe_mentions_states_and_rates(self):
        text = simple_chain().describe()
        assert "degraded" in text
        assert "absorbing" in text


class TestMatrices:
    def test_generator_rows_sum_to_zero(self):
        q = simple_chain().generator_matrix()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_generator_off_diagonal_non_negative(self):
        q = simple_chain().generator_matrix()
        off_diag = q - np.diag(np.diag(q))
        assert (off_diag >= 0).all()

    def test_partitioned_shapes(self):
        t_block, a_block, transient, absorbing = simple_chain().partitioned_generator()
        assert t_block.shape == (2, 2)
        assert a_block.shape == (2, 1)
        assert transient == ["up", "degraded"]
        assert absorbing == ["down"]

    def test_initial_distribution_default(self):
        chain = simple_chain()
        p0 = chain.initial_distribution()
        assert p0[0] == 1.0
        assert p0.sum() == 1.0

    def test_initial_distribution_explicit(self):
        chain = simple_chain()
        p0 = chain.initial_distribution("degraded")
        assert p0[1] == 1.0

    def test_initial_distribution_unknown_state(self):
        with pytest.raises(TransitionError):
            simple_chain().initial_distribution("missing")


class TestValidation:
    def test_valid_chain_passes(self):
        simple_chain().validate()

    def test_empty_chain_fails(self):
        with pytest.raises(TransitionError):
            MarkovChain().validate()

    def test_stuck_transient_state_fails(self):
        chain = MarkovChain()
        chain.add_state("a")
        chain.add_state("b", absorbing=True)
        with pytest.raises(TransitionError):
            chain.validate()


class TestChainFromMatrix:
    def test_round_trip(self):
        rates = np.array([[0.0, 2.0, 0.5], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        chain = chain_from_matrix(["a", "b", "c"], rates, absorbing=["c"])
        assert chain.rate("a", "b") == 2.0
        assert chain.rate("a", "c") == 0.5
        assert chain.rate("b", "a") == 1.0
        assert chain.is_absorbing("c")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TransitionError):
            chain_from_matrix(["a", "b"], np.zeros((3, 3)))
