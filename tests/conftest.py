"""Shared fixtures for the test suite."""

import pytest

from repro.core.parameters import FaultModel
from repro.core.scenarios import (
    cheetah_correlated_scenario,
    cheetah_negligent_scenario,
    cheetah_no_scrub_scenario,
    cheetah_scrubbed_scenario,
)


@pytest.fixture
def cheetah_scrubbed_model() -> FaultModel:
    """The paper's scrubbed Cheetah mirrored pair (Section 5.4)."""
    return cheetah_scrubbed_scenario().model


@pytest.fixture
def cheetah_no_scrub_model() -> FaultModel:
    """The paper's unscrubbed Cheetah mirrored pair (Section 5.4)."""
    return cheetah_no_scrub_scenario().model


@pytest.fixture
def cheetah_correlated_model() -> FaultModel:
    """Scrubbed pair with correlation factor 0.1."""
    return cheetah_correlated_scenario().model


@pytest.fixture
def cheetah_negligent_model() -> FaultModel:
    """Rare latent faults that are never proactively detected."""
    return cheetah_negligent_scenario().model


def make_fast_model(**overrides) -> FaultModel:
    """The canonical compressed-time operating point, with overrides.

    Fault mean times are in the hundreds of hours so Monte-Carlo runs
    converge in milliseconds while preserving the paper's structure
    (latent faults five times as frequent as visible ones, scrubbing
    interval well below the latent mean time).  Tests that need variants
    override individual fields via keyword arguments.
    """
    base = dict(
        mean_time_to_visible=500.0,
        mean_time_to_latent=100.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=5.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


@pytest.fixture
def fast_model() -> FaultModel:
    """A scaled-down model whose MTTDL is short enough for quick simulation."""
    return make_fast_model()


@pytest.fixture
def fast_model_factory():
    """The :func:`make_fast_model` factory, for tests needing variants."""
    return make_fast_model
