"""Cross-validation of the vectorized batch backend.

The batch simulator must reproduce the event-driven backend's estimates
within Monte-Carlo noise on the paper's operating points — same physics,
different execution strategy.  Determinism, adaptive sampling, and the
argument validation of the ``backend`` switch are covered here too.
"""

import numpy as np
import pytest

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.batch import (
    BatchRunResult,
    PiecewiseBatchState,
    RateSegment,
    audit_interval_for,
    simulate_batch,
    simulate_batch_piecewise,
)
from repro.simulation.monte_carlo import (
    double_fault_combination_counts,
    estimate_loss_probability,
    estimate_mttdl,
)


def paper_model():
    """The paper's scrubbed Cheetah mirrored pair (Section 5.4)."""
    return FaultModel(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )


def intervals_overlap(a, b):
    (a_lo, a_hi), (b_lo, b_hi) = a.confidence_interval(), b.confidence_interval()
    return a_lo <= b_hi and b_lo <= a_hi


class TestSimulateBatch:
    @pytest.fixture(autouse=True)
    def _bind_fast_model(self, fast_model_factory):
        # The canonical compressed-time model lives in tests/conftest.py.
        self.fast_model = fast_model_factory

    def test_deterministic_for_same_seed(self):
        a = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=3)
        b = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=3)
        assert np.array_equal(a.end_time, b.end_time)
        assert np.array_equal(a.lost, b.lost)

    def test_different_seeds_differ(self):
        a = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=3)
        b = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=4)
        assert not np.array_equal(a.end_time, b.end_time)

    def test_chunks_are_independent(self):
        a = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=3, chunk=0)
        b = simulate_batch(self.fast_model(), trials=200, horizon=1e5, seed=3, chunk=1)
        assert not np.array_equal(a.end_time, b.end_time)

    def test_censored_trials_end_at_horizon(self):
        result = simulate_batch(self.fast_model(), trials=100, horizon=50.0, seed=1)
        censored = ~result.lost
        assert censored.any()
        assert np.all(result.end_time[censored] == 50.0)
        assert np.all(result.first_fault_type[censored] == -1)

    def test_lost_trials_have_fault_types(self):
        result = simulate_batch(self.fast_model(), trials=300, horizon=1e6, seed=2)
        assert result.lost.all()
        assert np.all(result.first_fault_type[result.lost] > 0)
        assert np.all(result.final_fault_type[result.lost] > 0)
        assert np.all(result.end_time[result.lost] < 1e6)

    def test_single_replica_loses_at_first_fault(self):
        model = self.fast_model()
        result = simulate_batch(model, trials=2000, horizon=1e5, seed=5, replicas=1)
        assert result.lost.all()
        # Mean time to the first of two competing exponentials.
        expected = 1.0 / (1.0 / 500.0 + 1.0 / 100.0)
        assert result.end_time.mean() == pytest.approx(expected, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_batch(self.fast_model(), trials=0, horizon=1e5)
        with pytest.raises(ValueError):
            simulate_batch(self.fast_model(), trials=10, horizon=0.0)
        with pytest.raises(ValueError):
            simulate_batch(self.fast_model(), trials=10, horizon=1e5, replicas=0)

    def test_audit_interval_matches_event_backend_convention(self):
        assert audit_interval_for(self.fast_model()) == pytest.approx(10.0)
        assert audit_interval_for(self.fast_model(), audits_per_year=0.0) is None
        assert audit_interval_for(
            self.fast_model(), audits_per_year=12.0
        ) == pytest.approx(HOURS_PER_YEAR / 12.0)
        # MDL no better than the latent mean time means no scrubbing.
        assert audit_interval_for(self.fast_model(mean_detect_latent=100.0)) is None

    def test_combination_counts_sum_to_losses(self):
        result = simulate_batch(self.fast_model(), trials=300, horizon=1e6, seed=9)
        counts = result.combination_counts()
        assert sum(counts.values()) == result.losses


class TestBackendCrossValidation:
    @pytest.fixture(autouse=True)
    def _bind_fast_model(self, fast_model_factory):
        # The canonical compressed-time model lives in tests/conftest.py.
        self.fast_model = fast_model_factory

    def test_mttdl_matches_event_backend(self):
        model = self.fast_model()
        event = estimate_mttdl(model, trials=300, seed=2, max_time=1e6)
        batch = estimate_mttdl(
            model, trials=2000, seed=2, max_time=1e6, backend="batch"
        )
        assert intervals_overlap(event, batch)

    def test_mttdl_matches_with_correlation(self):
        model = self.fast_model(correlation_factor=0.2)
        event = estimate_mttdl(model, trials=300, seed=4, max_time=1e6)
        batch = estimate_mttdl(
            model, trials=2000, seed=4, max_time=1e6, backend="batch"
        )
        assert intervals_overlap(event, batch)
        # Correlation must hurt in both backends.
        independent = estimate_mttdl(
            self.fast_model(), trials=2000, seed=4, max_time=1e6, backend="batch"
        )
        assert batch.mean < independent.mean

    def test_mttdl_matches_with_three_replicas(self):
        model = self.fast_model()
        event = estimate_mttdl(model, trials=150, seed=6, max_time=1e7, replicas=3)
        batch = estimate_mttdl(
            model, trials=1500, seed=6, max_time=1e7, replicas=3, backend="batch"
        )
        assert intervals_overlap(event, batch)

    def test_loss_probability_matches_event_backend(self):
        model = self.fast_model()
        event = estimate_loss_probability(
            model, mission_time=1500.0, trials=400, seed=3
        )
        batch = estimate_loss_probability(
            model, mission_time=1500.0, trials=4000, seed=3, backend="batch"
        )
        assert intervals_overlap(event, batch)

    def test_loss_probability_on_paper_operating_point(self):
        # The paper's 50-year mission on the scrubbed Cheetah pair: loss
        # is rare, so both backends must report a probability near zero
        # with overlapping confidence intervals.
        model = paper_model()
        mission = 50.0 * HOURS_PER_YEAR
        event = estimate_loss_probability(
            model, mission_time=mission, trials=150, seed=1
        )
        batch = estimate_loss_probability(
            model, mission_time=mission, trials=3000, seed=1, backend="batch"
        )
        assert intervals_overlap(event, batch)
        # The scrubbed pair's MTTDL is ~2.5k years, so ~2% loss risk in
        # a 50-year mission; both backends must sit in that regime.
        assert 0.001 < batch.mean < 0.05

    def test_scrubbing_improves_batch_mttdl(self):
        base = self.fast_model()
        scrubbed = estimate_mttdl(
            base, trials=2000, seed=3, max_time=1e6, backend="batch"
        )
        unscrubbed = estimate_mttdl(
            base.with_detection_time(base.mean_time_to_latent),
            trials=2000,
            seed=3,
            max_time=1e6,
            backend="batch",
        )
        assert scrubbed.mean > unscrubbed.mean

    def test_double_fault_combinations_match(self):
        model = self.fast_model(mean_detect_latent=100.0)
        event = double_fault_combination_counts(
            model, trials=200, seed=8, max_time=1e6
        )
        batch = double_fault_combination_counts(
            model, trials=2000, seed=8, max_time=1e6, backend="batch"
        )
        assert set(batch) == set(event)
        # With slow detection, latent-first losses dominate in both.
        for counts in (event, batch):
            latent_first = (
                counts[(FaultType.LATENT, FaultType.VISIBLE)]
                + counts[(FaultType.LATENT, FaultType.LATENT)]
            )
            visible_first = (
                counts[(FaultType.VISIBLE, FaultType.VISIBLE)]
                + counts[(FaultType.VISIBLE, FaultType.LATENT)]
            )
            assert latent_first > visible_first
        # The dominant-combination *fractions* agree within coarse noise.
        event_total = sum(event.values())
        batch_total = sum(batch.values())
        key = (FaultType.LATENT, FaultType.LATENT)
        assert event[key] / event_total == pytest.approx(
            batch[key] / batch_total, abs=0.1
        )

    def test_batch_rejects_factory(self):
        with pytest.raises(ValueError):
            estimate_mttdl(
                factory=lambda streams: None, trials=10, backend="batch"
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            estimate_mttdl(self.fast_model(), trials=10, backend="gpu")


class TestAdaptiveSampling:
    @pytest.fixture(autouse=True)
    def _bind_fast_model(self, fast_model_factory):
        # The canonical compressed-time model lives in tests/conftest.py.
        self.fast_model = fast_model_factory

    def test_extends_until_target_met(self):
        estimate = estimate_mttdl(
            self.fast_model(),
            trials=100,
            seed=5,
            max_time=1e6,
            backend="batch",
            target_relative_error=0.02,
        )
        # 1/sqrt(losses) <= 0.02 needs >= 2500 losses, i.e. many chunks.
        assert estimate.trials > 100
        assert estimate.relative_error <= 0.02

    def test_single_chunk_when_target_already_met(self):
        estimate = estimate_mttdl(
            self.fast_model(),
            trials=500,
            seed=5,
            max_time=1e6,
            backend="batch",
            target_relative_error=0.2,
        )
        assert estimate.trials == 500

    def test_respects_max_trials(self):
        estimate = estimate_mttdl(
            self.fast_model(),
            trials=100,
            seed=5,
            max_time=1e6,
            backend="batch",
            target_relative_error=0.001,
            max_trials=400,
        )
        assert estimate.trials == 400
        assert estimate.relative_error > 0.001

    def test_max_trials_is_a_hard_cap_for_partial_chunks(self):
        # A cap that is not a multiple of the chunk size clamps the
        # final chunk instead of overshooting by up to trials - 1.
        estimate = estimate_mttdl(
            self.fast_model(),
            trials=100,
            seed=5,
            max_time=1e6,
            backend="batch",
            target_relative_error=1e-9,
            max_trials=150,
        )
        assert estimate.trials == 150

    def test_max_trials_below_initial_rejected(self):
        with pytest.raises(ValueError):
            estimate_mttdl(
                self.fast_model(),
                trials=100,
                backend="batch",
                target_relative_error=0.1,
                max_trials=50,
            )

    def test_adaptive_is_reproducible(self):
        kwargs = dict(
            trials=200,
            seed=7,
            max_time=1e6,
            backend="batch",
            target_relative_error=0.05,
        )
        a = estimate_mttdl(self.fast_model(), **kwargs)
        b = estimate_mttdl(self.fast_model(), **kwargs)
        assert a.mean == b.mean
        assert a.trials == b.trials

    def test_adaptive_works_on_event_backend(self):
        estimate = estimate_mttdl(
            self.fast_model(),
            trials=40,
            seed=5,
            max_time=1e6,
            backend="event",
            target_relative_error=0.1,
        )
        assert estimate.trials >= 100
        assert estimate.relative_error <= 0.1

    def test_adaptive_loss_probability(self):
        estimate = estimate_loss_probability(
            self.fast_model(),
            mission_time=1500.0,
            trials=200,
            seed=5,
            backend="batch",
            target_relative_error=0.02,
        )
        assert estimate.relative_error <= 0.02
        assert 0.0 < estimate.mean < 1.0


class TestBatchRunResultProperties:
    def test_counts(self):
        result = BatchRunResult(
            lost=np.array([True, False, True]),
            end_time=np.array([10.0, 100.0, 20.0]),
            first_fault_type=np.array([1, -1, 2], dtype=np.int8),
            final_fault_type=np.array([2, -1, 2], dtype=np.int8),
            horizon=100.0,
            sweeps=7,
        )
        assert result.trials == 3
        assert result.losses == 2
        assert result.censored == 1
        assert result.total_observed_time == pytest.approx(130.0)
        counts = result.combination_counts()
        assert counts[(FaultType.VISIBLE, FaultType.LATENT)] == 1
        assert counts[(FaultType.LATENT, FaultType.LATENT)] == 1
        assert sum(counts.values()) == 2


class TestPiecewiseTimeline:
    """Epoch/horizon boundary handling of the piecewise kernel.

    The contract under test: a fault clock drawn in one rate regime is
    exposure-corrected when rates change mid-trial, so a boundary where
    nothing changes is exactly a no-op and a genuine rate change is
    distributionally exact (memorylessness + exponential scaling).
    """

    def fast_model(self, **overrides):
        base = dict(
            mean_time_to_visible=500.0,
            mean_time_to_latent=100.0,
            mean_repair_visible=1.0,
            mean_repair_latent=1.0,
            mean_detect_latent=5.0,
            correlation_factor=1.0,
        )
        base.update(overrides)
        return FaultModel(**base)

    @pytest.mark.parametrize("alpha", [1.0, 0.2])
    def test_identical_two_epoch_timeline_matches_single_epoch_exactly(
        self, alpha
    ):
        model = self.fast_model(correlation_factor=alpha)
        single = simulate_batch_piecewise(
            [RateSegment(model, 1e5)], trials=2000, seed=7
        )
        double = simulate_batch_piecewise(
            [RateSegment(model, 4e4), RateSegment(model, 1e5)],
            trials=2000,
            seed=7,
        )
        assert np.array_equal(single.lost, double.lost)
        assert np.array_equal(single.end_time, double.end_time)
        assert np.array_equal(
            single.first_fault_type, double.first_fault_type
        )
        assert np.array_equal(
            single.final_fault_type, double.final_fault_type
        )

    def test_equal_valued_distinct_models_are_still_a_no_op(self):
        # The boundary compares rates by value, not identity.
        a = self.fast_model()
        b = self.fast_model()
        single = simulate_batch_piecewise(
            [RateSegment(a, 5e4)], trials=1000, seed=9
        )
        double = simulate_batch_piecewise(
            [RateSegment(a, 2e4), RateSegment(b, 5e4)], trials=1000, seed=9
        )
        assert np.array_equal(single.lost, double.lost)
        assert np.array_equal(single.end_time, double.end_time)

    def test_single_segment_agrees_with_simulate_batch(self):
        model = self.fast_model()
        reference = simulate_batch(
            model, trials=40000, horizon=2000.0, seed=11
        )
        piecewise = simulate_batch_piecewise(
            [RateSegment(model, 2000.0)], trials=40000, seed=12
        )
        p_ref = reference.losses / reference.trials
        p_pw = piecewise.losses / piecewise.trials
        combined_se = np.sqrt(
            p_ref * (1 - p_ref) / reference.trials
            + p_pw * (1 - p_pw) / piecewise.trials
        )
        assert abs(p_ref - p_pw) < 5 * combined_se

    def test_switch_to_safe_regime_stops_new_losses(self):
        model = self.fast_model()
        safe = self.fast_model(
            mean_time_to_visible=1e13, mean_time_to_latent=1e13
        )
        result = simulate_batch_piecewise(
            [RateSegment(model, 3000.0), RateSegment(safe, 1e5)],
            trials=2000,
            seed=3,
        )
        assert result.losses > 0
        # Losses after the boundary can only finish windows opened
        # before it: one latent detection interval (2 * MDL) plus both
        # repairs bounds them.
        margin = 2.0 * 5.0 + 1.0 + 1.0
        assert result.end_time[result.lost].max() <= 3000.0 + margin

    def test_disabling_scrubbing_at_a_boundary_strands_latents(self):
        # Latent-dominated model: after the audit grid is switched off,
        # undetected latent faults never recover, so losses rise sharply
        # versus keeping the grid (same seed, same fault clocks).
        model = self.fast_model(
            mean_time_to_visible=1e9, mean_time_to_latent=5000.0
        )
        scrubbed = simulate_batch_piecewise(
            [RateSegment(model, 500.0), RateSegment(model, 4000.0)],
            trials=2000,
            seed=5,
        )
        unscrubbed = simulate_batch_piecewise(
            [
                RateSegment(model, 500.0),
                RateSegment(model, 4000.0, audits_per_year=0.0),
            ],
            trials=2000,
            seed=5,
        )
        assert unscrubbed.losses > 2 * scrubbed.losses

    def test_validation(self):
        model = self.fast_model()
        with pytest.raises(ValueError):
            simulate_batch_piecewise([], trials=10)
        with pytest.raises(ValueError):
            simulate_batch_piecewise(
                [RateSegment(model, 100.0), RateSegment(model, 100.0)],
                trials=10,
            )
        with pytest.raises(ValueError):
            RateSegment(model, 0.0)
        with pytest.raises(ValueError):
            PiecewiseBatchState(model, trials=0)


class TestPiecewiseStateMachine:
    def fast_model(self):
        return FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)

    def test_inject_faults_on_every_replica_loses_the_trial(self):
        state = PiecewiseBatchState(self.fast_model(), trials=8, replicas=2)
        members = np.array([0, 3, 5])
        hits = np.ones((3, 2), dtype=bool)
        state.inject_faults(10.0, members, hits)
        assert state.lost[members].all()
        assert np.count_nonzero(state.lost) == 3
        assert state.end_time[members].tolist() == [10.0, 10.0, 10.0]
        assert state.shock_faults == 6

    def test_partial_hit_degrades_without_losing(self):
        state = PiecewiseBatchState(self.fast_model(), trials=4, replicas=2)
        hits = np.zeros((1, 2), dtype=bool)
        hits[0, 0] = True
        state.inject_faults(5.0, np.array([1]), hits)
        assert not state.lost.any()
        assert state.state[1, 0] != 0
        # The struck replica repairs (visible fault, MRV = 1h).
        assert state.recovery[1, 0] == pytest.approx(6.0)

    def test_injection_on_lost_members_is_a_no_op(self):
        state = PiecewiseBatchState(self.fast_model(), trials=2, replicas=2)
        state.inject_faults(1.0, np.array([0]), np.ones((1, 2), dtype=bool))
        faults_before = state.shock_faults
        state.inject_faults(2.0, np.array([0]), np.ones((1, 2), dtype=bool))
        assert state.shock_faults == faults_before

    def test_cannot_advance_backwards_or_inject_in_the_past(self):
        state = PiecewiseBatchState(self.fast_model(), trials=2)
        state.advance_to(100.0)
        with pytest.raises(ValueError):
            state.advance_to(50.0)
        with pytest.raises(ValueError):
            state.inject_faults(
                50.0, np.array([0]), np.ones((1, 2), dtype=bool)
            )

    def test_result_censors_survivors_at_current_time(self):
        state = PiecewiseBatchState(self.fast_model(), trials=50)
        state.advance_to(200.0)
        result = state.result()
        assert result.horizon == 200.0
        assert np.all(result.end_time[~result.lost] == 200.0)

    def test_repair_year_histogram_tracks_completions(self):
        state = PiecewiseBatchState(
            self.fast_model(), trials=200, track_years=1
        )
        state.advance_to(2000.0)
        assert state.repair_year_counts is not None
        assert state.repair_year_counts.sum() == state.repairs.sum()
