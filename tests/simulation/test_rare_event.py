"""Tests for the rare-event acceleration machinery.

Covers the failure-biased importance sampling mode of the batch backend
(weight validity, estimator agreement with plain Monte-Carlo and the
exact Markov chain), the fixed-effort multilevel-splitting estimator on
the event backend (including snapshot/resume), the automatic method
selection, and the bias-choice heuristic.
"""

import math

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import build_mirrored_chain, mirrored_mttdl_markov
from repro.markov.transient import loss_probability_over_time
from repro.simulation.batch import simulate_batch
from repro.simulation.correlation import SharedFateShocks
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import ExponentialFaultProcess
from repro.simulation.monte_carlo import (
    estimate_loss_probability,
    estimate_mttdl,
)
from repro.simulation.rare_event import (
    WeightedLossTally,
    analytic_loss_rate,
    default_failure_bias,
    effective_sample_size,
    mttdl_from_loss_probability,
    splitting_loss_probability,
)
from repro.simulation.repair import ImmediateRepair
from repro.simulation.scrubbing import PeriodicScrubbing
from repro.simulation.system import (
    ReplicatedStorageSystem,
    SystemConfig,
    system_from_fault_model,
)

MISSION = 50.0 * HOURS_PER_YEAR


def paper_moderate_model():
    """The paper's scrubbed Cheetah pair: ~2% loss in 50 years."""
    return FaultModel(1.4e6, 2.8e5, 1.0 / 3.0, 1.0 / 3.0, 1460.0, 1.0)


def paper_rare_model():
    """Daily-scrubbed Cheetah pair: ~1.7e-4 loss in 50 years."""
    return FaultModel(1.4e6, 2.8e5, 1.0 / 3.0, 1.0 / 3.0, 12.0, 1.0)


def intervals_overlap(a, b):
    (a_lo, a_hi), (b_lo, b_hi) = a.confidence_interval(), b.confidence_interval()
    return a_lo <= b_hi and b_lo <= a_hi


class TestAnalyticLossRate:
    def test_matches_optimizer_screen(self, cheetah_scrubbed_model):
        from repro.optimize.evaluate import screen_loss_rate

        for replicas in (2, 3, 4):
            assert analytic_loss_rate(
                cheetah_scrubbed_model, replicas
            ) == pytest.approx(
                screen_loss_rate(cheetah_scrubbed_model, replicas), rel=1e-12
            )

    def test_single_replica_is_total_fault_rate(self, cheetah_scrubbed_model):
        assert analytic_loss_rate(cheetah_scrubbed_model, 1) == pytest.approx(
            cheetah_scrubbed_model.total_fault_rate
        )

    def test_rejects_zero_replicas(self, cheetah_scrubbed_model):
        with pytest.raises(ValueError):
            analytic_loss_rate(cheetah_scrubbed_model, 0)


class TestDefaultFailureBias:
    def test_rare_point_gets_accelerated(self):
        bias = default_failure_bias(paper_rare_model(), 2, MISSION)
        assert bias > 100.0

    def test_lossy_point_is_not_biased(self, fast_model):
        assert default_failure_bias(fast_model, 2, 1e6) == 1.0

    def test_single_replica_is_not_biased(self):
        assert default_failure_bias(paper_rare_model(), 1, MISSION) == 1.0

    def test_cap(self):
        nearly_immortal = FaultModel(1e12, 1e12, 1e-6, 1e-6, 1.0, 1.0)
        assert default_failure_bias(nearly_immortal, 2, 1000.0) == 1e4

    def test_explicit_target_steers_the_bias(self):
        model = paper_rare_model()
        gentle = default_failure_bias(model, 2, MISSION, target=0.05)
        aggressive = default_failure_bias(model, 2, MISSION, target=0.5)
        assert 1.0 < gentle < aggressive <= 1e4

    def test_triple_replication_bias_is_within_bounds(self):
        bias = default_failure_bias(paper_rare_model(), 3, MISSION)
        assert 1.0 < bias <= 1e4


class TestEffectiveSampleSize:
    def test_unit_weights(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50.0)

    def test_degenerate_weights(self):
        weights = np.array([1e9] + [1.0] * 99)
        assert effective_sample_size(weights) == pytest.approx(1.0, rel=1e-6)

    def test_empty(self):
        assert effective_sample_size(np.array([])) == 0.0


class TestImportanceWeights:
    """Satellite: weight validity and estimator agreement across seeds."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_is_and_standard_agree_within_ci_overlap(self, seed):
        # Moderate operating point where both estimators converge: the
        # paper's scrubbed Cheetah pair at ~2% mission loss.
        model = paper_moderate_model()
        standard = estimate_loss_probability(
            model,
            mission_time=MISSION,
            trials=3000,
            seed=seed,
            backend="batch",
            method="standard",
        )
        weighted = estimate_loss_probability(
            model, mission_time=MISSION, trials=3000, seed=seed, method="is"
        )
        assert standard.losses > 0
        assert weighted.method == "is"
        assert intervals_overlap(standard, weighted)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_weights_are_finite_and_positive(self, seed):
        result = simulate_batch(
            paper_moderate_model(),
            trials=2000,
            horizon=MISSION,
            seed=seed,
            bias=25.0,
        )
        assert result.log_weight is not None
        assert np.isfinite(result.log_weight).all()
        weights = result.weights
        assert np.isfinite(weights).all()
        assert (weights > 0).all()

    def test_unbiased_run_has_unit_weights(self):
        result = simulate_batch(
            paper_moderate_model(), trials=100, horizon=MISSION, seed=1
        )
        assert result.log_weight is None
        assert np.all(result.weights == 1.0)

    def test_bias_of_one_is_the_plain_backend(self):
        plain = simulate_batch(
            paper_moderate_model(), trials=500, horizon=MISSION, seed=3
        )
        unit = simulate_batch(
            paper_moderate_model(), trials=500, horizon=MISSION, seed=3, bias=1.0
        )
        assert np.array_equal(plain.end_time, unit.end_time)
        assert unit.log_weight is None

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(
                paper_moderate_model(), trials=10, horizon=1e4, bias=0.0
            )


class TestImportanceSampledEstimates:
    def test_loss_ci_covers_markov_exact_at_rare_point(self):
        model = paper_rare_model()
        exact = loss_probability_over_time(build_mirrored_chain(model), MISSION)
        estimate = estimate_loss_probability(
            model,
            mission_time=MISSION,
            trials=2000,
            seed=5,
            method="is",
            target_relative_error=0.1,
        )
        low, high = estimate.confidence_interval()
        assert low <= exact <= high
        assert estimate.relative_error <= 0.1
        assert estimate.effective_sample_size > 50

    def test_mttdl_ci_covers_markov_exact_at_rare_point(self):
        model = paper_rare_model()
        exact = mirrored_mttdl_markov(model)
        estimate = estimate_mttdl(
            model,
            trials=2000,
            seed=5,
            max_time=MISSION,
            method="is",
            target_relative_error=0.1,
        )
        low, high = estimate.confidence_interval()
        assert low <= exact <= high
        assert estimate.method == "is"

    def test_explicit_bias_is_honoured_and_reproducible(self):
        model = paper_rare_model()
        kwargs = dict(
            mission_time=MISSION, trials=1000, seed=9, method="is", bias=500.0
        )
        a = estimate_loss_probability(model, **kwargs)
        b = estimate_loss_probability(model, **kwargs)
        assert a.mean == b.mean
        assert a.trials == b.trials

    def test_adaptive_is_extends_until_target(self):
        estimate = estimate_loss_probability(
            paper_rare_model(),
            mission_time=MISSION,
            trials=500,
            seed=4,
            method="is",
            target_relative_error=0.05,
        )
        assert estimate.trials > 500
        assert estimate.relative_error <= 0.05

    def test_is_requires_a_model(self):
        with pytest.raises(ValueError):
            estimate_loss_probability(
                factory=lambda streams: None,
                mission_time=1e4,
                trials=10,
                method="is",
            )

    def test_splitting_rejected_for_mttdl(self, fast_model):
        with pytest.raises(ValueError):
            estimate_mttdl(fast_model, trials=10, method="splitting")

    def test_unknown_method_rejected(self, fast_model):
        with pytest.raises(ValueError):
            estimate_loss_probability(fast_model, trials=10, method="antithetic")


class TestWeightedLossTally:
    def test_unit_weight_tally_matches_binomial(self):
        tally = WeightedLossTally()
        result = simulate_batch(
            paper_moderate_model(), trials=2000, horizon=MISSION, seed=2
        )
        tally.add(result)
        p = result.losses / result.trials
        assert tally.mean == pytest.approx(p)
        assert tally.ess == pytest.approx(float(result.losses))
        binomial = math.sqrt(p * (1.0 - p) / result.trials)
        assert tally.std_error == pytest.approx(binomial, rel=0.05)

    def test_chunks_accumulate(self):
        one = WeightedLossTally()
        two = WeightedLossTally()
        chunks = [
            simulate_batch(
                paper_moderate_model(),
                trials=500,
                horizon=MISSION,
                seed=2,
                chunk=index,
                bias=10.0,
            )
            for index in range(2)
        ]
        for chunk in chunks:
            one.add(chunk)
        two.add(chunks[0])
        assert one.trials == 1000
        assert one.losses >= two.losses
        assert one.mean > 0

    def test_empty_tally_is_unconverged(self):
        tally = WeightedLossTally()
        assert tally.relative_error == math.inf


class TestMttdlInversion:
    def test_small_probability_reduces_to_horizon_over_p(self):
        from repro.simulation.monte_carlo import MonteCarloEstimate

        p = MonteCarloEstimate(mean=1e-6, std_error=1e-7, trials=1000)
        mttdl = mttdl_from_loss_probability(p, 1e4)
        assert mttdl.mean == pytest.approx(1e4 / 1e-6, rel=1e-3)
        assert mttdl.std_error == pytest.approx(mttdl.mean * 0.1, rel=1e-2)

    def test_zero_probability_gives_infinite_mttdl(self):
        from repro.simulation.monte_carlo import MonteCarloEstimate

        p = MonteCarloEstimate(mean=0.0, std_error=0.0, trials=100)
        mttdl = mttdl_from_loss_probability(p, 1e4)
        assert mttdl.mean == math.inf

    def test_rejects_bad_horizon(self):
        from repro.simulation.monte_carlo import MonteCarloEstimate

        with pytest.raises(ValueError):
            mttdl_from_loss_probability(
                MonteCarloEstimate(0.1, 0.01, 10), 0.0
            )


class TestAutoMethod:
    def test_auto_switches_to_is_on_rare_model(self):
        estimate = estimate_loss_probability(
            paper_rare_model(),
            mission_time=MISSION,
            trials=500,
            seed=3,
            backend="batch",
            method="auto",
        )
        assert estimate.method == "is"
        assert estimate.mean > 0

    def test_auto_stays_standard_on_lossy_model(self, fast_model):
        estimate = estimate_loss_probability(
            fast_model,
            mission_time=1500.0,
            trials=500,
            seed=3,
            backend="batch",
            method="auto",
        )
        assert estimate.method == "standard"

    def test_auto_uses_splitting_for_factories(self, fast_model):
        # A custom factory cannot run on the batch backend, so the
        # rare-event fallback must be splitting.  Tight repairs make the
        # factory-built pair reliable enough to trigger the switch.
        model = FaultModel(500.0, 100.0, 0.01, 0.01, 0.05, 1.0)

        def factory(streams):
            return system_from_fault_model(model, replicas=2, streams=streams)

        estimate = estimate_loss_probability(
            factory=factory,
            mission_time=50.0,
            trials=100,
            seed=3,
            method="auto",
        )
        assert estimate.method == "splitting"

    def test_auto_with_custom_factory_switches_to_splitting_not_model_is(self):
        # Regression: when both a model and a factory are given, the
        # factory owns the system being estimated.  A censoring pilot
        # must therefore fall back to splitting on the factory, never to
        # importance-sampling the bare model (a silently different
        # system).
        reliable = FaultModel(500.0, 100.0, 0.01, 0.01, 0.05, 1.0)

        def factory(streams):
            return system_from_fault_model(reliable, replicas=2, streams=streams)

        estimate = estimate_loss_probability(
            model=paper_moderate_model(),  # would read ~2e-2 if estimated
            factory=factory,
            mission_time=50.0,
            trials=100,
            seed=3,
            method="auto",
        )
        assert estimate.method == "splitting"
        assert estimate.mean < 1e-2

    def test_auto_mttdl_keeps_a_converged_censoring_pilot(self):
        # Regression: ~30% censoring used to trigger the IS switch even
        # when the standard pilot had already met the adaptive target,
        # throwing away converged work.
        estimate = estimate_mttdl(
            FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0),
            trials=1000,
            seed=3,
            max_time=900.0,
            backend="batch",
            method="auto",
            target_relative_error=0.05,
        )
        assert estimate.censored / estimate.trials > 0.2
        assert estimate.method == "standard"
        assert estimate.relative_error <= 0.05

    def test_auto_mttdl_with_custom_factory_stays_standard(self):
        # MTTDL has no splitting fallback, so a censoring factory pilot
        # must finish standard (and warn) rather than IS a bare model.
        reliable = FaultModel(500.0, 100.0, 0.01, 0.01, 0.05, 1.0)

        def factory(streams):
            return system_from_fault_model(reliable, replicas=2, streams=streams)

        with pytest.warns(Warning):
            estimate = estimate_mttdl(
                model=paper_moderate_model(),
                factory=factory,
                trials=50,
                seed=3,
                max_time=200.0,
                method="auto",
            )
        assert estimate.method == "standard"

    def test_auto_mttdl_switches_on_censoring(self):
        estimate = estimate_mttdl(
            paper_rare_model(),
            trials=300,
            seed=3,
            max_time=MISSION,
            backend="batch",
            method="auto",
        )
        assert estimate.method == "is"
        assert math.isfinite(estimate.mean)


class TestSplitting:
    def test_agrees_with_standard_at_moderate_point(self, fast_model):
        standard = estimate_loss_probability(
            fast_model,
            mission_time=1500.0,
            trials=20000,
            seed=6,
            backend="batch",
            method="standard",
        )
        split = estimate_loss_probability(
            fast_model,
            mission_time=1500.0,
            trials=400,
            seed=6,
            method="splitting",
        )
        assert split.method == "splitting"
        assert intervals_overlap(standard, split)

    def test_deterministic_for_same_seed(self, fast_model):
        a = splitting_loss_probability(
            fast_model, mission_time=1500.0, trials_per_level=100, seed=4
        )
        b = splitting_loss_probability(
            fast_model, mission_time=1500.0, trials_per_level=100, seed=4
        )
        assert a.conditional == b.conditional

    def test_chunks_are_independent(self, fast_model):
        a = splitting_loss_probability(
            fast_model, mission_time=1500.0, trials_per_level=100, seed=4, chunk=0
        )
        b = splitting_loss_probability(
            fast_model, mission_time=1500.0, trials_per_level=100, seed=4, chunk=1
        )
        assert a.conditional != b.conditional

    def test_zero_hit_stage_reports_rule_of_three_error(self):
        # Faults are frequent enough for stage 1 but second faults
        # essentially never land inside the short windows: the final
        # stage sees zero hits, the estimate collapses to zero but keeps
        # an informative pseudo-error.
        model = FaultModel(5e5, 1e5, 0.01, 0.01, 0.05, 1.0)
        run = splitting_loss_probability(
            model,
            mission_time=2000.0,
            trials_per_level=50,
            seed=2,
            audits_per_year=8766.0 / 100.0,
        )
        assert run.mean == 0.0
        assert run.std_error > 0.0

    def test_three_replica_levels(self, fast_model):
        run = splitting_loss_probability(
            fast_model,
            mission_time=3000.0,
            trials_per_level=150,
            seed=7,
            replicas=3,
        )
        assert len(run.conditional) <= 3
        assert 0.0 <= run.mean <= 1.0

    def test_custom_factory_with_shocks(self):
        # Shared-fate shocks are exactly what the batch backend cannot
        # express; splitting must agree with the plain event backend.
        def factory(streams):
            config = SystemConfig(
                replicas=2,
                visible_process=ExponentialFaultProcess(8000.0),
                latent_process=ExponentialFaultProcess(4000.0),
                scrub_policy=PeriodicScrubbing(interval_hours=50.0),
                repair_policy=ImmediateRepair(visible_hours=2.0, latent_hours=2.0),
                correlation=SharedFateShocks(
                    shock_mean_time=5000.0, hit_probability=0.5
                ),
            )
            return ReplicatedStorageSystem(config, streams)

        standard = estimate_loss_probability(
            factory=factory, mission_time=2000.0, trials=800, seed=8
        )
        split = estimate_loss_probability(
            factory=factory,
            mission_time=2000.0,
            trials=250,
            seed=8,
            method="splitting",
        )
        assert standard.losses > 0
        assert intervals_overlap(standard, split)

    def test_outright_losses_keep_trial_accounting_consistent(self):
        # Regression: stage-1 shocks that lose outright propagate as
        # certain hits (None pool entries); resolving those hits must
        # still count as stage runs so losses can never exceed trials.
        def factory(streams):
            config = SystemConfig(
                replicas=2,
                visible_process=ExponentialFaultProcess(1e6),
                latent_process=ExponentialFaultProcess(1e6),
                scrub_policy=PeriodicScrubbing(interval_hours=500.0),
                repair_policy=ImmediateRepair(visible_hours=1.0, latent_hours=1.0),
                correlation=SharedFateShocks(
                    shock_mean_time=1000.0, hit_probability=0.95
                ),
            )
            return ReplicatedStorageSystem(config, streams)

        run = splitting_loss_probability(
            factory=factory, mission_time=2000.0, trials_per_level=100, seed=5
        )
        assert run.losses <= run.trials
        estimate = estimate_loss_probability(
            factory=factory,
            mission_time=2000.0,
            trials=100,
            seed=5,
            method="splitting",
        )
        assert estimate.censored >= 0
        assert 0.0 <= estimate.mean <= 1.0

    def test_validation(self, fast_model):
        with pytest.raises(ValueError):
            splitting_loss_probability(fast_model, mission_time=0.0)
        with pytest.raises(ValueError):
            splitting_loss_probability(
                fast_model, mission_time=100.0, trials_per_level=0
            )
        with pytest.raises(ValueError):
            splitting_loss_probability(mission_time=100.0)


class TestSnapshotResume:
    def _run_to_first_fault(self, seed=3):
        model = FaultModel(500.0, 100.0, 20.0, 20.0, 5.0, 1.0)
        from repro.simulation.rng import RandomStreams

        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=seed)
        )
        result = system.run(max_time=1e6, stop_when_faulty=1)
        return system, result

    def test_level_stop_reports_hit_time(self):
        system, result = self._run_to_first_fault()
        assert not result.lost
        assert result.level_hit_time is not None
        assert result.end_time == result.level_hit_time

    def test_snapshot_captures_faulty_state(self):
        system, result = self._run_to_first_fault()
        snapshot = system.capture_snapshot()
        assert snapshot.time == result.level_hit_time
        assert snapshot.faulty_count == 1

    def test_resume_continues_from_snapshot_time(self):
        system, result = self._run_to_first_fault()
        snapshot = system.capture_snapshot()
        from repro.simulation.rng import RandomStreams

        model = FaultModel(500.0, 100.0, 20.0, 20.0, 5.0, 1.0)
        fresh = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=99)
        )
        resumed = fresh.run(
            max_time=snapshot.time + 5000.0, resume_from=snapshot
        )
        assert resumed.end_time > snapshot.time

    def test_resume_already_at_level_hits_immediately(self):
        system, _ = self._run_to_first_fault()
        snapshot = system.capture_snapshot()
        from repro.simulation.rng import RandomStreams

        model = FaultModel(500.0, 100.0, 20.0, 20.0, 5.0, 1.0)
        fresh = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=100)
        )
        result = fresh.run(
            max_time=snapshot.time + 100.0,
            stop_when_faulty=1,
            resume_from=snapshot,
        )
        assert result.level_hit_time == snapshot.time

    def test_cannot_snapshot_after_loss(self, fast_model):
        from repro.simulation.rng import RandomStreams

        system = system_from_fault_model(
            fast_model, replicas=2, streams=RandomStreams(seed=2)
        )
        result = system.run(max_time=1e6)
        assert result.lost
        with pytest.raises(ValueError):
            system.capture_snapshot()

    def test_stop_when_faulty_validated(self, fast_model):
        from repro.simulation.rng import RandomStreams

        system = system_from_fault_model(
            fast_model, replicas=2, streams=RandomStreams(seed=2)
        )
        with pytest.raises(ValueError):
            system.run(max_time=100.0, stop_when_faulty=3)

    def test_engine_advance_guards(self):
        engine = SimulationEngine()
        engine.advance_to(10.0)
        assert engine.now == 10.0
        with pytest.raises(ValueError):
            engine.advance_to(5.0)
        engine.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.advance_to(20.0)


class TestWeightedLossTallyMerge:
    """merge() must behave exactly like tallying all chunks in one pass."""

    def chunks(self, count=3):
        return [
            simulate_batch(
                paper_moderate_model(),
                trials=400,
                horizon=MISSION,
                seed=4,
                chunk=index,
                bias=8.0,
            )
            for index in range(count)
        ]

    def test_merge_equals_streaming_add(self):
        chunks = self.chunks()
        streamed = WeightedLossTally()
        for chunk in chunks:
            streamed.add(chunk)
        parts = []
        for chunk in chunks:
            tally = WeightedLossTally()
            tally.add(chunk)
            parts.append(tally)
        merged = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.trials == streamed.trials
        assert merged.losses == streamed.losses
        assert merged.sum_x == pytest.approx(streamed.sum_x)
        assert merged.sum_x_sq == pytest.approx(streamed.sum_x_sq)
        assert merged.mean == pytest.approx(streamed.mean)
        assert merged.std_error == pytest.approx(streamed.std_error)

    def test_merge_is_commutative(self):
        chunks = self.chunks(2)
        a, b = WeightedLossTally(), WeightedLossTally()
        a.add(chunks[0])
        b.add(chunks[1])
        ab, ba = a.merge(b), b.merge(a)
        assert ab.trials == ba.trials
        assert ab.losses == ba.losses
        assert ab.sum_x == pytest.approx(ba.sum_x)
        assert ab.sum_x_sq == pytest.approx(ba.sum_x_sq)

    def test_merge_is_associative(self):
        parts = []
        for chunk in self.chunks():
            tally = WeightedLossTally()
            tally.add(chunk)
            parts.append(tally)
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.trials == right.trials
        assert left.losses == right.losses
        assert left.sum_x == pytest.approx(right.sum_x)
        assert left.sum_x_sq == pytest.approx(right.sum_x_sq)

    def test_merge_does_not_mutate_operands(self):
        chunks = self.chunks(2)
        a, b = WeightedLossTally(), WeightedLossTally()
        a.add(chunks[0])
        b.add(chunks[1])
        before = (a.trials, a.losses, a.sum_x, a.sum_x_sq)
        a.merge(b)
        assert (a.trials, a.losses, a.sum_x, a.sum_x_sq) == before

    def test_merge_with_empty_is_identity(self):
        tally = WeightedLossTally()
        tally.add(self.chunks(1)[0])
        merged = tally.merge(WeightedLossTally())
        assert merged.trials == tally.trials
        assert merged.mean == pytest.approx(tally.mean)
        assert merged.ess == pytest.approx(tally.ess)
