"""Tests for scrubbing policies, repair policies, and correlation models."""

import numpy as np
import pytest

from repro.core.faults import FaultType
from repro.simulation.correlation import (
    EmpiricalCorrelationEstimate,
    IndependentFaults,
    MultiplicativeCorrelation,
    SharedFateShocks,
)
from repro.simulation.repair import (
    HotSpareRepair,
    ImmediateRepair,
    OfflineMediaRepair,
    OperatorRepair,
)
from repro.simulation.scrubbing import (
    NoScrubbing,
    OnAccessDetection,
    PeriodicScrubbing,
    PoissonScrubbing,
    policy_for_audits_per_year,
)


class TestScrubPolicies:
    def test_no_scrubbing_never_audits(self):
        policy = NoScrubbing()
        assert policy.next_audit_delay(np.random.default_rng(0)) == float("inf")
        assert policy.expected_detection_delay() == float("inf")
        assert policy.audits_per_year() == 0.0

    def test_periodic_delay_is_constant(self):
        policy = PeriodicScrubbing(interval_hours=100.0)
        rng = np.random.default_rng(0)
        assert policy.next_audit_delay(rng) == 100.0
        assert policy.next_audit_delay(rng) == 100.0

    def test_periodic_expected_delay_half_interval(self):
        policy = PeriodicScrubbing(interval_hours=2920.0)
        assert policy.expected_detection_delay() == pytest.approx(1460.0)

    def test_periodic_imperfect_coverage_lengthens_delay(self):
        perfect = PeriodicScrubbing(interval_hours=100.0, coverage=1.0)
        flaky = PeriodicScrubbing(interval_hours=100.0, coverage=0.5)
        assert flaky.expected_detection_delay() > perfect.expected_detection_delay()

    def test_periodic_audits_per_year(self):
        policy = PeriodicScrubbing(interval_hours=2920.0)
        assert policy.audits_per_year() == pytest.approx(3.0)

    def test_poisson_delays_vary(self):
        policy = PoissonScrubbing(mean_interval_hours=100.0)
        rng = np.random.default_rng(0)
        delays = {policy.next_audit_delay(rng) for _ in range(5)}
        assert len(delays) == 5

    def test_poisson_expected_delay_full_interval(self):
        assert PoissonScrubbing(100.0).expected_detection_delay() == pytest.approx(100.0)

    def test_on_access_detection_mirrors_access_rate(self):
        policy = OnAccessDetection(mean_access_interval_hours=8760.0)
        assert policy.expected_detection_delay() == pytest.approx(8760.0)
        assert policy.audits_per_year() == pytest.approx(1.0)

    def test_factory_zero_rate_is_no_scrubbing(self):
        assert isinstance(policy_for_audits_per_year(0.0), NoScrubbing)

    def test_factory_periodic_and_poisson(self):
        assert isinstance(policy_for_audits_per_year(3.0), PeriodicScrubbing)
        assert isinstance(policy_for_audits_per_year(3.0, poisson=True), PoissonScrubbing)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicScrubbing(0.0)
        with pytest.raises(ValueError):
            PeriodicScrubbing(10.0, coverage=0.0)
        with pytest.raises(ValueError):
            PoissonScrubbing(-1.0)
        with pytest.raises(ValueError):
            OnAccessDetection(0.0)
        with pytest.raises(ValueError):
            policy_for_audits_per_year(-1.0)


class TestRepairPolicies:
    def test_immediate_repair_is_deterministic(self):
        policy = ImmediateRepair(visible_hours=0.5, latent_hours=1.5)
        rng = np.random.default_rng(0)
        assert policy.repair_time(rng, FaultType.VISIBLE) == 0.5
        assert policy.repair_time(rng, FaultType.LATENT) == 1.5
        assert policy.induced_fault_probability() == 0.0

    def test_hot_spare_mean_converges(self):
        policy = HotSpareRepair(mean_visible_hours=2.0, mean_latent_hours=4.0)
        rng = np.random.default_rng(1)
        samples = [policy.repair_time(rng, FaultType.VISIBLE) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_operator_repair_includes_response_time(self):
        policy = OperatorRepair(mean_response_hours=10.0, mean_repair_hours=2.0)
        assert policy.mean_repair_time(FaultType.VISIBLE) == 12.0

    def test_operator_mistakes_become_induced_faults(self):
        policy = OperatorRepair(1.0, 1.0, mistake_probability=0.25)
        assert policy.induced_fault_probability() == 0.25

    def test_offline_repair_slowest(self):
        online = ImmediateRepair(0.5, 0.5)
        offline = OfflineMediaRepair(
            mean_retrieval_hours=48.0, mean_restore_hours=12.0
        )
        assert offline.mean_repair_time(FaultType.VISIBLE) > online.mean_repair_time(
            FaultType.VISIBLE
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ImmediateRepair(-1.0, 1.0)
        with pytest.raises(ValueError):
            HotSpareRepair(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatorRepair(1.0, 0.0)
        with pytest.raises(ValueError):
            OperatorRepair(1.0, 1.0, mistake_probability=2.0)
        with pytest.raises(ValueError):
            OfflineMediaRepair(1.0, 0.0)


class TestCorrelationModels:
    def test_independent_multiplier_is_one(self):
        model = IndependentFaults()
        assert model.rate_multiplier(0) == 1.0
        assert model.rate_multiplier(3) == 1.0
        assert model.shock_rate() == 0.0

    def test_multiplicative_accelerates_when_degraded(self):
        model = MultiplicativeCorrelation(alpha=0.1)
        assert model.rate_multiplier(0) == 1.0
        assert model.rate_multiplier(1) == pytest.approx(10.0)
        assert model.rate_multiplier(2) == pytest.approx(10.0)

    def test_compounding_multiplicative(self):
        model = MultiplicativeCorrelation(alpha=0.1, compounding=True)
        assert model.rate_multiplier(2) == pytest.approx(100.0)

    def test_multiplicative_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            MultiplicativeCorrelation(alpha=0.0)

    def test_shared_fate_shock_rate(self):
        model = SharedFateShocks(shock_mean_time=1000.0, hit_probability=0.5)
        assert model.shock_rate() == pytest.approx(1e-3)

    def test_shared_fate_impact_respects_probability_extremes(self):
        rng = np.random.default_rng(0)
        never = SharedFateShocks(1000.0, hit_probability=0.0)
        always = SharedFateShocks(1000.0, hit_probability=1.0)
        assert list(never.shock_impact(rng, 4)) == []
        assert list(always.shock_impact(rng, 4)) == [0, 1, 2, 3]

    def test_shared_fate_fault_type_probability(self):
        rng = np.random.default_rng(0)
        visible_only = SharedFateShocks(1000.0, 0.5, visible_probability=1.0)
        latent_only = SharedFateShocks(1000.0, 0.5, visible_probability=0.0)
        assert visible_only.shock_fault_type(rng) is FaultType.VISIBLE
        assert latent_only.shock_fault_type(rng) is FaultType.LATENT

    def test_shared_fate_validation(self):
        with pytest.raises(ValueError):
            SharedFateShocks(0.0, 0.5)
        with pytest.raises(ValueError):
            SharedFateShocks(10.0, 1.5)
        with pytest.raises(ValueError):
            SharedFateShocks(10.0, 0.5, baseline_multiplier=0.5)


class TestEmpiricalCorrelationEstimate:
    def test_no_samples_returns_none(self):
        estimate = EmpiricalCorrelationEstimate(unconditional_mean_time=100.0)
        assert estimate.alpha() is None

    def test_alpha_is_ratio_of_means(self):
        estimate = EmpiricalCorrelationEstimate(unconditional_mean_time=100.0)
        for gap in (10.0, 20.0, 30.0):
            estimate.add_sample(gap)
        assert estimate.alpha() == pytest.approx(0.2)

    def test_alpha_capped_at_one(self):
        estimate = EmpiricalCorrelationEstimate(unconditional_mean_time=10.0)
        estimate.add_sample(1000.0)
        assert estimate.alpha() == 1.0

    def test_negative_sample_rejected(self):
        estimate = EmpiricalCorrelationEstimate(unconditional_mean_time=10.0)
        with pytest.raises(ValueError):
            estimate.add_sample(-1.0)
