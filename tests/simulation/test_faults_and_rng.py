"""Tests for fault processes and the random-stream manager."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation.faults import (
    BathtubFaultProcess,
    ExponentialFaultProcess,
    WeibullFaultProcess,
    process_for_mean,
)
from repro.simulation.rng import BATCH_SPAWN_TAG, RandomStreams, batch_generator


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).exponential("faults", 100.0)
        b = RandomStreams(seed=7).exponential("faults", 100.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).exponential("faults", 100.0)
        b = RandomStreams(seed=2).exponential("faults", 100.0)
        assert a != b

    def test_spawn_is_deterministic(self):
        a = RandomStreams(seed=3).spawn(5).exponential("x", 10.0)
        b = RandomStreams(seed=3).spawn(5).exponential("x", 10.0)
        assert a == b

    def test_spawn_offsets_differ(self):
        root = RandomStreams(seed=3)
        assert root.spawn(0).exponential("x", 10.0) != root.spawn(1).exponential(
            "x", 10.0
        )

    def test_spawn_families_of_different_roots_never_collide(self):
        # Regression: the old arithmetic child-seed scheme
        # (seed * 1_000_003 + offset + 1) aliased trial streams across
        # root seeds — seed 0 / offset 1_000_003 collided with seed 1 /
        # offset 0.  The SeedSequence spawn-key scheme keeps the root
        # seed as entropy, so those families must now be independent.
        a = RandomStreams(seed=0).spawn(1_000_003)
        b = RandomStreams(seed=1).spawn(0)
        draws_a = [a.exponential("x", 10.0) for _ in range(4)]
        draws_b = [b.exponential("x", 10.0) for _ in range(4)]
        assert draws_a != draws_b

    def test_spawn_key_records_the_trial_path(self):
        root = RandomStreams(seed=3)
        assert root.spawn_key == ()
        child = root.spawn(5)
        assert child.spawn_key == (5,)
        assert child.seed == 3
        assert child.spawn(2).spawn_key == (5, 2)

    def test_nested_spawn_differs_from_flat(self):
        root = RandomStreams(seed=3)
        nested = root.spawn(1).spawn(2)
        flat = root.spawn(2)
        assert nested.exponential("x", 10.0) != flat.exponential("x", 10.0)

    def test_child_streams_differ_from_root_streams(self):
        root = RandomStreams(seed=3)
        assert root.exponential("x", 10.0) != root.spawn(0).exponential(
            "x", 10.0
        )

    def test_batch_generator_reproducible_and_chunked(self):
        a = batch_generator(seed=3, chunk=0).random(4)
        b = batch_generator(seed=3, chunk=0).random(4)
        c = batch_generator(seed=3, chunk=1).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_batch_tag_exceeds_crc32_range(self):
        # The reserved tag must be outside what any stream-name digest
        # can produce, so batch draws never overlap event-trial streams.
        assert BATCH_SPAWN_TAG >= 2**32

    def test_batch_generator_validation(self):
        with pytest.raises(ValueError):
            batch_generator(seed=-1)
        with pytest.raises(ValueError):
            batch_generator(seed=0, chunk=-1)

    def test_uniform_bounds(self):
        streams = RandomStreams(seed=0)
        values = [streams.uniform("u", 2.0, 5.0) for _ in range(100)]
        assert all(2.0 <= value < 5.0 for value in values)

    def test_choice_probability_extremes(self):
        streams = RandomStreams(seed=0)
        assert not streams.choice("never", 0.0)
        assert streams.choice("always", 1.0)

    def test_validation(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.exponential("x", 0.0)
        with pytest.raises(ValueError):
            streams.uniform("x", 5.0, 2.0)
        with pytest.raises(ValueError):
            streams.choice("x", 1.5)
        with pytest.raises(ValueError):
            streams.weibull("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            RandomStreams(seed=-1)
        with pytest.raises(ValueError):
            streams.spawn(-1)


class TestExponentialProcess:
    def test_mean_matches_parameter(self):
        assert ExponentialFaultProcess(500.0).mean() == 500.0

    def test_rate_is_inverse_mean(self):
        assert ExponentialFaultProcess(500.0).rate() == pytest.approx(1.0 / 500.0)

    def test_sample_mean_converges(self):
        process = ExponentialFaultProcess(100.0)
        rng = np.random.default_rng(0)
        samples = [process.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            ExponentialFaultProcess(0.0)


class TestWeibullProcess:
    def test_shape_one_is_exponential_mean(self):
        process = WeibullFaultProcess(shape=1.0, scale=200.0)
        assert process.mean() == pytest.approx(200.0)

    def test_sample_mean_converges(self):
        process = WeibullFaultProcess(shape=2.0, scale=100.0)
        rng = np.random.default_rng(1)
        samples = [process.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(process.mean(), rel=0.1)

    def test_wearout_age_shortens_residual_life(self):
        # Shape > 1: hazard increases with age, so an old component has a
        # shorter expected residual life than a new one.
        process = WeibullFaultProcess(shape=3.0, scale=100.0)
        rng = np.random.default_rng(2)
        young = np.mean([process.sample(rng, age=0.0) for _ in range(3000)])
        old = np.mean([process.sample(rng, age=150.0) for _ in range(3000)])
        assert old < young

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            WeibullFaultProcess(2.0, 100.0).sample(np.random.default_rng(0), age=-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WeibullFaultProcess(0.0, 1.0)
        with pytest.raises(ValueError):
            WeibullFaultProcess(1.0, 0.0)


class TestBathtubProcess:
    def make(self):
        return BathtubFaultProcess(
            infant_rate=1.0 / 100.0,
            useful_rate=1.0 / 1000.0,
            wearout_rate=1.0 / 50.0,
            infant_period=50.0,
            wearout_age=500.0,
        )

    def test_hazard_segments(self):
        process = self.make()
        assert process._hazard(10.0) == pytest.approx(1.0 / 100.0)
        assert process._hazard(100.0) == pytest.approx(1.0 / 1000.0)
        assert process._hazard(1000.0) == pytest.approx(1.0 / 50.0)

    def test_mean_between_best_and_worst_exponential(self):
        process = self.make()
        assert 50.0 < process.mean() < 1000.0

    def test_sample_mean_close_to_analytic_mean(self):
        process = self.make()
        rng = np.random.default_rng(3)
        samples = [process.sample(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(process.mean(), rel=0.1)

    def test_old_component_fails_fast(self):
        process = self.make()
        rng = np.random.default_rng(4)
        residuals = [process.sample(rng, age=600.0) for _ in range(2000)]
        assert np.mean(residuals) == pytest.approx(50.0, rel=0.15)

    def test_rejects_inconsistent_periods(self):
        with pytest.raises(ValueError):
            BathtubFaultProcess(0.1, 0.01, 0.1, infant_period=100.0, wearout_age=50.0)

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError):
            BathtubFaultProcess(0.0, 0.01, 0.1, 10.0, 100.0)


class TestProcessFactory:
    def test_exponential_factory(self):
        process = process_for_mean(250.0, "exponential")
        assert isinstance(process, ExponentialFaultProcess)
        assert process.mean() == 250.0

    def test_weibull_factory_preserves_mean(self):
        process = process_for_mean(250.0, "weibull", shape=2.0)
        assert isinstance(process, WeibullFaultProcess)
        assert process.mean() == pytest.approx(250.0)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            process_for_mean(100.0, "lognormal")

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ValueError):
            process_for_mean(0.0)

    @given(mean=st.floats(min_value=1.0, max_value=1e6), shape=st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=30)
    def test_weibull_factory_mean_property(self, mean, shape):
        process = process_for_mean(mean, "weibull", shape=shape)
        assert process.mean() == pytest.approx(mean, rel=1e-9)
