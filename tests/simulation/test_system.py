"""Tests for the replicated-storage system simulator."""

import math

import pytest

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.simulation.correlation import MultiplicativeCorrelation, SharedFateShocks
from repro.simulation.events import TraceEventType
from repro.simulation.faults import ExponentialFaultProcess
from repro.simulation.repair import ImmediateRepair, OperatorRepair
from repro.simulation.rng import RandomStreams
from repro.simulation.scrubbing import NoScrubbing, PeriodicScrubbing
from repro.simulation.system import (
    ReplicatedStorageSystem,
    SystemConfig,
    SystemSnapshot,
    system_from_fault_model,
)


def fast_config(**overrides):
    base = dict(
        replicas=2,
        visible_process=ExponentialFaultProcess(500.0),
        latent_process=ExponentialFaultProcess(100.0),
        scrub_policy=PeriodicScrubbing(interval_hours=10.0),
        repair_policy=ImmediateRepair(visible_hours=1.0, latent_hours=1.0),
        trace=True,
    )
    base.update(overrides)
    return SystemConfig(**base)


class TestBasicRuns:
    def test_run_returns_result_with_trace(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=1))
        result = system.run(max_time=50000.0)
        assert result.trace is not None
        assert result.end_time > 0

    def test_run_is_reproducible_for_same_seed(self):
        a = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=7)).run(1e5)
        b = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=7)).run(1e5)
        assert a.end_time == b.end_time
        assert a.lost == b.lost
        assert a.visible_faults == b.visible_faults

    def test_different_seeds_differ(self):
        a = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=1)).run(1e5)
        b = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=2)).run(1e5)
        assert a.end_time != b.end_time or a.visible_faults != b.visible_faults

    def test_eventual_data_loss(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=3))
        result = system.run(max_time=1e7)
        assert result.lost
        assert result.first_fault_type in (FaultType.VISIBLE, FaultType.LATENT)
        assert result.final_fault_type in (FaultType.VISIBLE, FaultType.LATENT)

    def test_censoring_when_horizon_short(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=3))
        result = system.run(max_time=1.0)
        assert not result.lost
        assert result.end_time == 1.0

    def test_invalid_max_time_rejected(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=0))
        with pytest.raises(ValueError):
            system.run(max_time=0.0)

    def test_single_replica_lost_on_first_fault(self):
        config = fast_config(replicas=1)
        system = ReplicatedStorageSystem(config, RandomStreams(seed=5))
        result = system.run(max_time=1e6)
        assert result.lost
        assert result.visible_faults + result.latent_faults >= 1

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            fast_config(replicas=0)


class TestFaultHandling:
    def test_faults_and_repairs_recorded_in_trace(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=11))
        result = system.run(max_time=5000.0)
        counts = result.trace.counts()
        assert counts.get(TraceEventType.FAULT_OCCURRED, 0) >= 1
        if not result.lost:
            assert counts.get(TraceEventType.REPAIR_COMPLETED, 0) >= 1

    def test_latent_faults_detected_only_by_audits(self):
        config = fast_config(scrub_policy=NoScrubbing())
        system = ReplicatedStorageSystem(config, RandomStreams(seed=13))
        result = system.run(max_time=1e6)
        detections = result.trace.of_type(TraceEventType.FAULT_DETECTED)
        assert detections == []

    def test_scrubbing_produces_detections(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=13))
        result = system.run(max_time=50000.0)
        # With latent faults every ~100 h and audits every 10 h,
        # detections must occur unless data is lost almost immediately.
        if result.latent_faults > 2:
            assert len(result.trace.of_type(TraceEventType.FAULT_DETECTED)) > 0

    def test_detection_latency_tracks_audit_interval(self):
        config = fast_config(scrub_policy=PeriodicScrubbing(interval_hours=10.0))
        system = ReplicatedStorageSystem(config, RandomStreams(seed=17))
        result = system.run(max_time=20000.0)
        latencies = result.trace.detection_latencies()
        assert latencies, "expected at least one detection"
        # Faults on an already-faulty replica never get their own
        # detection event, so the trace-level matching can attribute a
        # longer delay to a minority of faults; the typical detection
        # still has to land within one audit interval.
        within_interval = sum(1 for latency in latencies if latency <= 10.0 + 1e-9)
        assert within_interval >= len(latencies) * 0.5

    def test_audit_counter_increments(self):
        system = ReplicatedStorageSystem(fast_config(), RandomStreams(seed=19))
        result = system.run(max_time=100.0)
        assert result.audits >= 9


class TestScrubbingEffectOnReliability:
    def test_scrubbed_system_survives_longer_on_average(self):
        lost_times_scrubbed = []
        lost_times_unscrubbed = []
        for seed in range(15):
            scrubbed = ReplicatedStorageSystem(
                fast_config(scrub_policy=PeriodicScrubbing(interval_hours=10.0)),
                RandomStreams(seed=seed),
            ).run(max_time=1e7)
            unscrubbed = ReplicatedStorageSystem(
                fast_config(scrub_policy=NoScrubbing()),
                RandomStreams(seed=seed),
            ).run(max_time=1e7)
            lost_times_scrubbed.append(scrubbed.end_time)
            lost_times_unscrubbed.append(unscrubbed.end_time)
        assert sum(lost_times_scrubbed) > 2 * sum(lost_times_unscrubbed)


class TestCorrelationEffects:
    def test_multiplicative_correlation_shortens_life(self):
        independent_total = 0.0
        correlated_total = 0.0
        for seed in range(15):
            independent = ReplicatedStorageSystem(
                fast_config(), RandomStreams(seed=seed)
            ).run(max_time=1e7)
            correlated = ReplicatedStorageSystem(
                fast_config(correlation=MultiplicativeCorrelation(alpha=0.05)),
                RandomStreams(seed=seed),
            ).run(max_time=1e7)
            independent_total += independent.end_time
            correlated_total += correlated.end_time
        assert correlated_total < independent_total

    def test_shared_fate_shocks_cause_losses(self):
        config = fast_config(
            correlation=SharedFateShocks(shock_mean_time=200.0, hit_probability=1.0),
        )
        system = ReplicatedStorageSystem(config, RandomStreams(seed=23))
        result = system.run(max_time=1e6)
        assert result.lost
        shock_events = result.trace.of_type(TraceEventType.SHOCK_EVENT)
        assert shock_events


class TestRepairInducedFaults:
    def test_risky_operator_repairs_can_damage_other_replica(self):
        config = fast_config(
            replicas=3,
            repair_policy=OperatorRepair(
                mean_response_hours=0.1, mean_repair_hours=0.5, mistake_probability=1.0
            ),
        )
        system = ReplicatedStorageSystem(config, RandomStreams(seed=29))
        result = system.run(max_time=5000.0)
        induced = [
            event
            for event in result.trace.of_type(TraceEventType.FAULT_OCCURRED)
            if event.detail == "repair-induced"
        ]
        assert induced


class TestFactoryFromFaultModel:
    def make_model(self, **overrides):
        base = dict(
            mean_time_to_visible=500.0,
            mean_time_to_latent=100.0,
            mean_repair_visible=1.0,
            mean_repair_latent=1.0,
            mean_detect_latent=5.0,
            correlation_factor=1.0,
        )
        base.update(overrides)
        return FaultModel(**base)

    def test_scrub_interval_from_mdl(self):
        system = system_from_fault_model(self.make_model(), streams=RandomStreams(0))
        policy = system.config.scrub_policy
        assert isinstance(policy, PeriodicScrubbing)
        assert policy.interval_hours == pytest.approx(10.0)

    def test_no_scrub_when_mdl_matches_latent_mean(self):
        model = self.make_model(mean_detect_latent=100.0)
        system = system_from_fault_model(model, streams=RandomStreams(0))
        assert isinstance(system.config.scrub_policy, NoScrubbing)

    def test_audits_per_year_override(self):
        system = system_from_fault_model(
            self.make_model(), streams=RandomStreams(0), audits_per_year=12.0
        )
        assert isinstance(system.config.scrub_policy, PeriodicScrubbing)
        assert system.config.scrub_policy.interval_hours == pytest.approx(730.0)

    def test_correlation_passed_through(self):
        system = system_from_fault_model(
            self.make_model(correlation_factor=0.2), streams=RandomStreams(0)
        )
        assert isinstance(system.config.correlation, MultiplicativeCorrelation)
        assert system.config.correlation.alpha == 0.2


class TestSnapshotUnderInFlightState:
    """capture/resume with repairs in flight and scrubbing mid-phase.

    The splitting estimator relies on snapshots being statistically
    indistinguishable from a system that kept running; these tests pin
    down the two stateful pieces that are *not* resampled on restore —
    in-flight repair completions and the audit phase.
    """

    def _visible_only_model(self, mrv=50.0):
        # Latent faults effectively never happen, so the first fault is
        # visible and enters repair immediately.
        return FaultModel(
            mean_time_to_visible=500.0,
            mean_time_to_latent=1e12,
            mean_repair_visible=mrv,
            mean_repair_latent=mrv,
            mean_detect_latent=5.0,
            correlation_factor=1.0,
        )

    def _latent_only_model(self, mdl=5.0, mrl=7.0):
        # Visible faults effectively never happen; latent faults wait on
        # the periodic audit grid (interval = 2 * MDL).
        return FaultModel(
            mean_time_to_visible=1e12,
            mean_time_to_latent=500.0,
            mean_repair_visible=1.0,
            mean_repair_latent=mrl,
            mean_detect_latent=mdl,
            correlation_factor=1.0,
        )

    def _quiet_resume_system(self, model, seed=99):
        # A fresh system for resuming whose *new* fault arrivals are
        # pushed past any horizon used here, so assertions only see the
        # snapshot's in-flight state play out.
        quiet = FaultModel(
            mean_time_to_visible=1e12,
            mean_time_to_latent=1e12,
            mean_repair_visible=model.mean_repair_visible,
            mean_repair_latent=model.mean_repair_latent,
            mean_detect_latent=model.mean_detect_latent,
            correlation_factor=1.0,
        )
        return system_from_fault_model(
            quiet, replicas=2, streams=RandomStreams(seed=seed)
        )

    def test_snapshot_carries_inflight_repair_completion(self):
        model = self._visible_only_model(mrv=50.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=3)
        )
        result = system.run(max_time=1e6, stop_when_faulty=1)
        assert not result.lost
        snapshot = system.capture_snapshot()
        faulty = [snap for snap in snapshot.replicas if snap.state.is_faulty]
        assert len(faulty) == 1
        # The visible fault entered repair at the fault instant, so its
        # completion is pinned at fault_time + MRV.
        assert faulty[0].repair_completion == pytest.approx(
            faulty[0].fault_time + 50.0
        )

    def test_resume_completes_the_inflight_repair_on_schedule(self):
        model = self._visible_only_model(mrv=50.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=3)
        )
        system.run(max_time=1e6, stop_when_faulty=1)
        snapshot = system.capture_snapshot()
        completion = next(
            snap.repair_completion
            for snap in snapshot.replicas
            if snap.state.is_faulty
        )
        fresh = self._quiet_resume_system(model)
        resumed = fresh.run(
            max_time=completion + 100.0, resume_from=snapshot
        )
        assert not resumed.lost
        assert resumed.repairs == 1
        assert not any(replica.is_faulty for replica in fresh.replicas)

    def test_resume_before_repair_completion_keeps_replica_faulty(self):
        model = self._visible_only_model(mrv=50.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=3)
        )
        system.run(max_time=1e6, stop_when_faulty=1)
        snapshot = system.capture_snapshot()
        fresh = self._quiet_resume_system(model)
        resumed = fresh.run(
            max_time=snapshot.time + 1.0, resume_from=snapshot
        )
        assert resumed.repairs == 0
        assert sum(1 for r in fresh.replicas if r.is_faulty) == 1

    def test_snapshot_preserves_the_audit_phase(self):
        model = self._latent_only_model(mdl=5.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=4)
        )
        system.run(max_time=1e6, stop_when_faulty=1)
        snapshot = system.capture_snapshot()
        # Periodic scrubbing at interval 10h: the next audit sits on the
        # grid point right after the capture time.
        assert snapshot.next_audit_time is not None
        assert snapshot.next_audit_time > snapshot.time
        assert snapshot.next_audit_time == pytest.approx(
            (math.floor(snapshot.time / 10.0) + 1.0) * 10.0
        )

    def test_resumed_audit_detects_and_repairs_the_latent_fault(self):
        model = self._latent_only_model(mdl=5.0, mrl=7.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=4)
        )
        system.run(max_time=1e6, stop_when_faulty=1)
        snapshot = system.capture_snapshot()
        fresh = self._quiet_resume_system(model)
        resumed = fresh.run(
            max_time=snapshot.next_audit_time + 7.0 + 1.0,
            resume_from=snapshot,
        )
        # The undetected latent fault waits for the preserved audit
        # grid, is detected at next_audit_time, and repairs MRL later.
        assert resumed.audits >= 1
        assert resumed.repairs == 1
        assert not any(replica.is_faulty for replica in fresh.replicas)

    def test_resume_without_audits_leaves_latent_fault_stranded(self):
        model = self._latent_only_model(mdl=5.0)
        system = system_from_fault_model(
            model, replicas=2, streams=RandomStreams(seed=4)
        )
        system.run(max_time=1e6, stop_when_faulty=1)
        snapshot = system.capture_snapshot()
        stranded = SystemSnapshot(
            time=snapshot.time,
            replicas=snapshot.replicas,
            next_audit_time=None,
        )
        fresh = self._quiet_resume_system(model)
        resumed = fresh.run(
            max_time=snapshot.time + 500.0, resume_from=stranded
        )
        assert resumed.audits == 0
        assert resumed.repairs == 0
        assert sum(1 for r in fresh.replicas if r.is_faulty) == 1
