"""Tests for the variance-reduced batch estimators (QMC + control variate).

The control variate is a conditional-Monte-Carlo estimator: its score is
the exact conditional loss probability given the skeleton trajectory, so
its mean must match the exact Markov chain at operating points where the
kernel's physics and the chain agree (the daily-scrubbed mirrored pair,
where the audit-grid vs exponential-detection difference is far below
the Monte-Carlo noise).  The QMC estimator's replicate-spread confidence
intervals must cover the same exact value.  Both are validated over
multiple seeds, plus the estimator-axis plumbing and validation rules.
"""

import math

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.core.redundancy import ErasureCode
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import build_mirrored_chain
from repro.markov.transient import loss_probability_over_time
from repro.simulation.estimators import (
    VARIANCE_REDUCTIONS,
    run_loss_probability,
    run_mttdl,
)
from repro.simulation.variance_reduction import (
    SCIPY_QMC_AVAILABLE,
    cv_loss_probability,
    qmc_loss_probability,
    require_threshold_two,
    variance_reduced_loss_probability,
)

#: Daily-scrubbed Cheetah mirrored pair: the high-reliability regime
#: where variance reduction matters and the kernel agrees with the
#: exact chain far inside Monte-Carlo noise.
RARE_MODEL = FaultModel(
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    mean_repair_visible=1.0 / 3.0,
    mean_repair_latent=1.0 / 3.0,
    mean_detect_latent=12.0,
    correlation_factor=1.0,
)

MISSION = 50.0 * HOURS_PER_YEAR


@pytest.fixture(scope="module")
def exact_loss():
    return loss_probability_over_time(build_mirrored_chain(RARE_MODEL), MISSION)


class TestControlVariate:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_covers_exact_markov_value(self, exact_loss, seed):
        estimate = cv_loss_probability(
            RARE_MODEL, mission_time=MISSION, trials=10_000, seed=seed
        )
        assert estimate.method == "cv"
        assert estimate.std_error > 0
        assert abs(estimate.mean - exact_loss) <= 3.0 * estimate.std_error

    def test_far_tighter_than_standard(self, exact_loss):
        # At this operating point the binomial estimator needs ~600k
        # trials for a 10% relative error; the control variate is
        # already an order of magnitude tighter at 2,000.
        estimate = cv_loss_probability(
            RARE_MODEL, mission_time=MISSION, trials=2000, seed=7
        )
        assert estimate.relative_error < 0.05

    def test_adaptive_target_reached(self):
        estimate = cv_loss_probability(
            RARE_MODEL,
            mission_time=MISSION,
            trials=500,
            seed=3,
            target_relative_error=0.02,
            max_trials=64_000,
        )
        assert estimate.std_error <= 0.02 * estimate.mean
        assert estimate.trials <= 64_000

    def test_deterministic_in_seed(self):
        a = cv_loss_probability(RARE_MODEL, mission_time=MISSION, trials=2000, seed=5)
        b = cv_loss_probability(RARE_MODEL, mission_time=MISSION, trials=2000, seed=5)
        assert a.mean == b.mean
        assert a.std_error == b.std_error

    def test_threshold_two_required(self):
        with pytest.raises(ValueError, match="threshold"):
            require_threshold_two(None, replicas=3)
        # (n, n-1) codes are threshold-2 and pass.
        require_threshold_two(ErasureCode(4, 3), replicas=4)
        with pytest.raises(ValueError, match="threshold"):
            require_threshold_two(ErasureCode(6, 4), replicas=6)


@pytest.mark.skipif(not SCIPY_QMC_AVAILABLE, reason="scipy.stats.qmc unavailable")
class TestQmc:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_covers_exact_markov_value(self, exact_loss, seed):
        estimate = qmc_loss_probability(
            RARE_MODEL, mission_time=MISSION, trials=16_384, seed=seed
        )
        assert estimate.method == "qmc"
        assert estimate.std_error > 0
        assert abs(estimate.mean - exact_loss) <= 3.0 * estimate.std_error

    def test_deterministic_in_seed(self):
        a = qmc_loss_probability(RARE_MODEL, mission_time=MISSION, trials=4096, seed=9)
        b = qmc_loss_probability(RARE_MODEL, mission_time=MISSION, trials=4096, seed=9)
        assert a.mean == b.mean
        assert a.std_error == b.std_error


class TestEstimatorAxis:
    def test_axis_vocabulary(self):
        assert VARIANCE_REDUCTIONS == ("none", "qmc", "cv")

    def test_dispatch(self, exact_loss):
        estimate = variance_reduced_loss_probability(
            "cv", RARE_MODEL, mission_time=MISSION, trials=2000, seed=1
        )
        assert estimate.method == "cv"
        with pytest.raises(ValueError, match="variance_reduction"):
            variance_reduced_loss_probability(
                "bogus", RARE_MODEL, mission_time=MISSION, trials=10, seed=0
            )

    def test_run_loss_probability_cv(self, exact_loss):
        estimate = run_loss_probability(
            RARE_MODEL,
            mission_time=MISSION,
            trials=4000,
            seed=2,
            backend="batch",
            variance_reduction="cv",
        )
        assert estimate.method == "cv"
        assert abs(estimate.mean - exact_loss) <= 4.0 * estimate.std_error

    def test_run_mttdl_cv(self):
        estimate = run_mttdl(
            RARE_MODEL,
            trials=4000,
            seed=2,
            max_time=MISSION,
            backend="batch",
            variance_reduction="cv",
        )
        assert estimate.method == "cv"
        assert math.isfinite(estimate.mean)
        assert estimate.mean > 0

    def test_validation_rules(self):
        common = dict(mission_time=MISSION, trials=100, seed=0)
        with pytest.raises(ValueError, match="variance_reduction"):
            run_loss_probability(
                RARE_MODEL, variance_reduction="sobol", **common
            )
        # The variance-reduced estimators only compose with the plain
        # batch estimator: every other knob is rejected, with the event
        # backend (the run_loss_probability default) rejected too.
        with pytest.raises(ValueError, match="batch"):
            run_loss_probability(
                RARE_MODEL,
                backend="event",
                variance_reduction="cv",
                **common,
            )
        with pytest.raises(ValueError, match="method"):
            run_loss_probability(
                RARE_MODEL,
                backend="batch",
                method="is",
                variance_reduction="cv",
                **common,
            )
        with pytest.raises(ValueError, match="bias"):
            run_loss_probability(
                RARE_MODEL,
                backend="batch",
                bias=5.0,
                variance_reduction="cv",
                **common,
            )
        with pytest.raises(ValueError, match="threshold"):
            run_loss_probability(
                RARE_MODEL,
                backend="batch",
                replicas=3,
                variance_reduction="cv",
                **common,
            )

    def test_default_axis_untouched(self):
        # variance_reduction="none" must leave the standard path byte
        # identical (same draws, same estimate).
        plain = run_loss_probability(
            RARE_MODEL, mission_time=MISSION, trials=2000, seed=4, backend="batch"
        )
        explicit = run_loss_probability(
            RARE_MODEL,
            mission_time=MISSION,
            trials=2000,
            seed=4,
            backend="batch",
            variance_reduction="none",
        )
        assert plain.mean == explicit.mean
        assert plain.std_error == explicit.std_error
        assert np.isclose(plain.mean, explicit.mean)
