"""Tests for the compiled select kernel and the eager-draw ceiling.

The fused select kernel (:mod:`repro.simulation._kernels`) is a pure
execution change: with the RNG draws untouched, forcing the fused path
on (interpreted when numba is absent, compiled when present) must give
bit-for-bit the same results as the vectorized NumPy select across
replication, erasure schemes, importance-sampling bias and piecewise
timelines.  The ``MAX_EAGER_TRIALS`` ceiling likewise only changes when
draws happen, not what they are: the first block of a subdivided run
consumes the generator exactly like a standalone run of that size.
"""

import numpy as np
import pytest

from repro.core.parameters import FaultModel
from repro.core.redundancy import ErasureCode
from repro.simulation import _kernels
from repro.simulation import batch as batch_module
from repro.simulation.batch import (
    RateSegment,
    simulate_batch,
    simulate_batch_piecewise,
)


def fast_model():
    return FaultModel(
        mean_time_to_visible=500.0,
        mean_time_to_latent=100.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=5.0,
        correlation_factor=1.0,
    )


@pytest.fixture
def fused_reset():
    """Restore the kernel gate whatever a test does to it."""
    yield
    _kernels.force_fused(None)


def _result_fields(result):
    return (
        result.lost,
        result.end_time,
        result.first_fault_type,
        result.final_fault_type,
        result.log_weight,
        result.sweeps,
    )


def _assert_identical(a, b):
    for left, right in zip(_result_fields(a), _result_fields(b)):
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, right)
        else:
            assert left == right


class TestForceFused:
    def test_gate_semantics(self, fused_reset):
        _kernels.force_fused(True)
        assert _kernels.use_fused() is True
        _kernels.force_fused(False)
        assert _kernels.use_fused() is False
        _kernels.force_fused(None)
        assert _kernels.use_fused() is _kernels.NUMBA_AVAILABLE


class TestSelectKernel:
    @pytest.mark.parametrize(
        "replicas,scheme,bias",
        [
            (2, None, None),
            (3, None, None),
            (4, ErasureCode(4, 2), None),
            (6, ErasureCode(6, 4), None),
            (2, None, 5.0),
        ],
    )
    def test_fused_path_bit_identical(
        self, fused_reset, replicas, scheme, bias
    ):
        kwargs = dict(
            trials=4000,
            horizon=5000.0,
            seed=7,
            replicas=replicas,
            scheme=scheme,
            bias=bias,
        )
        _kernels.force_fused(False)
        plain = simulate_batch(fast_model(), **kwargs)
        _kernels.force_fused(True)
        fused = simulate_batch(fast_model(), **kwargs)
        _assert_identical(plain, fused)

    def test_fused_path_bit_identical_piecewise(self, fused_reset):
        segments = [
            RateSegment(model=fast_model(), end_time=2000.0),
            RateSegment(
                model=FaultModel(250.0, 50.0, 1.0, 1.0, 5.0, 1.0),
                end_time=5000.0,
            ),
        ]

        def run():
            return simulate_batch_piecewise(segments, trials=2000, seed=9)

        _kernels.force_fused(False)
        plain = run()
        _kernels.force_fused(True)
        fused = run()
        assert np.array_equal(plain.lost, fused.lost)
        assert np.array_equal(plain.end_time, fused.end_time)
        assert plain.sweeps == fused.sweeps

    def test_select_matches_numpy_argmin_ties(self):
        # First-occurrence tie-breaking: two columns at the same minimum
        # must resolve to the lower index, exactly like np.argmin.
        state = np.zeros((1, 3), dtype=np.int8)
        next_visible = np.array([[4.0, 2.0, 2.0]])
        next_latent = np.array([[9.0, 9.0, 9.0]])
        recovery = np.zeros((1, 3))
        which, event_time = _kernels.select_events_py(
            state, next_visible, next_latent, recovery, np.array([0])
        )
        assert which[0] == 1
        assert event_time[0] == 2.0


@pytest.mark.skipif(
    not _kernels.NUMBA_AVAILABLE, reason="numba not installed"
)
class TestCompiledKernel:
    def test_compiled_select_used_and_identical(self, fused_reset):
        # With numba present the default path is the compiled kernel;
        # it must match the interpreted NumPy select bit for bit.
        assert _kernels.select_events is not _kernels.select_events_py
        _kernels.force_fused(False)
        plain = simulate_batch(fast_model(), trials=2000, horizon=5000.0, seed=3)
        _kernels.force_fused(None)
        fused = simulate_batch(fast_model(), trials=2000, horizon=5000.0, seed=3)
        _assert_identical(plain, fused)


class TestEagerDrawCeiling:
    def test_block_subdivision_preserves_prefix(self, monkeypatch):
        # A run over the ceiling subdivides into blocks that reuse one
        # generator sequentially, so the first block is bit-identical to
        # a standalone run of the block size with the same seed.
        monkeypatch.setattr(batch_module, "MAX_EAGER_TRIALS", 500)
        small = simulate_batch(fast_model(), trials=500, horizon=5000.0, seed=11)
        large = simulate_batch(fast_model(), trials=1200, horizon=5000.0, seed=11)
        assert large.lost.size == 1200
        assert np.array_equal(large.lost[:500], small.lost)
        assert np.array_equal(large.end_time[:500], small.end_time)
        assert np.array_equal(
            large.first_fault_type[:500], small.first_fault_type
        )

    def test_subdivided_run_matches_statistics(self, monkeypatch):
        # The concatenated blocks carry every trial exactly once.
        monkeypatch.setattr(batch_module, "MAX_EAGER_TRIALS", 300)
        result = simulate_batch(
            fast_model(), trials=1000, horizon=5000.0, seed=2
        )
        assert result.lost.size == 1000
        assert result.end_time.size == 1000
        assert result.sweeps > 0

    def test_initial_exponentials_shape_validated(self):
        with pytest.raises(ValueError, match="initial_exponentials"):
            simulate_batch(
                fast_model(),
                trials=10,
                horizon=100.0,
                seed=0,
                initial_exponentials=np.ones((10, 3)),
            )
