"""Tests for the replica state machine and the trace vocabulary."""

import pytest

from repro.core.faults import FaultType
from repro.simulation.events import Trace, TraceEventType
from repro.simulation.replica import Replica, ReplicaState


class TestReplicaStateMachine:
    def test_starts_healthy(self):
        replica = Replica(index=0)
        assert replica.state is ReplicaState.OK
        assert not replica.is_faulty

    def test_visible_fault_is_immediately_detected(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.VISIBLE, 10.0)
        assert replica.state is ReplicaState.VISIBLE_FAILED
        assert replica.detection_time == 10.0
        assert replica.visible_faults == 1

    def test_latent_fault_waits_for_detection(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.LATENT, 5.0)
        assert replica.state is ReplicaState.LATENT_UNDETECTED
        assert replica.detection_time is None

    def test_detect_transitions_latent_fault(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.LATENT, 5.0)
        assert replica.detect(20.0)
        assert replica.state is ReplicaState.LATENT_DETECTED
        assert replica.detection_time == 20.0

    def test_detect_noop_when_not_latent_undetected(self):
        replica = Replica(index=0)
        assert not replica.detect(1.0)
        replica.suffer_fault(FaultType.VISIBLE, 2.0)
        assert not replica.detect(3.0)

    def test_detect_before_fault_rejected(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.LATENT, 10.0)
        with pytest.raises(ValueError):
            replica.detect(5.0)

    def test_repair_restores_health_and_counts(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.VISIBLE, 10.0)
        replica.repair(12.0)
        assert replica.state is ReplicaState.OK
        assert replica.repairs_completed == 1
        assert replica.faulty_hours == pytest.approx(2.0)

    def test_repair_of_healthy_replica_rejected(self):
        with pytest.raises(ValueError):
            Replica(index=0).repair(1.0)

    def test_second_fault_on_faulty_replica_counts_but_keeps_state(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.VISIBLE, 1.0)
        replica.suffer_fault(FaultType.LATENT, 2.0)
        assert replica.state is ReplicaState.VISIBLE_FAILED
        assert replica.latent_faults == 1

    def test_visible_fault_supersedes_undetected_latent(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.LATENT, 1.0)
        replica.suffer_fault(FaultType.VISIBLE, 2.0)
        assert replica.state is ReplicaState.VISIBLE_FAILED
        assert replica.detection_time == 2.0

    def test_outstanding_window(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.LATENT, 10.0)
        assert replica.outstanding_window(25.0) == 15.0
        assert Replica(index=1).outstanding_window(25.0) == 0.0

    def test_current_fault_type(self):
        replica = Replica(index=0)
        assert replica.current_fault_type is None
        replica.suffer_fault(FaultType.LATENT, 1.0)
        assert replica.current_fault_type is FaultType.LATENT

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Replica(index=0).suffer_fault(FaultType.VISIBLE, -1.0)

    def test_reset_restores_pristine_state(self):
        replica = Replica(index=0)
        replica.suffer_fault(FaultType.VISIBLE, 1.0)
        replica.repair(2.0)
        replica.reset()
        assert replica.state is ReplicaState.OK
        assert replica.visible_faults == 0
        assert replica.repairs_completed == 0
        assert replica.faulty_hours == 0.0


class TestTrace:
    def test_record_and_counts(self):
        trace = Trace()
        trace.record(1.0, TraceEventType.FAULT_OCCURRED, 0, FaultType.LATENT)
        trace.record(2.0, TraceEventType.AUDIT_PERFORMED)
        trace.record(2.0, TraceEventType.FAULT_DETECTED, 0, FaultType.LATENT)
        counts = trace.counts()
        assert counts[TraceEventType.FAULT_OCCURRED] == 1
        assert counts[TraceEventType.AUDIT_PERFORMED] == 1
        assert len(trace) == 3

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(1.0, TraceEventType.FAULT_OCCURRED)
        assert len(trace) == 0

    def test_of_type_filters(self):
        trace = Trace()
        trace.record(1.0, TraceEventType.FAULT_OCCURRED, 0, FaultType.VISIBLE)
        trace.record(2.0, TraceEventType.REPAIR_COMPLETED, 0, FaultType.VISIBLE)
        assert len(trace.of_type(TraceEventType.FAULT_OCCURRED)) == 1

    def test_faults_by_type(self):
        trace = Trace()
        trace.record(1.0, TraceEventType.FAULT_OCCURRED, 0, FaultType.VISIBLE)
        trace.record(2.0, TraceEventType.FAULT_OCCURRED, 1, FaultType.LATENT)
        trace.record(3.0, TraceEventType.FAULT_OCCURRED, 0, FaultType.LATENT)
        by_type = trace.faults_by_type()
        assert by_type[FaultType.VISIBLE] == 1
        assert by_type[FaultType.LATENT] == 2

    def test_detection_latencies_matched_per_replica(self):
        trace = Trace()
        trace.record(10.0, TraceEventType.FAULT_OCCURRED, 0, FaultType.LATENT)
        trace.record(12.0, TraceEventType.FAULT_OCCURRED, 1, FaultType.LATENT)
        trace.record(30.0, TraceEventType.FAULT_DETECTED, 0, FaultType.LATENT)
        trace.record(50.0, TraceEventType.FAULT_DETECTED, 1, FaultType.LATENT)
        assert sorted(trace.detection_latencies()) == [20.0, 38.0]

    def test_repair_durations(self):
        trace = Trace()
        trace.record(5.0, TraceEventType.REPAIR_STARTED, 0, FaultType.VISIBLE)
        trace.record(7.5, TraceEventType.REPAIR_COMPLETED, 0, FaultType.VISIBLE)
        assert trace.repair_durations() == [2.5]

    def test_time_of_data_loss(self):
        trace = Trace()
        assert trace.time_of_data_loss() is None
        trace.record(99.0, TraceEventType.DATA_LOSS)
        assert trace.time_of_data_loss() == 99.0

    def test_iteration_yields_events_in_order(self):
        trace = Trace()
        trace.record(1.0, TraceEventType.AUDIT_PERFORMED)
        trace.record(2.0, TraceEventType.AUDIT_PERFORMED)
        times = [event.time for event in trace]
        assert times == [1.0, 2.0]
