"""Tests for the Monte-Carlo estimation harness and lifetime curves."""

import math
import warnings

import pytest

from repro.core.faults import FaultType
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.simulation.lifetime import (
    empirical_survival_table,
    loss_probability_curve,
    mission_summary,
)
from repro.simulation.monte_carlo import (
    HighCensoringWarning,
    MonteCarloEstimate,
    double_fault_combination_counts,
    estimate_loss_probability,
    estimate_mttdl,
    run_single_trace,
)


def fast_model(**overrides):
    base = dict(
        mean_time_to_visible=500.0,
        mean_time_to_latent=100.0,
        mean_repair_visible=1.0,
        mean_repair_latent=1.0,
        mean_detect_latent=5.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestMonteCarloEstimate:
    def test_confidence_interval_brackets_mean(self):
        estimate = MonteCarloEstimate(mean=100.0, std_error=5.0, trials=50)
        low, high = estimate.confidence_interval()
        assert low < 100.0 < high
        assert high - low == pytest.approx(2 * 1.96 * 5.0)

    def test_relative_error(self):
        estimate = MonteCarloEstimate(mean=200.0, std_error=10.0, trials=50)
        assert estimate.relative_error == pytest.approx(0.05)

    def test_relative_error_zero_mean_is_unconverged(self):
        # A zero-loss estimate carries no information about its own
        # precision; reading it as "perfectly converged" (the old 0.0)
        # would terminate adaptive sampling the moment a rare-event run
        # starts.
        assert MonteCarloEstimate(0.0, 1.0, 10).relative_error == math.inf
        assert MonteCarloEstimate(0.0, 0.0, 10).relative_error == math.inf

    def test_zero_loss_estimate_does_not_stop_adaptive_sampling(self):
        # Regression: a first chunk with zero losses must keep adaptive
        # sampling extending (up to its cap) instead of stopping at a
        # "converged" zero.
        model = fast_model(mean_repair_visible=0.01, mean_repair_latent=0.01,
                           mean_detect_latent=0.05)
        estimate = estimate_loss_probability(
            model,
            mission_time=40.0,
            trials=40,
            seed=9,
            backend="batch",
            target_relative_error=0.5,
            max_trials=160,
        )
        assert estimate.trials > 40 or estimate.losses > 0

    def test_confidence_interval_clamps_below_zero(self):
        # Times and probabilities cannot be negative: the default clamp
        # keeps the normal-approximation interval physical.
        estimate = MonteCarloEstimate(mean=1.0, std_error=2.0, trials=5)
        low, high = estimate.confidence_interval()
        assert low == 0.0
        assert high == pytest.approx(1.0 + 1.96 * 2.0)

    def test_confidence_interval_clamp_can_be_disabled(self):
        estimate = MonteCarloEstimate(mean=1.0, std_error=2.0, trials=5)
        low, _ = estimate.confidence_interval(lo=None)
        assert low == pytest.approx(1.0 - 1.96 * 2.0)

    def test_confidence_interval_upper_clamp(self):
        estimate = MonteCarloEstimate(
            mean=0.98, std_error=0.05, trials=50, clamp_hi=1.0
        )
        low, high = estimate.confidence_interval()
        assert high == 1.0
        assert 0.0 <= low < 0.98

    def test_confidence_interval_with_infinite_mean(self):
        estimate = MonteCarloEstimate(
            mean=float("inf"), std_error=float("inf"), trials=10, censored=10
        )
        low, high = estimate.confidence_interval()
        assert low == 0.0
        assert high == float("inf")

    def test_losses_property(self):
        assert MonteCarloEstimate(1.0, 0.1, 40, censored=15).losses == 25


class TestEstimateMttdl:
    def test_reproducible_for_same_seed(self):
        a = estimate_mttdl(fast_model(), trials=30, seed=1, max_time=1e6)
        b = estimate_mttdl(fast_model(), trials=30, seed=1, max_time=1e6)
        assert a.mean == b.mean

    def test_agrees_with_analytic_model_within_noise(self):
        model = fast_model()
        estimate = estimate_mttdl(model, trials=120, seed=2, max_time=1e6)
        analytic = mirrored_mttdl(model)
        # The simulator counts first faults on both copies (factor ~2 vs
        # the paper's convention) and races detection against the second
        # fault, so agreement within a factor of ~2.5 is the expectation;
        # the order of magnitude must match.
        assert analytic / 3.0 < estimate.mean < analytic * 3.0

    def test_scrubbing_improves_simulated_mttdl(self):
        base = fast_model()
        scrubbed = estimate_mttdl(base, trials=60, seed=3, max_time=1e6)
        unscrubbed = estimate_mttdl(
            base.with_detection_time(base.mean_time_to_latent),
            trials=60,
            seed=3,
            max_time=1e6,
        )
        assert scrubbed.mean > unscrubbed.mean

    def test_censoring_reported(self):
        # A 10-hour horizon is far below the MTTDL, so essentially every
        # trial is censored (an occasional early double fault is possible).
        with pytest.warns(HighCensoringWarning):
            estimate = estimate_mttdl(
                fast_model(), trials=20, seed=4, max_time=10.0
            )
        assert estimate.censored >= 18
        # The censoring-correct MLE never folds horizon times into the
        # mean: with no observed losses the estimate is infinite, and
        # with a handful of losses it is at least total-time / losses,
        # far above the 10-hour horizon.
        assert estimate.mean > 10.0

    def test_censored_trials_do_not_bias_the_mean_downward(self):
        # The same operating point estimated under a tight horizon (heavy
        # censoring) must not come out below the generous-horizon answer,
        # which is what folding horizon times into a plain mean did.
        model = fast_model()
        generous = estimate_mttdl(model, trials=150, seed=21, max_time=1e6)
        assert generous.censored == 0
        with pytest.warns(HighCensoringWarning):
            tight = estimate_mttdl(model, trials=150, seed=21, max_time=300.0)
        assert tight.censored > 30
        # Biased estimator would give ~<300; the MLE stays in the same
        # range as the uncensored answer (within a few standard errors).
        assert tight.mean > generous.mean - 4 * (
            tight.std_error + generous.std_error
        )
        assert tight.mean > 400.0

    def test_no_warning_when_censoring_is_rare(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", HighCensoringWarning)
            estimate = estimate_mttdl(
                fast_model(), trials=40, seed=2, max_time=1e6
            )
        assert estimate.censored <= 0.2 * estimate.trials

    def test_mle_equals_plain_mean_without_censoring(self):
        # With zero censored trials, total time / losses is exactly the
        # sample mean of the loss times.
        estimate = estimate_mttdl(fast_model(), trials=50, seed=13, max_time=1e6)
        assert estimate.censored == 0
        assert estimate.losses == 50
        assert estimate.std_error == pytest.approx(
            estimate.mean / math.sqrt(50)
        )

    def test_requires_model_or_factory(self):
        with pytest.raises(ValueError):
            estimate_mttdl(None, trials=10)

    def test_rejects_non_positive_trials(self):
        with pytest.raises(ValueError):
            estimate_mttdl(fast_model(), trials=0)


class TestEstimateLossProbability:
    def test_probability_between_zero_and_one(self):
        estimate = estimate_loss_probability(
            fast_model(), mission_time=5000.0, trials=60, seed=5
        )
        assert 0.0 <= estimate.mean <= 1.0

    def test_longer_missions_riskier(self):
        short = estimate_loss_probability(
            fast_model(), mission_time=1000.0, trials=80, seed=6
        )
        long = estimate_loss_probability(
            fast_model(), mission_time=50000.0, trials=80, seed=6
        )
        assert long.mean >= short.mean

    def test_rejects_bad_mission(self):
        with pytest.raises(ValueError):
            estimate_loss_probability(fast_model(), mission_time=0.0, trials=10)


class TestDoubleFaultCombinations:
    def test_counts_cover_all_combinations(self):
        counts = double_fault_combination_counts(
            fast_model(), trials=60, seed=7, max_time=1e6
        )
        assert set(counts) == {
            (first, second) for first in FaultType for second in FaultType
        }

    def test_losses_are_counted(self):
        counts = double_fault_combination_counts(
            fast_model(), trials=60, seed=7, max_time=1e6
        )
        assert sum(counts.values()) > 0

    def test_latent_first_dominates_with_slow_detection(self):
        model = fast_model(mean_detect_latent=100.0)
        counts = double_fault_combination_counts(model, trials=80, seed=8, max_time=1e6)
        latent_first = (
            counts[(FaultType.LATENT, FaultType.VISIBLE)]
            + counts[(FaultType.LATENT, FaultType.LATENT)]
        )
        visible_first = (
            counts[(FaultType.VISIBLE, FaultType.VISIBLE)]
            + counts[(FaultType.VISIBLE, FaultType.LATENT)]
        )
        assert latent_first > visible_first


class TestSingleTrace:
    def test_trace_is_returned(self):
        result = run_single_trace(fast_model(), seed=9, max_time=20000.0)
        assert result.trace is not None
        assert len(result.trace) > 0


class TestLifetimeCurves:
    def test_curve_is_monotone(self):
        horizons = [1000.0, 5000.0, 20000.0, 100000.0]
        curve = loss_probability_curve(
            fast_model(), horizons, trials=60, seed=10
        )
        probabilities = [point.loss_probability for point in curve]
        assert probabilities == sorted(probabilities)

    def test_exponential_prediction_attached(self):
        curve = loss_probability_curve(
            fast_model(),
            [1000.0, 10000.0],
            trials=30,
            seed=11,
            analytic_mttdl=mirrored_mttdl(fast_model()),
        )
        assert all(point.exponential_prediction is not None for point in curve)

    def test_mission_summary_single_point(self):
        summary = mission_summary(
            fast_model(), mission_years=1.0, trials=40, seed=12
        )
        assert 0.0 <= summary.loss_probability <= 1.0
        assert summary.mission_years == pytest.approx(1.0)

    def test_rejects_empty_horizons(self):
        with pytest.raises(ValueError):
            loss_probability_curve(fast_model(), [], trials=10)

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ValueError):
            loss_probability_curve(fast_model(), [0.0], trials=10)

    def test_empirical_survival_table(self):
        table = empirical_survival_table(
            [10.0, 20.0, float("inf")], horizons=[5.0, 15.0, 25.0]
        )
        assert table[5.0] == pytest.approx(1.0)
        assert table[15.0] == pytest.approx(2.0 / 3.0)
        assert table[25.0] == pytest.approx(1.0 / 3.0)

    def test_empirical_survival_table_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_survival_table([], [1.0])
