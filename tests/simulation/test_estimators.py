"""Property tests for the extracted shared estimator plumbing.

The extraction of :mod:`repro.simulation.estimators` out of
``monte_carlo.py`` (and its adoption by ``optimize/evaluate.py``) must
be behaviour-preserving: same validation errors, same adaptive caps,
same re-exported objects, same numbers.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import estimators, monte_carlo
from repro.simulation.estimators import (
    BACKENDS,
    METHODS,
    DEFAULT_ADAPTIVE_CHUNK_LIMIT,
    adaptive_cap,
    check_backend,
    check_method,
    mttdl_mle,
    zero_loss_ci_high,
)
from repro.simulation.rare_event import RULE_OF_THREE


class TestReexports:
    """monte_carlo's historical import surface aliases the new module."""

    def test_classes_and_constants_are_the_same_objects(self):
        assert monte_carlo.MonteCarloEstimate is estimators.MonteCarloEstimate
        assert monte_carlo.HighCensoringWarning is estimators.HighCensoringWarning
        assert (
            monte_carlo.CENSORED_WARNING_FRACTION
            == estimators.CENSORED_WARNING_FRACTION
        )
        assert monte_carlo.AUTO_MIN_LOSSES == estimators.AUTO_MIN_LOSSES
        assert (
            monte_carlo.DEFAULT_ADAPTIVE_CHUNK_LIMIT
            == estimators.DEFAULT_ADAPTIVE_CHUNK_LIMIT
        )

    def test_private_aliases_kept_for_old_callers(self):
        assert monte_carlo._default_factory is estimators.default_factory
        assert monte_carlo._check_backend is estimators.check_backend


class TestCheckBackend:
    def test_valid_backends_pass(self):
        for backend in BACKENDS:
            check_backend(backend, None)

    @given(st.text(max_size=12).filter(lambda s: s not in BACKENDS))
    def test_everything_else_raises(self, backend):
        with pytest.raises(ValueError, match="unknown backend"):
            check_backend(backend, None)

    def test_batch_with_factory_rejected(self):
        with pytest.raises(ValueError, match="batch backend"):
            check_backend("batch", lambda streams: None)

    def test_event_with_factory_allowed(self):
        check_backend("event", lambda streams: None)


class TestCheckMethod:
    def test_valid_methods_pass(self):
        for method in METHODS:
            check_method(method, None)

    @given(st.text(max_size=12).filter(lambda s: s not in METHODS))
    def test_everything_else_raises(self, method):
        with pytest.raises(ValueError, match="unknown method"):
            check_method(method, None)

    def test_is_with_factory_rejected(self):
        with pytest.raises(ValueError, match="importance sampling"):
            check_method("is", lambda streams: None)

    def test_allowed_subset_rejects_the_rest(self):
        # The optimizer's refinement path: no splitting.
        check_method("auto", allowed=("standard", "is", "auto"))
        with pytest.raises(ValueError, match="unknown method"):
            check_method("splitting", allowed=("standard", "is", "auto"))


class TestAdaptiveCap:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_default_is_the_chunk_limit_multiple(self, trials):
        assert adaptive_cap(trials, None) == trials * DEFAULT_ADAPTIVE_CHUNK_LIMIT

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_explicit_cap_honoured_or_rejected(self, trials, extra):
        max_trials = trials + extra
        assert adaptive_cap(trials, max_trials) == max_trials
        if trials > 1:
            with pytest.raises(ValueError, match="max_trials"):
                adaptive_cap(trials, trials - 1)


class TestZeroLossBound:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_rule_of_three_clamped_to_one(self, trials):
        bound = zero_loss_ci_high(trials)
        assert bound == min(1.0, RULE_OF_THREE / trials)
        assert 0.0 < bound <= 1.0

    def test_non_positive_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            zero_loss_ci_high(0)


class TestMttdlMle:
    @given(
        st.floats(min_value=1.0, max_value=1e12),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_mean_is_total_time_over_losses(self, total_time, losses):
        estimate = mttdl_mle(total_time, losses, trials=losses)
        assert estimate.mean == total_time / losses
        assert estimate.std_error == pytest.approx(
            estimate.mean / math.sqrt(losses)
        )
        assert estimate.censored == 0

    def test_zero_losses_is_infinite(self):
        with pytest.warns(estimators.HighCensoringWarning):
            estimate = mttdl_mle(1000.0, 0, trials=10)
        assert estimate.mean == math.inf
        assert estimate.losses == 0

    @settings(max_examples=30)
    @given(st.integers(min_value=10, max_value=1000))
    def test_warning_exactly_above_the_censoring_threshold(self, trials):
        threshold = estimators.CENSORED_WARNING_FRACTION
        heavy_censored = int(trials * threshold) + 1
        light_censored = int(trials * threshold)
        import warnings as _warnings

        with pytest.warns(estimators.HighCensoringWarning):
            mttdl_mle(1000.0, trials - heavy_censored, trials)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", estimators.HighCensoringWarning)
            mttdl_mle(1000.0, trials - light_censored, trials)


class TestEvaluateUsesTheSharedModule:
    """optimize/evaluate's validation now delegates here."""

    def test_settings_reject_unknown_methods_with_the_shared_message(self):
        from repro.optimize.evaluate import EvaluationSettings

        with pytest.raises(ValueError, match="unknown method"):
            EvaluationSettings(method="psychic")
        with pytest.raises(ValueError, match="unknown method"):
            # Valid globally, but not a refinement method.
            EvaluationSettings(method="splitting")

    def test_zero_loss_refinement_uses_the_shared_bound(self):
        from dataclasses import replace

        from repro.optimize.evaluate import (
            EvaluationSettings,
            refine,
            screen,
        )
        from repro.optimize.space import CandidateDesign

        candidate = CandidateDesign(
            medium="drive:cheetah",
            replicas=4,
            audits_per_year=52.0,
            placement="multi",
            dataset_tb=1.0,
        )
        settings = EvaluationSettings(trials=50, seed=0, method="standard")
        evaluation = refine(screen(candidate, settings), settings)
        if evaluation.simulated.losses == 0:
            assert evaluation.simulated.ci_high == zero_loss_ci_high(
                evaluation.simulated.trials
            )
