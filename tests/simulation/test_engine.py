"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simulation.engine import SimulationEngine, drain_times


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(10.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("first"))
        engine.schedule(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_events_scheduled_from_callbacks(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append(("first", engine.now))
            engine.schedule(2.0, lambda: fired.append(("second", engine.now)))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == [("first", 1.0), ("second", 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_drain_times_skips_cancelled(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert drain_times(engine) == (1.0,)

    def test_peek_next_time_skips_cancelled(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        handle.cancel()
        assert engine.peek_next_time() == 5.0

    def test_cancel_head_then_peek_compacts_queue(self):
        # Cancelling the head entry leaves a tombstone in the heap;
        # peek_next_time must pop it (not just skip it) so repeated
        # peeks don't rescan, and pending_events reflects the purge.
        engine = SimulationEngine()
        head = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        head.cancel()
        assert engine.peek_next_time() == 2.0
        assert engine.pending_events == 1

    def test_cancel_every_event_then_peek_returns_none(self):
        engine = SimulationEngine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(3)]
        for handle in handles:
            handle.cancel()
        assert engine.peek_next_time() is None
        assert engine.pending_events == 0

    def test_cancel_head_during_run_preserves_clock_order(self):
        # A callback cancelling the next queued event must not disturb
        # the clock of later events.
        engine = SimulationEngine()
        fired = []
        later = engine.schedule(2.0, lambda: fired.append(("b", engine.now)))
        engine.schedule(
            1.0, lambda: (fired.append(("a", engine.now)), later.cancel())
        )
        engine.schedule(3.0, lambda: fired.append(("c", engine.now)))
        engine.run()
        assert fired == [("a", 1.0), ("c", 3.0)]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(100.0, lambda: fired.append(2))
        end = engine.run(until=10.0)
        assert fired == [1]
        assert end == 10.0
        assert engine.pending_events == 1

    def test_run_until_advances_clock_even_with_empty_queue(self):
        engine = SimulationEngine()
        end = engine.run(until=42.0)
        assert end == 42.0
        assert engine.now == 42.0

    def test_stop_halts_processing(self):
        engine = SimulationEngine()
        fired = []

        def first_event():
            fired.append(1)
            engine.stop()

        engine.schedule(1.0, first_event)
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_max_events_limits_processing(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert len(fired) == 3

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_stop_prevents_the_until_clock_advance(self):
        # run(until=...) normally advances the clock to `until`, but a
        # stop() (e.g. the data-loss event) must freeze the clock at the
        # stopping event so the loss time is reported, not the horizon.
        engine = SimulationEngine()
        engine.schedule(5.0, engine.stop)
        end = engine.run(until=100.0)
        assert end == 5.0
        assert engine.now == 5.0

    def test_run_after_stop_resumes_and_advances_to_until(self):
        engine = SimulationEngine()
        engine.schedule(5.0, engine.stop)
        engine.run(until=100.0)
        # A fresh run() clears the stopped flag; with nothing left in
        # the queue the clock advances to the new horizon.
        end = engine.run(until=100.0)
        assert end == 100.0

    def test_max_events_stops_short_of_until_advance(self):
        # Exhausting max_events with events still pending must not jump
        # the clock to `until` — simulated time stays at the last event.
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        end = engine.run(until=50.0, max_events=2)
        assert end == 2.0
        assert engine.events_processed == 2
        assert engine.pending_events == 3

    def test_max_events_counts_only_non_cancelled_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        cancelled = engine.schedule(2.0, lambda: fired.append(2))
        engine.schedule(3.0, lambda: fired.append(3))
        engine.schedule(4.0, lambda: fired.append(4))
        cancelled.cancel()
        engine.run(max_events=2)
        assert fired == [1, 3]
        assert engine.events_processed == 2

    def test_max_events_accumulates_across_runs(self):
        # The budget is per-call: a second run() gets a fresh allowance
        # while events_processed keeps the lifetime total.
        engine = SimulationEngine()
        for i in range(6):
            engine.schedule(float(i + 1), lambda: None)
        engine.run(max_events=2)
        engine.run(max_events=3)
        assert engine.events_processed == 5
        assert engine.pending_events == 1

    def test_step_returns_false_on_empty_queue(self):
        assert SimulationEngine().step() is False

    def test_reset_clears_state(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.events_processed == 0
