"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simulation.engine import SimulationEngine, drain_times


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(10.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("first"))
        engine.schedule(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_events_scheduled_from_callbacks(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append(("first", engine.now))
            engine.schedule(2.0, lambda: fired.append(("second", engine.now)))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == [("first", 1.0), ("second", 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_drain_times_skips_cancelled(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert drain_times(engine) == (1.0,)

    def test_peek_next_time_skips_cancelled(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        handle.cancel()
        assert engine.peek_next_time() == 5.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(100.0, lambda: fired.append(2))
        end = engine.run(until=10.0)
        assert fired == [1]
        assert end == 10.0
        assert engine.pending_events == 1

    def test_run_until_advances_clock_even_with_empty_queue(self):
        engine = SimulationEngine()
        end = engine.run(until=42.0)
        assert end == 42.0
        assert engine.now == 42.0

    def test_stop_halts_processing(self):
        engine = SimulationEngine()
        fired = []

        def first_event():
            fired.append(1)
            engine.stop()

        engine.schedule(1.0, first_event)
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_max_events_limits_processing(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert len(fired) == 3

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_step_returns_false_on_empty_queue(self):
        assert SimulationEngine().step() is False

    def test_reset_clears_state(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.events_processed == 0
