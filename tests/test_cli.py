"""Tests for the repro-storage command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command_parses(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_mttdl_defaults_are_the_scrubbed_cheetah_pair(self):
        args = build_parser().parse_args(["mttdl"])
        assert args.mv == 1.4e6
        assert args.ml == 2.8e5
        assert args.mdl == 1460.0
        assert args.alpha == 1.0
        assert args.mission_years == 50.0

    def test_sweep_audit_rates_parse(self):
        args = build_parser().parse_args(["sweep-audit", "--rates", "0", "3", "12"])
        assert args.rates == ["0", "3", "12"]

    def test_replication_arguments(self):
        args = build_parser().parse_args(
            ["replication", "--max-replicas", "4", "--alphas", "1.0", "0.5"]
        )
        assert args.max_replicas == 4
        assert args.alphas == ["1.0", "0.5"]

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.backend == "batch"
        assert args.metric == "mttdl"
        assert args.trials == 1000
        assert args.target_relative_error is None

    def test_simulate_backend_choices(self):
        args = build_parser().parse_args(["simulate", "--backend", "event"])
        assert args.backend == "event"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "gpu"])


class TestCommands:
    def test_scenarios_output(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "cheetah_no_scrub" in output
        assert "6128" in output

    def test_mttdl_output_defaults(self, capsys):
        assert main(["mttdl"]) == 0
        output = capsys.readouterr().out
        assert "MTTDL (years)" in output
        assert "P(loss in 50 years)" in output

    def test_mttdl_output_custom_parameters(self, capsys):
        assert main(["mttdl", "--mdl", "100", "--alpha", "0.5", "--mission-years", "10"]) == 0
        output = capsys.readouterr().out
        assert "P(loss in 10 years)" in output

    def test_mttdl_rejects_invalid_parameters(self, capsys):
        assert main(["mttdl", "--alpha", "2.0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_audit_output(self, capsys):
        assert main(["sweep-audit", "--rates", "0", "3", "12"]) == 0
        output = capsys.readouterr().out
        assert "audits_per_year" in output
        assert "mttdl_years" in output

    def test_replication_output(self, capsys):
        assert main(["replication", "--max-replicas", "3", "--alphas", "1.0", "0.01"]) == 0
        output = capsys.readouterr().out
        assert "replicas" in output
        assert "alpha=0.01" in output

    def test_validate_output(self, capsys):
        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "markov" in output
        assert "analytic_capped" in output

    def test_simulate_mttdl_output(self, capsys):
        # A compressed-time model keeps the simulation quick and free of
        # censoring; the batch backend is the default.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "400",
            "--max-time", "1e6",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (batch backend)" in output
        assert "95% CI low (years)" in output
        assert "censored" in output

    def test_simulate_loss_metric_event_backend(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--backend", "event", "--trials", "50",
            "--mission-years", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated loss probability (event backend)" in output
        assert "P(loss in 1 years)" in output

    def test_simulate_adaptive_flag(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "200",
            "--max-time", "1e6", "--target-relative-error", "0.1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (batch backend)" in output

    def test_simulate_rejects_bad_trials(self, capsys):
        assert main(["simulate", "--trials", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_scrubbing_story_visible_from_cli(self, capsys):
        # The headline comparison should be reproducible from the CLI:
        # no scrubbing (MDL = ML) vs the scrubbed default.
        main(["mttdl", "--mdl", "280000"])
        unscrubbed = capsys.readouterr().out
        main(["mttdl"])
        scrubbed = capsys.readouterr().out
        assert "31.9" in unscrubbed or "32.0" in unscrubbed
        assert "5106" in scrubbed or "5107" in scrubbed
