"""Tests for the repro-storage command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command_parses(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_mttdl_defaults_are_the_scrubbed_cheetah_pair(self):
        args = build_parser().parse_args(["mttdl"])
        assert args.mv == 1.4e6
        assert args.ml == 2.8e5
        assert args.mdl == 1460.0
        assert args.alpha == 1.0
        assert args.mission_years == 50.0

    def test_sweep_audit_rates_parse(self):
        args = build_parser().parse_args(["sweep-audit", "--rates", "0", "3", "12"])
        assert args.rates == ["0", "3", "12"]

    def test_replication_arguments(self):
        args = build_parser().parse_args(
            ["replication", "--max-replicas", "4", "--alphas", "1.0", "0.5"]
        )
        assert args.max_replicas == 4
        assert args.alphas == ["1.0", "0.5"]

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.backend == "batch"
        assert args.metric == "mttdl"
        assert args.trials == 1000
        assert args.target_relative_error is None

    def test_simulate_backend_choices(self):
        args = build_parser().parse_args(["simulate", "--backend", "event"])
        assert args.backend == "event"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "gpu"])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "--budget", "10000"])
        assert args.budget == 10000.0
        assert args.target_loss is None
        assert args.replicas == [2, 3, 4]
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.json

    def test_optimize_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "--budget", "1", "--placements", "orbital"]
            )

    def test_json_flags_parse(self):
        for command in (["mttdl"], ["simulate"], ["replication"],
                        ["optimize", "--budget", "1"]):
            args = build_parser().parse_args(command + ["--json"])
            assert args.json


class TestCommands:
    def test_scenarios_output(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "cheetah_no_scrub" in output
        assert "6128" in output

    def test_mttdl_output_defaults(self, capsys):
        assert main(["mttdl"]) == 0
        output = capsys.readouterr().out
        assert "MTTDL (years)" in output
        assert "P(loss in 50 years)" in output

    def test_mttdl_output_custom_parameters(self, capsys):
        assert main(["mttdl", "--mdl", "100", "--alpha", "0.5", "--mission-years", "10"]) == 0
        output = capsys.readouterr().out
        assert "P(loss in 10 years)" in output

    def test_mttdl_rejects_invalid_parameters(self, capsys):
        assert main(["mttdl", "--alpha", "2.0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_audit_output(self, capsys):
        assert main(["sweep-audit", "--rates", "0", "3", "12"]) == 0
        output = capsys.readouterr().out
        assert "audits_per_year" in output
        assert "mttdl_years" in output

    def test_replication_output(self, capsys):
        assert main(["replication", "--max-replicas", "3", "--alphas", "1.0", "0.01"]) == 0
        output = capsys.readouterr().out
        assert "replicas" in output
        assert "alpha=0.01" in output

    def test_validate_output(self, capsys):
        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "markov" in output
        assert "analytic_capped" in output

    def test_simulate_mttdl_output(self, capsys):
        # A compressed-time model keeps the simulation quick and free of
        # censoring; the batch backend is the default.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "400",
            "--max-time", "1e6",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (batch backend)" in output
        assert "95% CI low (years)" in output
        assert "censored" in output

    def test_simulate_loss_metric_event_backend(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--backend", "event", "--trials", "50",
            "--mission-years", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated loss probability (event backend)" in output
        assert "P(loss in 1 years)" in output

    def test_simulate_adaptive_flag(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "200",
            "--max-time", "1e6", "--target-relative-error", "0.1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (batch backend)" in output

    def test_simulate_rejects_bad_trials(self, capsys):
        assert main(["simulate", "--trials", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_loss_metric_reports_censored_trials(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--trials", "100", "--mission-years", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "censored" in output

    def test_simulate_surfaces_high_censoring_warning(self, capsys):
        # A horizon far below the MTTDL censors nearly every trial; with
        # the standard estimator forced, the warning must reach the CLI
        # output, not just the warning machinery.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--method", "standard",
        ]) == 0
        output = capsys.readouterr().out
        assert "warning:" in output
        assert "censored" in output

    def test_simulate_auto_switches_to_importance_sampling(self, capsys):
        # The same heavily-censoring run under the default auto method
        # must switch to importance sampling instead of warning.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "is"
        assert payload["warnings"] == []
        assert payload["effective_sample_size"] is not None

    def test_simulate_explicit_is_method_reports_ess(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--trials", "200", "--mission-years", "0.01",
            "--method", "is", "--bias", "20",
        ]) == 0
        output = capsys.readouterr().out
        assert "method" in output
        assert "effective sample size" in output

    def test_mttdl_json_output(self, capsys):
        assert main(["mttdl", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "mttdl"
        assert payload["mttdl_years"] == pytest.approx(5106.6, rel=1e-3)
        assert payload["parameters"]["alpha"] == 1.0

    def test_replication_json_output(self, capsys):
        assert main([
            "replication", "--max-replicas", "3", "--alphas", "1.0", "0.1",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replicas"] == [1, 2, 3]
        assert set(payload["mttdl_years_by_alpha"]) == {"1", "0.1"}
        assert len(payload["mttdl_years_by_alpha"]["1"]) == 3

    def test_simulate_json_output(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "300",
            "--max-time", "1e6", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"
        assert payload["metric"] == "mttdl"
        assert payload["trials"] == 300
        assert payload["censored"] == 0
        assert payload["warnings"] == []
        assert payload["ci_low"] <= payload["mean"] <= payload["ci_high"]

    def test_simulate_json_records_warnings(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--method", "standard", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warnings"]
        assert "censored" in payload["warnings"][0]

    def test_scrubbing_story_visible_from_cli(self, capsys):
        # The headline comparison should be reproducible from the CLI:
        # no scrubbing (MDL = ML) vs the scrubbed default.
        main(["mttdl", "--mdl", "280000"])
        unscrubbed = capsys.readouterr().out
        main(["mttdl"])
        scrubbed = capsys.readouterr().out
        assert "31.9" in unscrubbed or "32.0" in unscrubbed
        assert "5106" in scrubbed or "5107" in scrubbed


class TestOptimizeCommand:
    """End-to-end runs of the budget-constrained planner."""

    GRID = [
        "--media", "drive:barracuda", "drive:cheetah",
        "--replicas", "2", "3",
        "--audit-rates", "0", "12", "52",
        "--trials", "300",
    ]

    def test_requires_budget_or_target(self, capsys):
        assert main(["optimize"] + self.GRID) == 2
        assert "target-loss" in capsys.readouterr().err

    def test_text_output_has_frontier_and_recommendation(self, capsys):
        assert main(["optimize", "--budget", "50000"] + self.GRID) == 0
        output = capsys.readouterr().out
        assert "cost-reliability Pareto frontier" in output
        assert "recommended configuration" in output
        assert "search effort" in output
        assert "log y" in output  # the ASCII frontier chart rendered

    def test_recommendation_respects_budget_and_agrees_with_screen(self, capsys):
        assert main(["optimize", "--budget", "20000", "--json"] + self.GRID) == 0
        payload = json.loads(capsys.readouterr().out)
        recommended = payload["recommended"]
        assert recommended["annual_cost"] <= 20000
        assert recommended["agrees_with_screen"] is True
        assert payload["summary"]["candidates"] == 24
        assert payload["summary"]["pruned_by_screen"] >= 12
        # Every refined frontier point carries a confidence interval.
        for point in payload["frontier"]:
            assert point["simulated"]["ci_low"] <= point["simulated"]["ci_high"]

    def test_target_loss_query(self, capsys):
        assert main(
            ["optimize", "--target-loss", "0.01", "--json"] + self.GRID
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recommended"]["simulated"]["mean"] <= 0.01

    def test_infeasible_budget_is_an_error(self, capsys):
        assert main(["optimize", "--budget", "1"] + self.GRID) == 2
        assert "budget" in capsys.readouterr().err

    def test_unknown_medium_is_an_error_not_a_traceback(self, capsys):
        assert main(["optimize", "--budget", "1", "--media", "drive:floppy"]) == 2
        err = capsys.readouterr().err
        assert "unknown medium" in err
        assert "drive:barracuda" in err

    def test_cached_rerun_evaluates_zero_new_candidates(self, capsys, tmp_path):
        command = (
            ["optimize", "--budget", "50000", "--json",
             "--cache-dir", str(tmp_path)] + self.GRID
        )
        assert main(command) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["summary"]["new_evaluations"] == first["summary"]["refined"]
        assert main(command) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["summary"]["new_evaluations"] == 0
        assert second["summary"]["cache_hits"] == second["summary"]["refined"]
        assert second["frontier"] == first["frontier"]
        assert second["recommended"] == first["recommended"]


class TestSweepAuditJson:
    def test_sweep_audit_json_flag_parses(self):
        args = build_parser().parse_args(["sweep-audit", "--json"])
        assert args.json

    def test_sweep_audit_json_output(self, capsys):
        assert main(["sweep-audit", "--rates", "0", "3", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep-audit"
        assert payload["audits_per_year"] == [0.0, 3.0, 12.0]
        assert set(payload["metrics"]) == {
            "mttdl_hours", "mttdl_years", "mdl_hours",
        }
        assert len(payload["metrics"]["mttdl_years"]) == 3
        # Scrubbing more often never hurts the MTTDL.
        years = payload["metrics"]["mttdl_years"]
        assert years[0] <= years[1] <= years[2]


class TestFleetCommand:
    """End-to-end runs of the decades-scale fleet simulator."""

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.timeline is None
        assert args.years == 50.0
        assert args.members == 2000
        assert args.seed == 0
        assert args.jobs == 1
        assert not args.json

    def test_text_output_has_curves_and_summary(self, capsys):
        assert main([
            "fleet", "--members", "300", "--years", "20",
            "--refresh-years", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "fleet outcome" in output
        assert "fleet trajectory" in output
        assert "survival curve" in output
        assert "cumulative cost per member" in output

    def test_json_output_structure(self, capsys):
        assert main([
            "fleet", "--members", "300", "--years", "10",
            "--refresh-years", "4", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "fleet"
        assert payload["summary"]["members"] == 300
        assert payload["summary"]["epochs"] >= 3
        curve = payload["survival_curve"]
        assert curve[0] == 1.0
        assert all(b <= a for a, b in zip(curve, curve[1:]))
        assert len(payload["cumulative_cost_per_member"]) == len(curve) - 1
        assert payload["summary"]["loss_fraction"] == (
            pytest.approx(1.0 - curve[-1])
        )

    def test_timeline_file_round_trips_through_the_cli(self, capsys, tmp_path):
        from repro.core.parameters import FaultModel
        from repro.fleet import stationary_timeline

        model = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)
        path = tmp_path / "timeline.json"
        stationary_timeline(
            model, 2.0, annual_cost_per_member=10.0
        ).to_json(path)
        assert main([
            "fleet", "--timeline", str(path), "--members", "200", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["years"] == 2.0
        assert payload["summary"]["epochs"] == 1
        assert payload["summary"]["losses"] > 0

    def test_seed_changes_the_realisation(self, capsys):
        command = ["fleet", "--members", "300", "--years", "10",
                   "--refresh-years", "4", "--json"]
        assert main(command + ["--seed", "1"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(command + ["--seed", "1"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert main(command + ["--seed", "2"]) == 0
        third = json.loads(capsys.readouterr().out)
        assert first == second
        assert third != first

    def test_missing_timeline_file_is_an_error(self, capsys):
        assert main([
            "fleet", "--timeline", "/nonexistent/t.json", "--members", "10",
        ]) == 2
        assert "timeline file not found" in capsys.readouterr().err

    def test_malformed_timeline_file_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main([
            "fleet", "--timeline", str(path), "--members", "10",
        ]) == 2
        assert "malformed timeline" in capsys.readouterr().err

    def test_unknown_medium_is_an_error(self, capsys):
        assert main(["fleet", "--medium", "drive:floppy"]) == 2
        assert "unknown medium" in capsys.readouterr().err
