"""Tests for the repro-storage command-line interface.

Every sub-command is a thin adapter over ``repro.study``; ``--json``
emits the uniform ``{"command", "schema", "scenario", "result"}``
envelope.  ``wall_time_seconds`` is the one legitimately
non-deterministic result field, so payload-equality assertions compare
modulo it.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.study import CLI_JSON_SCHEMA_VERSION, SCHEMA_VERSION


def _without_wall_time(payload):
    """Drop the only non-deterministic field from a JSON envelope."""
    clone = json.loads(json.dumps(payload))
    clone["result"].pop("wall_time_seconds", None)
    return clone


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command_parses(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.command == "scenarios"

    def test_mttdl_defaults_are_the_scrubbed_cheetah_pair(self):
        args = build_parser().parse_args(["mttdl"])
        assert args.mv == 1.4e6
        assert args.ml == 2.8e5
        assert args.mdl == 1460.0
        assert args.alpha == 1.0
        assert args.mission_years == 50.0

    def test_sweep_audit_rates_parse(self):
        args = build_parser().parse_args(["sweep-audit", "--rates", "0", "3", "12"])
        assert args.rates == ["0", "3", "12"]

    def test_replication_arguments(self):
        args = build_parser().parse_args(
            ["replication", "--max-replicas", "4", "--alphas", "1.0", "0.5"]
        )
        assert args.max_replicas == 4
        assert args.alphas == ["1.0", "0.5"]

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.backend == "batch"
        assert args.metric == "mttdl"
        assert args.trials == 1000
        assert args.target_relative_error is None

    def test_simulate_backend_choices(self):
        args = build_parser().parse_args(["simulate", "--backend", "event"])
        assert args.backend == "event"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "gpu"])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "--budget", "10000"])
        assert args.budget == 10000.0
        assert args.target_loss is None
        assert args.replicas == [2, 3, 4]
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.json

    def test_optimize_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "--budget", "1", "--placements", "orbital"]
            )

    def test_json_flags_parse(self):
        for command in (["mttdl"], ["simulate"], ["replication"],
                        ["validate"], ["optimize", "--budget", "1"]):
            args = build_parser().parse_args(command + ["--json"])
            assert args.json

    def test_seed_and_jobs_accepted_by_every_stochastic_subcommand(self):
        # One shared parent parser: identical flags, defaults and help
        # on simulate / optimize / fleet / sweep-audit.
        for command in (["simulate"], ["optimize", "--budget", "1"],
                        ["fleet"], ["sweep-audit"]):
            args = build_parser().parse_args(
                command + ["--seed", "7", "--jobs", "3"]
            )
            assert args.seed == 7
            assert args.jobs == 3

    def test_negative_seed_is_a_uniform_error(self, capsys):
        for command in (
            ["simulate", "--trials", "10"],
            ["optimize", "--budget", "1"],
            ["fleet", "--members", "10"],
            ["sweep-audit", "--trials", "10"],
        ):
            assert main(command + ["--seed", "-1"]) == 2
            assert "seed must be non-negative" in capsys.readouterr().err

    def test_bad_jobs_is_a_uniform_error(self, capsys):
        for command in (
            ["simulate", "--trials", "10"],
            ["fleet", "--members", "10"],
        ):
            assert main(command + ["--jobs", "0"]) == 2
            assert "jobs must be at least 1" in capsys.readouterr().err


class TestCommands:
    def test_scenarios_output(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "cheetah_no_scrub" in output
        assert "6128" in output

    def test_mttdl_output_defaults(self, capsys):
        assert main(["mttdl"]) == 0
        output = capsys.readouterr().out
        assert "MTTDL (years)" in output
        assert "P(loss in 50 years)" in output

    def test_mttdl_output_custom_parameters(self, capsys):
        assert main(["mttdl", "--mdl", "100", "--alpha", "0.5", "--mission-years", "10"]) == 0
        output = capsys.readouterr().out
        assert "P(loss in 10 years)" in output

    def test_mttdl_rejects_invalid_parameters(self, capsys):
        assert main(["mttdl", "--alpha", "2.0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_audit_output(self, capsys):
        assert main(["sweep-audit", "--rates", "0", "3", "12"]) == 0
        output = capsys.readouterr().out
        assert "audits_per_year" in output
        assert "mttdl_years" in output

    def test_sweep_audit_simulated_series(self, capsys):
        assert main([
            "sweep-audit", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--rates", "0", "12",
            "--trials", "150", "--seed", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "sim_mttdl_hours" in output
        assert "sim_std_error" in output

    def test_replication_output(self, capsys):
        assert main(["replication", "--max-replicas", "3", "--alphas", "1.0", "0.01"]) == 0
        output = capsys.readouterr().out
        assert "replicas" in output
        assert "alpha=0.01" in output

    def test_validate_output(self, capsys):
        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "markov" in output
        assert "analytic_capped" in output

    def test_validate_json_output(self, capsys):
        assert main(["validate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "validate"
        methods = payload["result"]["details"]["methods_mttdl_years"]
        assert set(methods) >= {
            "analytic_capped", "markov", "markov_paper_convention",
        }

    def test_simulate_mttdl_output(self, capsys):
        # A compressed-time model keeps the simulation quick and free of
        # censoring; the default engine pilots on the batch backend.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "400",
            "--max-time", "1e6",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (auto engine)" in output
        assert "95% CI low (years)" in output
        assert "censored" in output
        # engine="auto" on a mirrored pair cross-checks the closed
        # forms and the Markov chain for free.
        assert "cross-check" in output

    def test_simulate_loss_metric_event_backend(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--backend", "event", "--method", "standard",
            "--trials", "50", "--mission-years", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated loss probability (event engine)" in output
        assert "P(loss in 1 years)" in output

    def test_simulate_adaptive_flag(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "200",
            "--max-time", "1e6", "--target-relative-error", "0.1",
        ]) == 0
        output = capsys.readouterr().out
        assert "simulated MTTDL (auto engine)" in output

    def test_simulate_rejects_bad_trials(self, capsys):
        assert main(["simulate", "--trials", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_loss_metric_reports_censored_trials(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--trials", "100", "--mission-years", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "censored" in output

    def test_simulate_surfaces_high_censoring_warning(self, capsys):
        # A horizon far below the MTTDL censors nearly every trial; with
        # the standard estimator forced, the warning must reach the CLI
        # output, not just the warning machinery.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--method", "standard",
        ]) == 0
        output = capsys.readouterr().out
        assert "warning:" in output
        assert "censored" in output

    def test_simulate_auto_switches_to_importance_sampling(self, capsys):
        # The same heavily-censoring run under the default auto method
        # must switch to importance sampling instead of warning.
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--json",
        ]) == 0
        result = json.loads(capsys.readouterr().out)["result"]
        assert result["method"] == "is"
        assert result["warnings"] == []
        assert result["effective_sample_size"] is not None

    def test_simulate_explicit_is_method_reports_ess(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--metric", "loss",
            "--trials", "200", "--mission-years", "0.01",
            "--method", "is", "--bias", "20",
        ]) == 0
        output = capsys.readouterr().out
        assert "method" in output
        assert "effective sample size" in output

    def test_mttdl_json_output(self, capsys):
        assert main(["mttdl", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "mttdl"
        assert payload["schema"] == CLI_JSON_SCHEMA_VERSION
        assert payload["result"]["schema"] == SCHEMA_VERSION
        details = payload["result"]["details"]
        assert details["mttdl_years"] == pytest.approx(5106.9, rel=1e-3)
        assert payload["scenario"]["system"]["model"]["alpha"] == 1.0
        # The headline value is the MTTDL in hours.
        assert payload["result"]["units"] == "hours"
        assert payload["result"]["value"] == pytest.approx(
            details["mttdl_hours"]
        )

    def test_json_payload_roundtrips_to_the_same_answer(self, capsys):
        # The envelope embeds the scenario: loading it back and
        # re-running must reproduce the result bit-for-bit.
        from repro.study import Scenario, run

        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "200",
            "--max-time", "1e6", "--seed", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        scenario = Scenario.from_dict(payload["scenario"])
        rerun = run(scenario)
        assert rerun.value == payload["result"]["value"]
        assert rerun.std_error == payload["result"]["std_error"]
        assert rerun.scenario_hash == payload["result"]["scenario_hash"]

    def test_replication_json_output(self, capsys):
        assert main([
            "replication", "--max-replicas", "3", "--alphas", "1.0", "0.1",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        details = payload["result"]["details"]
        assert details["values"] == [1.0, 2.0, 3.0]
        assert set(details["series"]) == {"1", "0.1"}
        assert len(details["series"]["1"]["mttdl_years"]) == 3

    def test_simulate_json_output(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "300",
            "--max-time", "1e6", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"
        assert payload["scenario"]["question"] == "mttdl"
        result = payload["result"]
        assert result["trials"] == 300
        assert result["censored"] == 0
        assert result["warnings"] == []
        assert result["ci_low"] <= result["value"] <= result["ci_high"]
        assert result["scenario_hash"]
        assert result["wall_time_seconds"] >= 0

    def test_simulate_json_records_warnings(self, capsys):
        assert main([
            "simulate", "--mv", "500", "--ml", "100", "--mrv", "1",
            "--mrl", "1", "--mdl", "5", "--trials", "100",
            "--max-time", "150", "--method", "standard", "--json",
        ]) == 0
        result = json.loads(capsys.readouterr().out)["result"]
        assert result["warnings"]
        assert "censored" in result["warnings"][0]

    def test_scrubbing_story_visible_from_cli(self, capsys):
        # The headline comparison should be reproducible from the CLI:
        # no scrubbing (MDL = ML) vs the scrubbed default.
        main(["mttdl", "--mdl", "280000"])
        unscrubbed = capsys.readouterr().out
        main(["mttdl"])
        scrubbed = capsys.readouterr().out
        assert "31.9" in unscrubbed or "32.0" in unscrubbed
        assert "5106" in scrubbed or "5107" in scrubbed


class TestOptimizeCommand:
    """End-to-end runs of the budget-constrained planner."""

    GRID = [
        "--media", "drive:barracuda", "drive:cheetah",
        "--replicas", "2", "3",
        "--audit-rates", "0", "12", "52",
        "--trials", "300",
    ]

    def test_requires_budget_or_target(self, capsys):
        assert main(["optimize"] + self.GRID) == 2
        assert "target-loss" in capsys.readouterr().err

    def test_text_output_has_frontier_and_recommendation(self, capsys):
        assert main(["optimize", "--budget", "50000"] + self.GRID) == 0
        output = capsys.readouterr().out
        assert "cost-reliability Pareto frontier" in output
        assert "recommended configuration" in output
        assert "search effort" in output
        assert "log y" in output  # the ASCII frontier chart rendered

    def test_recommendation_respects_budget_and_agrees_with_screen(self, capsys):
        assert main(["optimize", "--budget", "20000", "--json"] + self.GRID) == 0
        payload = json.loads(capsys.readouterr().out)
        details = payload["result"]["details"]
        recommended = details["recommended"]
        assert recommended["annual_cost"] <= 20000
        assert recommended["agrees_with_screen"] is True
        assert details["summary"]["candidates"] == 24
        assert details["summary"]["pruned_by_screen"] >= 12
        # Every refined frontier point carries a confidence interval.
        for point in details["frontier"]:
            assert point["simulated"]["ci_low"] <= point["simulated"]["ci_high"]
        # The headline estimate mirrors the recommendation.
        assert payload["result"]["value"] == pytest.approx(
            recommended["simulated"]["mean"]
        )

    def test_target_loss_query(self, capsys):
        assert main(
            ["optimize", "--target-loss", "0.01", "--json"] + self.GRID
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        recommended = payload["result"]["details"]["recommended"]
        assert recommended["simulated"]["mean"] <= 0.01

    def test_infeasible_budget_is_an_error(self, capsys):
        assert main(["optimize", "--budget", "1"] + self.GRID) == 2
        assert "budget" in capsys.readouterr().err

    def test_unknown_medium_is_an_error_not_a_traceback(self, capsys):
        assert main(["optimize", "--budget", "1", "--media", "drive:floppy"]) == 2
        err = capsys.readouterr().err
        assert "unknown medium" in err
        assert "drive:barracuda" in err

    def test_cached_rerun_evaluates_zero_new_candidates(self, capsys, tmp_path):
        command = (
            ["optimize", "--budget", "50000", "--json",
             "--cache-dir", str(tmp_path)] + self.GRID
        )
        assert main(command) == 0
        first = json.loads(capsys.readouterr().out)
        first_details = first["result"]["details"]
        assert (
            first_details["summary"]["new_evaluations"]
            == first_details["summary"]["refined"]
        )
        assert main(command) == 0
        second = json.loads(capsys.readouterr().out)
        second_details = second["result"]["details"]
        assert second_details["summary"]["new_evaluations"] == 0
        assert (
            second_details["summary"]["cache_hits"]
            == second_details["summary"]["refined"]
        )
        assert second_details["frontier"] == first_details["frontier"]
        assert second_details["recommended"] == first_details["recommended"]
        # Two fully-cached reruns are identical modulo wall time (the
        # first run differs in the new_evaluations/cache_hits counters).
        assert main(command) == 0
        third = json.loads(capsys.readouterr().out)
        assert _without_wall_time(third) == _without_wall_time(second)


class TestSweepAuditJson:
    def test_sweep_audit_json_flag_parses(self):
        args = build_parser().parse_args(["sweep-audit", "--json"])
        assert args.json

    def test_sweep_audit_json_output(self, capsys):
        assert main(["sweep-audit", "--rates", "0", "3", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep-audit"
        details = payload["result"]["details"]
        assert details["values"] == [0.0, 3.0, 12.0]
        assert set(details["metrics"]) == {
            "mttdl_hours", "mttdl_years", "mdl_hours",
        }
        assert len(details["metrics"]["mttdl_years"]) == 3
        # Scrubbing more often never hurts the MTTDL.
        years = details["metrics"]["mttdl_years"]
        assert years[0] <= years[1] <= years[2]


class TestFleetCommand:
    """End-to-end runs of the decades-scale fleet simulator."""

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.timeline is None
        assert args.years == 50.0
        assert args.members == 2000
        assert args.seed == 0
        assert args.jobs == 1
        assert not args.json

    def test_text_output_has_curves_and_summary(self, capsys):
        assert main([
            "fleet", "--members", "300", "--years", "20",
            "--refresh-years", "8",
        ]) == 0
        output = capsys.readouterr().out
        assert "fleet outcome" in output
        assert "fleet trajectory" in output
        assert "survival curve" in output
        assert "cumulative cost per member" in output

    def test_json_output_structure(self, capsys):
        assert main([
            "fleet", "--members", "300", "--years", "10",
            "--refresh-years", "4", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "fleet"
        details = payload["result"]["details"]
        assert details["summary"]["members"] == 300
        assert details["summary"]["epochs"] >= 3
        curve = details["survival_curve"]
        assert curve[0] == 1.0
        assert all(b <= a for a, b in zip(curve, curve[1:]))
        assert len(details["cumulative_cost_per_member"]) == len(curve) - 1
        assert details["summary"]["loss_fraction"] == (
            pytest.approx(1.0 - curve[-1])
        )
        # The headline estimate is the fleet loss fraction.
        assert payload["result"]["value"] == pytest.approx(
            details["summary"]["loss_fraction"]
        )

    def test_timeline_file_round_trips_through_the_cli(self, capsys, tmp_path):
        from repro.core.parameters import FaultModel
        from repro.fleet import stationary_timeline

        model = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)
        path = tmp_path / "timeline.json"
        stationary_timeline(
            model, 2.0, annual_cost_per_member=10.0
        ).to_json(path)
        assert main([
            "fleet", "--timeline", str(path), "--members", "200", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["result"]["details"]["summary"]
        assert summary["years"] == 2.0
        assert summary["epochs"] == 1
        assert summary["losses"] > 0

    def test_seed_changes_the_realisation(self, capsys):
        command = ["fleet", "--members", "300", "--years", "10",
                   "--refresh-years", "4", "--json"]
        assert main(command + ["--seed", "1"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(command + ["--seed", "1"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert main(command + ["--seed", "2"]) == 0
        third = json.loads(capsys.readouterr().out)
        assert _without_wall_time(first) == _without_wall_time(second)
        assert _without_wall_time(third) != _without_wall_time(first)

    def test_missing_timeline_file_is_an_error(self, capsys):
        assert main([
            "fleet", "--timeline", "/nonexistent/t.json", "--members", "10",
        ]) == 2
        assert "timeline file not found" in capsys.readouterr().err

    def test_malformed_timeline_file_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main([
            "fleet", "--timeline", str(path), "--members", "10",
        ]) == 2
        assert "malformed timeline" in capsys.readouterr().err

    def test_unknown_medium_is_an_error(self, capsys):
        assert main(["fleet", "--medium", "drive:floppy"]) == 2
        assert "unknown medium" in capsys.readouterr().err


class TestTelemetry:
    def _simulate(self, trace_path, extra=()):
        return main([
            "simulate", "--trials", "300", "--seed", "3",
            "--max-time", "1e6", "--telemetry", str(trace_path), *extra,
        ])

    def test_telemetry_writes_a_valid_trace(self, capsys, tmp_path):
        from repro import obs

        path = tmp_path / "trace.jsonl"
        assert self._simulate(path) == 0
        capsys.readouterr()
        assert obs.validate_trace(path) > 0
        events = [record["event"] for record in obs.read_trace(path)]
        assert events[0] == "study_start"
        assert events[-1] == "study_end"

    def test_telemetry_does_not_change_the_answer(self, capsys, tmp_path):
        assert main([
            "simulate", "--trials", "300", "--seed", "3",
            "--max-time", "1e6", "--json",
        ]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert self._simulate(tmp_path / "t.jsonl", ("--json",)) == 0
        traced = json.loads(capsys.readouterr().out)
        # The traced run additionally carries the telemetry payload.
        assert "telemetry" in traced["result"]["details"]
        del traced["result"]["details"]["telemetry"]
        assert _without_wall_time(traced) == _without_wall_time(plain)

    def test_trace_subcommand_summarises(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert self._simulate(path) == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        output = capsys.readouterr().out
        assert "study run" in output
        assert "phase latency" in output
        assert "kernel" in output

    def test_trace_subcommand_json(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert self._simulate(path) == 0
        capsys.readouterr()
        assert main(["trace", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "trace"
        assert payload["summary"]["records"] > 0
        assert payload["summary"]["studies"][0]["question"] == "mttdl"

    def test_trace_missing_file_is_an_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_trace_malformed_file_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        assert main(["trace", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_optimize_profile_flag(self, capsys):
        assert main([
            "optimize", "--budget", "500000", "--trials", "200",
            "--media", "drive:cheetah", "--replicas", "2",
            "--audit-rates", "12", "--json", "--profile",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["result"]["details"]["profile"]) == {
            "setup_seconds", "kernel_seconds", "merge_seconds",
        }
