"""Deprecation shims delegate to ``study.run`` with identical numbers.

The acceptance bar for the facade refactor: at a fixed seed, the legacy
entry points (``estimate_mttdl`` / ``estimate_loss_probability`` / the
simulated sweeps) reproduce their pre-refactor values bit-for-bit —
which, post-refactor, means "exactly what the shared loops in
:mod:`repro.simulation.estimators` produce" and "exactly what the
facade produces for the equivalent scenario".
"""

import pytest

from repro.analysis.sweep import (
    simulated_audit_sweep,
    simulated_parameter_sweep,
)
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.estimators import run_loss_probability, run_mttdl
from repro.simulation.monte_carlo import (
    estimate_loss_probability,
    estimate_mttdl,
)
from repro.simulation.rng import RandomStreams
from repro.simulation.system import system_from_fault_model
from repro.study import EstimatorPolicy, Scenario, SweepSpec, SystemSpec, run

MODEL = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)

# Every legacy (backend, method) combination with an engine equivalent.
COMBOS = [
    ("batch", "standard"),
    ("event", "standard"),
    ("batch", "auto"),
    ("batch", "is"),
]


class TestEstimateMttdlShim:
    @pytest.mark.parametrize("backend,method", COMBOS)
    def test_matches_the_shared_loop_bit_for_bit(self, backend, method):
        kwargs = dict(
            trials=150, seed=7, max_time=1e5, replicas=2, backend=backend,
            method=method,
        )
        shim = estimate_mttdl(MODEL, **kwargs)
        loop = run_mttdl(model=MODEL, **kwargs)
        assert shim == loop

    def test_matches_the_facade_bit_for_bit(self):
        shim = estimate_mttdl(
            MODEL, trials=150, seed=7, max_time=1e5, backend="batch",
            method="auto",
        )
        facade = run(
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL),
                max_time_hours=1e5,
                policy=EstimatorPolicy(
                    engine="auto", trials=150, seed=7, cross_check=False
                ),
            )
        )
        assert shim.mean == facade.value
        assert shim.std_error == facade.std_error
        assert shim.trials == facade.trials
        assert shim.censored == facade.censored
        assert shim.method == facade.method

    def test_event_auto_combination_still_works(self):
        # The one grid point without an engine equivalent falls back to
        # the shared loop directly (event-backend auto piloting).
        estimate = estimate_mttdl(
            MODEL, trials=100, seed=1, max_time=1e5, backend="event",
            method="auto",
        )
        loop = run_mttdl(
            model=MODEL, trials=100, seed=1, max_time=1e5, backend="event",
            method="auto",
        )
        assert estimate == loop

    def test_factory_calls_bypass_the_facade(self):
        def factory(streams: RandomStreams):
            return system_from_fault_model(MODEL, replicas=2, streams=streams)

        estimate = estimate_mttdl(
            factory=factory, trials=50, seed=3, max_time=1e5
        )
        loop = run_mttdl(factory=factory, trials=50, seed=3, max_time=1e5)
        assert estimate == loop

    def test_invalid_arguments_raise_the_canonical_errors(self):
        with pytest.raises(ValueError, match="trials"):
            estimate_mttdl(MODEL, trials=0)
        with pytest.raises(ValueError, match="backend"):
            estimate_mttdl(MODEL, backend="gpu")
        with pytest.raises(ValueError, match="method"):
            estimate_mttdl(MODEL, method="psychic")
        with pytest.raises(ValueError, match="splitting"):
            estimate_mttdl(MODEL, method="splitting")


class TestEstimateLossProbabilityShim:
    @pytest.mark.parametrize("backend,method", COMBOS)
    def test_matches_the_shared_loop_bit_for_bit(self, backend, method):
        kwargs = dict(
            mission_time=HOURS_PER_YEAR, trials=150, seed=5, replicas=2,
            backend=backend, method=method,
        )
        shim = estimate_loss_probability(MODEL, **kwargs)
        loop = run_loss_probability(model=MODEL, **kwargs)
        assert shim == loop

    def test_non_roundtripping_mission_time_still_matches(self):
        # A mission time whose hours->years->hours conversion loses a
        # ulp cannot delegate through the (years-denominated) scenario;
        # the shim must fall back to the shared loop with the horizon
        # untouched, bit-for-bit.
        mission_time = next(
            m
            for m in (10000.0 + 0.1 * k for k in range(1, 1000))
            if (m / HOURS_PER_YEAR) * HOURS_PER_YEAR != m
        )
        kwargs = dict(
            mission_time=mission_time, trials=100, seed=4, backend="batch",
            method="standard",
        )
        shim = estimate_loss_probability(MODEL, **kwargs)
        loop = run_loss_probability(model=MODEL, **kwargs)
        assert shim == loop

    def test_splitting_matches_the_shared_loop(self):
        kwargs = dict(
            mission_time=HOURS_PER_YEAR / 100.0, trials=60, seed=5,
            backend="event", method="splitting",
        )
        shim = estimate_loss_probability(MODEL, **kwargs)
        loop = run_loss_probability(model=MODEL, **kwargs)
        assert shim == loop

    def test_matches_the_facade_bit_for_bit(self):
        shim = estimate_loss_probability(
            MODEL, mission_time=HOURS_PER_YEAR, trials=150, seed=5,
            backend="batch", method="auto",
        )
        facade = run(
            Scenario(
                question="loss_probability",
                system=SystemSpec(model=MODEL),
                mission_years=1.0,
                policy=EstimatorPolicy(
                    engine="auto", trials=150, seed=5, cross_check=False
                ),
            )
        )
        assert shim.mean == facade.value
        assert shim.std_error == facade.std_error
        assert shim.method == facade.method
        assert shim.effective_sample_size == facade.effective_sample_size


class TestSweepShims:
    def test_parameter_sweep_matches_the_facade(self):
        legacy = simulated_parameter_sweep(
            MODEL, "MDL", [5.0, 50.0], trials=120, seed=2, backend="batch",
        )
        facade = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(parameter="MDL", values=(5.0, 50.0)),
                policy=EstimatorPolicy(
                    engine="batch", trials=120, seed=2, cross_check=False
                ),
            )
        )
        assert legacy.metrics == facade.details["metrics"]
        assert legacy.values == facade.details["values"]

    def test_audit_sweep_matches_the_facade(self):
        legacy = simulated_audit_sweep(
            MODEL, [0.0, 12.0], trials=120, seed=2, backend="batch",
        )
        facade = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(
                    parameter="audits_per_year", values=(0.0, 12.0)
                ),
                policy=EstimatorPolicy(
                    engine="batch", trials=120, seed=2, cross_check=False
                ),
            )
        )
        assert legacy.metrics == facade.details["metrics"]

    def test_sweep_shims_keep_their_legacy_errors(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            simulated_parameter_sweep(MODEL, "warp", [1.0])
        with pytest.raises(ValueError, match="unknown metric"):
            simulated_parameter_sweep(MODEL, "MDL", [1.0], metric="vibes")
        with pytest.raises(ValueError, match="unknown backend"):
            simulated_audit_sweep(MODEL, [0.0], backend="gpu")
