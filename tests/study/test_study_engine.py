"""The engine dispatcher: all five questions, cross-checks, provenance."""

import math
import warnings

import pytest

from repro.core.mttdl import mirrored_mttdl
from repro.core.probability import probability_of_loss
from repro.core.units import years_to_hours
from repro.core.parameters import FaultModel
from repro.fleet import simulate_fleet, stationary_timeline
from repro.markov.builders import mirrored_mttdl_markov
from repro.optimize import DesignSpace, EvaluationSettings, optimize, recommend
from repro.simulation.monte_carlo import HighCensoringWarning
from repro.study import (
    EstimatorPolicy,
    Scenario,
    StudyResult,
    SweepSpec,
    SystemSpec,
    run,
)

MODEL = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)


def _point(question="mttdl", engine="auto", **kwargs):
    policy_kwargs = {
        key: kwargs.pop(key)
        for key in ("trials", "seed", "bias", "target_relative_error")
        if key in kwargs
    }
    return Scenario(
        question=question,
        system=SystemSpec(model=MODEL),
        policy=EstimatorPolicy(engine=engine, **policy_kwargs),
        **kwargs,
    )


class TestAllFiveQuestions:
    """``repro.study.run`` answers every question kind."""

    def test_mttdl(self):
        result = run(_point("mttdl", trials=300, max_time_hours=1e6))
        assert result.question == "mttdl"
        assert result.units == "hours"
        assert result.value > 0
        assert result.ci_low <= result.value <= result.ci_high

    def test_loss_probability(self):
        result = run(_point("loss_probability", trials=300, mission_years=1.0))
        assert result.units == "probability"
        assert 0.0 <= result.value <= 1.0

    def test_sweep(self):
        result = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(parameter="alpha", values=(1.0, 0.5)),
                policy=EstimatorPolicy(engine="analytic"),
            )
        )
        assert result.details["metrics"]["mttdl_hours"]

    def test_sweep_respects_the_requested_replica_degrees(self):
        result = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(
                    parameter="replicas",
                    values=(2.0, 4.0),
                    correlation_factors=(1.0, 0.1),
                ),
                policy=EstimatorPolicy(engine="analytic"),
            )
        )
        from repro.core.replication import replicated_mttdl

        assert result.details["values"] == [2.0, 4.0]
        assert result.details["series"]["0.1"]["mttdl_hours"] == [
            replicated_mttdl(MODEL.mv, MODEL.mrv, 2, 0.1),
            replicated_mttdl(MODEL.mv, MODEL.mrv, 4, 0.1),
        ]

    def test_analytic_loss_probability_sweep(self):
        result = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(
                    parameter="MDL",
                    values=(5.0, 50.0),
                    metric="loss_probability",
                ),
                mission_years=1.0,
                policy=EstimatorPolicy(engine="analytic"),
            )
        )
        series = result.details["metrics"]["loss_probability"]
        expected = [
            probability_of_loss(
                mirrored_mttdl(MODEL.with_detection_time(mdl)),
                years_to_hours(1.0),
            )
            for mdl in (5.0, 50.0)
        ]
        assert series == expected

    def test_analytic_audit_sweep_rejects_the_loss_metric(self):
        with pytest.raises(ValueError, match="MTTDL metric"):
            run(
                Scenario(
                    question="sweep",
                    system=SystemSpec(model=MODEL),
                    sweep=SweepSpec(
                        parameter="audits_per_year",
                        values=(0.0, 12.0),
                        metric="loss_probability",
                    ),
                    policy=EstimatorPolicy(engine="analytic"),
                )
            )

    def test_simulated_sweep_honours_max_trials(self):
        # A converged-by-budget sweep may never exceed max_trials per
        # point, even with an unreachable relative-error target.
        result = run(
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(parameter="MDL", values=(5.0,)),
                max_time_hours=1e6,
                policy=EstimatorPolicy(
                    engine="batch",
                    trials=50,
                    max_trials=100,
                    target_relative_error=1e-9,
                ),
            )
        )
        assert result.trials == 100

    def test_frontier(self, tmp_path):
        result = run(
            Scenario(
                question="frontier",
                space=DesignSpace(
                    media=("drive:cheetah",),
                    replica_counts=(2,),
                    audit_rates=(12.0,),
                ),
                budget=1e9,
                policy=EstimatorPolicy(engine="auto", trials=200),
            ),
            cache_dir=tmp_path,
        )
        assert result.details["frontier"]
        assert result.details["recommended"] is not None
        assert result.value == pytest.approx(
            result.details["recommended"]["simulated"]["mean"]
        )

    def test_fleet_survival(self):
        result = run(
            Scenario(
                question="fleet_survival",
                timeline=stationary_timeline(MODEL, 2.0),
                members=200,
                policy=EstimatorPolicy(engine="fleet", seed=1),
            )
        )
        assert result.method == "fleet"
        assert result.trials == 200
        assert 0.0 <= result.value <= 1.0


class TestDeterministicEngines:
    def test_analytic_matches_the_paper_closed_form(self):
        result = run(_point("mttdl", engine="analytic"))
        assert result.value == mirrored_mttdl(MODEL)
        assert result.details["convention"] == "paper"
        assert result.std_error == 0.0

    def test_analytic_loss_probability(self):
        result = run(
            _point("loss_probability", engine="analytic", mission_years=1.0)
        )
        expected = probability_of_loss(
            mirrored_mttdl(MODEL), years_to_hours(1.0)
        )
        assert result.value == expected

    def test_markov_matches_the_ctmc(self):
        result = run(_point("mttdl", engine="markov"))
        assert result.value == mirrored_mttdl_markov(
            MODEL, double_first_fault_rate=True
        )
        methods = result.details["methods_mttdl_years"]
        assert set(methods) >= {"analytic_capped", "markov"}

    def test_audit_override_folds_into_mdl(self):
        # audits_per_year=12 means MDL = half a month, not the model's.
        override = run(
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL, audits_per_year=12.0),
                policy=EstimatorPolicy(engine="analytic"),
            )
        )
        expected = mirrored_mttdl(
            MODEL.with_detection_time(8760.0 / 12.0 / 2.0)
        )
        assert override.value == expected


class TestAutoCrossCheck:
    def test_auto_attaches_both_conventions_and_the_ctmc(self):
        result = run(_point("mttdl", trials=300, max_time_hours=1e6))
        check = result.details["cross_check"]
        assert check["analytic_paper_mttdl_hours"] == mirrored_mttdl(MODEL)
        assert check["analytic_simulator_mttdl_hours"] == pytest.approx(
            mirrored_mttdl(MODEL) / 2.0
        )
        assert check["markov_mttdl_hours"] == mirrored_mttdl_markov(
            MODEL, double_first_fault_rate=True
        )
        # The simulated estimate lands near the simulator-consistent
        # references, not the paper convention.
        assert result.value == pytest.approx(
            check["markov_mttdl_hours"], rel=0.25
        )

    def test_cross_check_respects_the_policy_switch(self):
        result = run(
            _point("mttdl", trials=300, max_time_hours=1e6).with_policy(
                cross_check=False
            )
        )
        assert "cross_check" not in result.details

    def test_forced_engines_do_not_cross_check(self):
        result = run(_point("mttdl", engine="batch", trials=300,
                            max_time_hours=1e6))
        assert "cross_check" not in result.details


class TestProvenance:
    def test_result_carries_seed_hash_and_wall_time(self):
        scenario = _point("loss_probability", trials=200, seed=11,
                          mission_years=1.0)
        result = run(scenario)
        assert result.seed == 11
        assert result.scenario_hash == scenario.content_hash()
        assert result.wall_time_seconds > 0

    def test_same_scenario_same_numbers(self):
        scenario = _point("loss_probability", trials=200, seed=5,
                          mission_years=1.0)
        first, second = run(scenario), run(scenario)
        assert first.value == second.value
        assert first.std_error == second.std_error

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run(_point("mttdl"), jobs=0)


class TestWarnings:
    def test_censoring_warning_is_recorded_and_reemitted(self):
        scenario = _point(
            "mttdl", engine="batch", trials=100, max_time_hours=150.0
        )
        with pytest.warns(HighCensoringWarning):
            result = run(scenario)
        assert result.warnings
        assert "censored" in result.warnings[0]


class TestFacadeMatchesTheSubsystems:
    """The frontier and fleet engines reproduce direct subsystem calls
    bit-for-bit at a fixed seed."""

    SPACE = DesignSpace(
        media=("drive:barracuda", "drive:cheetah"),
        replica_counts=(2, 3),
        audit_rates=(12.0, 52.0),
    )

    def test_frontier_matches_optimize_plus_recommend(self):
        scenario = Scenario(
            question="frontier",
            space=self.SPACE,
            budget=50000.0,
            policy=EstimatorPolicy(engine="auto", trials=300, seed=2),
        )
        facade = run(scenario)
        direct = optimize(
            self.SPACE,
            EvaluationSettings(trials=300, seed=2, method="auto"),
        )
        recommended = recommend(direct.frontier, budget=50000.0)
        assert facade.details["summary"] == direct.summary()
        assert facade.details["frontier"] == [
            e.as_dict() for e in direct.frontier
        ]
        assert facade.details["recommended"] == recommended.as_dict()

    def test_fleet_matches_simulate_fleet(self):
        timeline = stationary_timeline(MODEL, 2.0)
        scenario = Scenario(
            question="fleet_survival",
            timeline=timeline,
            members=300,
            chunk_size=100,
            policy=EstimatorPolicy(engine="fleet", seed=3),
        )
        facade = run(scenario)
        direct = simulate_fleet(timeline, members=300, seed=3, chunk_size=100)
        assert facade.details == direct.as_dict()
        assert facade.value == direct.loss_estimate().mean


class TestVarianceReducedRuns:
    def _scenario(self, reduction):
        return Scenario(
            question="loss_probability",
            system=SystemSpec(model=MODEL),
            mission_years=1.0,
            policy=EstimatorPolicy(
                engine="batch", trials=2000, seed=3, variance_reduction=reduction
            ),
        )

    def test_cv_answers_through_the_facade(self):
        result = run(self._scenario("cv"))
        assert result.units == "probability"
        assert result.method == "cv"
        assert 0.0 < result.value < 1.0
        assert result.ci_low <= result.value <= result.ci_high

    def test_cv_mttdl_through_the_facade(self):
        result = run(
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL),
                max_time_hours=1e5,
                policy=EstimatorPolicy(
                    engine="batch",
                    trials=2000,
                    seed=3,
                    variance_reduction="cv",
                ),
            )
        )
        assert result.units == "hours"
        assert result.method == "cv"
        assert result.value > 0


class TestProfile:
    def test_absent_by_default(self):
        result = run(_point("mttdl", trials=200, max_time_hours=1e6))
        assert "profile" not in result.details

    def test_phase_breakdown_present_when_requested(self):
        scenario = _point("mttdl", trials=200, max_time_hours=1e6)
        plain = run(scenario)
        profiled = run(scenario, profile=True)
        profile = profiled.details["profile"]
        assert set(profile) == {
            "setup_seconds",
            "kernel_seconds",
            "merge_seconds",
        }
        assert all(value >= 0.0 for value in profile.values())
        # Profiling observes the run, it must not change the answer.
        assert profiled.value == plain.value
        assert profiled.ci_low == plain.ci_low

    def test_fleet_profile(self):
        scenario = Scenario(
            question="fleet_survival",
            timeline=stationary_timeline(MODEL, 2.0),
            members=400,
            chunk_size=200,
            policy=EstimatorPolicy(engine="fleet", seed=4),
        )
        result = run(scenario, profile=True)
        assert set(result.details["profile"]) == {
            "setup_seconds",
            "kernel_seconds",
            "merge_seconds",
        }
