"""Scenario / StudyResult serialisation, validation, and hashing."""

import json
import math

import pytest

from repro.core.parameters import FaultModel
from repro.fleet import stationary_timeline
from repro.optimize import DesignSpace
from repro.study import (
    ENGINES,
    QUESTIONS,
    SCHEMA_VERSION,
    EstimatorPolicy,
    Scenario,
    StudyResult,
    SweepSpec,
    SystemSpec,
    engine_backend_method,
    engine_for,
)

MODEL = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)


def _scenarios_of_every_kind():
    """One representative scenario per question kind."""
    system = SystemSpec(model=MODEL, replicas=3, audits_per_year=12.0)
    return [
        Scenario(question="mttdl", system=system, max_time_hours=1e6),
        Scenario(
            question="loss_probability",
            system=system,
            mission_years=2.0,
            policy=EstimatorPolicy(engine="is", trials=200, seed=9, bias=8.0),
        ),
        Scenario(
            question="sweep",
            system=SystemSpec(model=MODEL),
            sweep=SweepSpec(parameter="MDL", values=(5.0, 50.0, 500.0)),
            policy=EstimatorPolicy(engine="batch", trials=100),
        ),
        Scenario(
            question="frontier",
            space=DesignSpace(media=("drive:cheetah",)),
            budget=25000.0,
            slack=2.0,
            policy=EstimatorPolicy(engine="auto", trials=400, seed=1),
        ),
        Scenario(
            question="fleet_survival",
            timeline=stationary_timeline(MODEL, 2.0),
            members=500,
            chunk_size=250,
            policy=EstimatorPolicy(engine="fleet", seed=4),
        ),
    ]


class TestScenarioRoundtrip:
    @pytest.mark.parametrize(
        "scenario", _scenarios_of_every_kind(), ids=lambda s: s.question
    )
    def test_json_roundtrip_is_lossless(self, scenario):
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt == scenario
        assert rebuilt.content_hash() == scenario.content_hash()

    def test_roundtrip_through_file(self, tmp_path):
        scenario = _scenarios_of_every_kind()[0]
        path = tmp_path / "scenario.json"
        scenario.to_json(path)
        assert Scenario.from_json(path) == scenario

    def test_unknown_fields_are_tolerated_everywhere(self):
        # A payload written by a future version (extra keys at the top
        # level, inside the system spec, and inside the policy) must
        # still load — forward compatibility of the serialised form.
        scenario = _scenarios_of_every_kind()[1]
        payload = json.loads(scenario.to_json())
        payload["experimental_knob"] = {"nested": True}
        payload["system"]["gpu_accelerated"] = "yes please"
        payload["policy"]["quantum_trials"] = 3
        rebuilt = Scenario.from_dict(payload)
        assert rebuilt == scenario

    def test_content_hash_is_sensitive_to_every_axis(self):
        base = _scenarios_of_every_kind()[0]
        assert base.content_hash() != base.with_policy(seed=1).content_hash()
        assert (
            base.content_hash()
            != Scenario.from_dict(
                {**base.as_dict(), "mission_years": 10.0}
            ).content_hash()
        )

    def test_content_hash_has_cache_key_width(self):
        # Same recipe (and width) as the optimize/fleet caches.
        assert len(_scenarios_of_every_kind()[0].content_hash()) == 32


class TestScenarioValidation:
    def test_unknown_question_rejected(self):
        with pytest.raises(ValueError, match="unknown question"):
            Scenario(question="destiny", system=SystemSpec(model=MODEL))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EstimatorPolicy(engine="quantum")

    def test_questions_and_engines_are_the_documented_sets(self):
        assert set(QUESTIONS) == {
            "mttdl", "loss_probability", "frontier", "fleet_survival",
            "sweep",
        }
        assert set(ENGINES) == {
            "auto", "analytic", "markov", "event", "batch", "is",
            "splitting", "fleet",
        }

    def test_point_estimate_requires_a_system(self):
        with pytest.raises(ValueError, match="SystemSpec"):
            Scenario(question="mttdl")

    def test_splitting_is_loss_only(self):
        with pytest.raises(ValueError, match="splitting"):
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL),
                policy=EstimatorPolicy(engine="splitting"),
            )

    def test_markov_engine_is_mirrored_only(self):
        with pytest.raises(ValueError, match="mirrored"):
            Scenario(
                question="mttdl",
                system=SystemSpec(model=MODEL, replicas=3),
                policy=EstimatorPolicy(engine="markov"),
            )

    def test_replicas_sweep_is_analytic_only(self):
        with pytest.raises(ValueError, match="analytic"):
            Scenario(
                question="sweep",
                system=SystemSpec(model=MODEL),
                sweep=SweepSpec(parameter="replicas", values=(1.0, 2.0)),
                policy=EstimatorPolicy(engine="batch"),
            )

    def test_fleet_question_requires_a_timeline(self):
        with pytest.raises(ValueError, match="FleetTimeline"):
            Scenario(question="fleet_survival")

    def test_fleet_engine_only_answers_fleet_questions(self):
        with pytest.raises(ValueError, match="fleet"):
            Scenario(
                question="loss_probability",
                system=SystemSpec(model=MODEL),
                policy=EstimatorPolicy(engine="fleet"),
            )

    def test_policy_seed_and_trials_validated(self):
        with pytest.raises(ValueError, match="seed"):
            EstimatorPolicy(seed=-1)
        with pytest.raises(ValueError, match="trials"):
            EstimatorPolicy(trials=0)
        with pytest.raises(ValueError, match="max_trials"):
            EstimatorPolicy(trials=100, max_trials=50)


class TestEngineMapping:
    def test_engine_for_covers_the_legacy_grid(self):
        assert engine_for("batch", "standard") == "batch"
        assert engine_for("event", "standard") == "event"
        assert engine_for("batch", "auto") == "auto"
        assert engine_for("batch", "is") == "is"
        assert engine_for("event", "is") == "is"
        assert engine_for("event", "splitting") == "splitting"

    def test_event_auto_and_garbage_have_no_engine(self):
        assert engine_for("event", "auto") is None
        assert engine_for("gpu", "standard") is None
        assert engine_for("batch", "psychic") is None

    def test_engine_backend_method_inverts_engine_for(self):
        for engine in ("auto", "batch", "event", "is", "splitting"):
            backend, method = engine_backend_method(engine)
            assert engine_for(backend, method) == engine

    def test_deterministic_engines_have_no_backend(self):
        for engine in ("analytic", "markov", "fleet"):
            with pytest.raises(ValueError, match="no Monte-Carlo"):
                engine_backend_method(engine)


class TestStudyResultSerialisation:
    RESULT = StudyResult(
        question="loss_probability",
        engine="auto",
        method="is",
        value=1.5e-4,
        std_error=2e-5,
        ci_low=1.1e-4,
        ci_high=1.9e-4,
        units="probability",
        trials=4000,
        losses=1200,
        censored=2800,
        effective_sample_size=812.5,
        seed=9,
        scenario_hash="ab" * 16,
        wall_time_seconds=0.25,
        warnings=("something censored",),
        details={"cross_check": {"markov_mttdl_hours": 1e6}},
    )

    def test_json_roundtrip_is_lossless(self):
        rebuilt = StudyResult.from_json(self.RESULT.to_json())
        assert rebuilt == self.RESULT

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "result.json"
        self.RESULT.to_json(path)
        assert StudyResult.from_json(path) == self.RESULT

    def test_schema_version_is_embedded(self):
        payload = json.loads(self.RESULT.to_json())
        assert payload["schema"] == SCHEMA_VERSION

    def test_unknown_fields_are_tolerated(self):
        payload = json.loads(self.RESULT.to_json())
        payload["provenance_chain"] = ["future", "fields"]
        payload["details"]["new_diagnostic"] = 1
        rebuilt = StudyResult.from_dict(payload)
        assert rebuilt.value == self.RESULT.value
        assert rebuilt.details["new_diagnostic"] == 1

    def test_infinite_values_serialise_as_null(self):
        lossless = StudyResult(
            question="mttdl",
            engine="batch",
            method="standard",
            value=math.inf,
            std_error=math.inf,
            units="hours",
            trials=100,
            censored=100,
        )
        payload = json.loads(lossless.to_json())
        assert payload["value"] is None
        assert payload["std_error"] is None
        # ...and the bridge back to the Monte-Carlo layer restores inf.
        assert StudyResult.from_dict(payload).estimate().mean == math.inf

    def test_cache_key_is_the_scenario_hash(self):
        assert self.RESULT.cache_key == self.RESULT.scenario_hash

    def test_estimate_bridge_preserves_clamps(self):
        estimate = self.RESULT.estimate()
        assert estimate.clamp_hi == 1.0
        assert estimate.method == "is"
        assert estimate.effective_sample_size == 812.5
        hours = StudyResult(
            question="mttdl", engine="batch", method="standard",
            value=1e6, std_error=1e4, units="hours", trials=10,
        )
        assert hours.estimate().clamp_hi is None


class TestVarianceReductionAxis:
    def test_default_policy_payload_has_no_key(self):
        # The key is conditional so pre-existing scenarios keep their
        # content hashes byte for byte.
        payload = EstimatorPolicy().as_dict()
        assert "variance_reduction" not in payload

    def test_round_trips(self):
        policy = EstimatorPolicy(engine="batch", trials=500, variance_reduction="cv")
        payload = policy.as_dict()
        assert payload["variance_reduction"] == "cv"
        assert EstimatorPolicy.from_dict(payload) == policy

    def test_hash_stability_of_existing_scenarios(self):
        # A scenario that never mentions variance_reduction must hash
        # exactly as one built before the axis existed.
        for scenario in _scenarios_of_every_kind():
            rebuilt = Scenario.from_dict(
                json.loads(json.dumps(scenario.as_dict()))
            )
            assert rebuilt.content_hash() == scenario.content_hash()
            assert "variance_reduction" not in json.dumps(scenario.as_dict())

    def test_hash_is_sensitive_to_the_axis(self):
        base = Scenario(
            question="loss_probability",
            system=SystemSpec(model=MODEL),
            mission_years=2.0,
            policy=EstimatorPolicy(engine="batch", trials=200),
        )
        reduced = Scenario(
            question="loss_probability",
            system=SystemSpec(model=MODEL),
            mission_years=2.0,
            policy=EstimatorPolicy(
                engine="batch", trials=200, variance_reduction="cv"
            ),
        )
        assert base.content_hash() != reduced.content_hash()

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError, match="variance_reduction"):
            EstimatorPolicy(engine="batch", variance_reduction="sobol")

    def test_requires_batch_engine(self):
        with pytest.raises(ValueError, match="batch"):
            EstimatorPolicy(engine="is", variance_reduction="qmc")
        with pytest.raises(ValueError, match="batch"):
            EstimatorPolicy(engine="event", variance_reduction="cv")
