"""Tests for sweeps, model comparison, tables, plotting, and reports."""

import pytest

from repro.analysis.compare import (
    approximation_error,
    compare_models,
    compare_scenarios,
    paper_agreement,
)
from repro.analysis.plotting import (
    ascii_bar_chart,
    ascii_histogram,
    ascii_line_chart,
    series_to_dict,
)
from repro.analysis.report import ExperimentRecord, ExperimentReport, scenario_experiment_report
from repro.analysis.sweep import (
    grid_sweep,
    simulated_audit_sweep,
    simulated_parameter_sweep,
    sweep_audit_rate,
    sweep_correlation,
    sweep_parameter,
    sweep_replication,
)
from repro.analysis.tables import format_dict, format_scenario_table, format_sweep, format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.scenarios import cheetah_scrubbed_scenario, paper_scenarios


def model(**overrides):
    base = dict(
        mean_time_to_visible=1.4e6,
        mean_time_to_latent=2.8e5,
        mean_repair_visible=1.0 / 3.0,
        mean_repair_latent=1.0 / 3.0,
        mean_detect_latent=1460.0,
        correlation_factor=1.0,
    )
    base.update(overrides)
    return FaultModel(**base)


class TestSweeps:
    def test_sweep_parameter_shapes(self):
        result = sweep_parameter(model(), "MDL", [100.0, 1000.0, 10000.0])
        assert result.values == [100.0, 1000.0, 10000.0]
        assert len(result.metric("mttdl_hours")) == 3

    def test_sweep_parameter_monotone_in_mdl(self):
        result = sweep_parameter(model(), "MDL", [100.0, 1000.0, 10000.0])
        series = result.metric("mttdl_hours")
        assert series == sorted(series, reverse=True)

    def test_sweep_parameter_unknown_name(self):
        with pytest.raises(ValueError):
            sweep_parameter(model(), "bogus", [1.0])

    def test_sweep_unknown_metric_name(self):
        result = sweep_parameter(model(), "MDL", [100.0])
        with pytest.raises(KeyError):
            result.metric("nope")

    def test_sweep_rows_and_columns(self):
        result = sweep_audit_rate(model(), [0.0, 3.0, 12.0])
        rows = result.as_rows()
        assert len(rows) == 3
        assert len(rows[0]) == len(result.column_names())

    def test_audit_rate_sweep_monotone(self):
        result = sweep_audit_rate(model(), [0.0, 1.0, 3.0, 12.0, 52.0])
        series = result.metric("mttdl_years")
        assert series == sorted(series)

    def test_audit_rate_sweep_rejects_negative(self):
        with pytest.raises(ValueError):
            sweep_audit_rate(model(), [-1.0])

    def test_replication_sweep_keys_and_monotonicity(self):
        results = sweep_replication(1.4e6, 1.0 / 3.0, 5, correlation_factors=[1.0, 0.01])
        assert set(results) == {1.0, 0.01}
        independent = results[1.0].metric("mttdl_hours")
        correlated = results[0.01].metric("mttdl_hours")
        assert independent[-1] > correlated[-1]

    def test_correlation_sweep(self):
        result = sweep_correlation(model(), [0.001, 0.01, 0.1, 1.0])
        series = result.metric("mttdl_hours")
        assert series == sorted(series)

    def test_grid_sweep_structure(self):
        results = grid_sweep(model(), "alpha", [0.1, 1.0], "MDL", [100.0, 1000.0])
        assert set(results) == {0.1, 1.0}
        assert len(results[0.1].values) == 2


class TestSimulatedSweeps:
    @pytest.fixture(autouse=True)
    def _bind_fast_model(self, fast_model_factory):
        # The canonical compressed-time model lives in tests/conftest.py.
        self.fast_model = fast_model_factory

    def test_parameter_sweep_shapes_and_analytic_series(self):
        result = simulated_parameter_sweep(
            self.fast_model(),
            "alpha",
            [0.2, 1.0],
            trials=800,
            seed=1,
            max_time=1e6,
        )
        assert result.values == [0.2, 1.0]
        assert len(result.metric("sim_mttdl")) == 2
        assert len(result.metric("sim_std_error")) == 2
        assert len(result.metric("mttdl_hours")) == 2
        # Stronger correlation must hurt the simulated MTTDL too.
        assert result.metric("sim_mttdl")[0] < result.metric("sim_mttdl")[1]

    def test_parameter_sweep_loss_metric(self):
        result = simulated_parameter_sweep(
            self.fast_model(),
            "MDL",
            [5.0, 100.0],
            trials=800,
            seed=2,
            metric="loss_probability",
            mission_years=0.5,
        )
        series = result.metric("sim_loss_probability")
        assert all(0.0 <= value <= 1.0 for value in series)
        # Slower detection means a riskier mission.
        assert series[0] <= series[1]
        assert "mttdl_hours" not in result.metrics

    def test_parameter_sweep_validation(self):
        with pytest.raises(ValueError):
            simulated_parameter_sweep(self.fast_model(), "bogus", [1.0], trials=10)
        with pytest.raises(ValueError):
            simulated_parameter_sweep(
                self.fast_model(), "MDL", [5.0], trials=10, metric="latency"
            )

    def test_parameter_sweep_analytic_respects_audit_override(self):
        # With auditing disabled, the attached analytic series must
        # describe the no-scrub regime (MDL = ML), not the base model's
        # scrubbed MDL — otherwise the sim-vs-analytic comparison spans
        # two different physical systems.
        result = simulated_parameter_sweep(
            self.fast_model(),
            "MV",
            [500.0],
            trials=600,
            seed=4,
            max_time=1e6,
            audits_per_year=0.0,
        )
        base = self.fast_model()
        no_scrub = mirrored_mttdl(
            base.with_detection_time(base.mean_time_to_latent)
        )
        scrubbed = mirrored_mttdl(base)
        analytic = result.metric("mttdl_hours")[0]
        assert analytic == pytest.approx(no_scrub)
        assert analytic < scrubbed / 3.0
        # And the simulated value sits within the simulator's documented
        # factor of the matching closed form.
        assert no_scrub / 3.0 < result.metric("sim_mttdl")[0] < no_scrub * 3.0

    def test_audit_sweep_tracks_analytic_shape(self):
        result = simulated_audit_sweep(
            self.fast_model(),
            [0.0, 400.0, 1800.0],
            trials=800,
            seed=3,
            max_time=1e6,
        )
        simulated = result.metric("sim_mttdl_hours")
        assert len(simulated) == 3
        assert len(result.metric("mttdl_hours")) == 3
        # More frequent audits help, in simulation as in the closed form.
        assert simulated[0] < simulated[-1]


class TestComparison:
    def test_all_methods_positive_and_same_order(self):
        comparison = compare_models(model())
        values = comparison.as_dict()
        assert all(value > 0 for value in values.values())
        assert comparison.max_discrepancy_factor() < 5.0

    def test_monte_carlo_optional(self):
        comparison = compare_models(model())
        assert comparison.monte_carlo is None

    def test_in_years_scales(self):
        comparison = compare_models(model())
        assert comparison.in_years()["markov"] == pytest.approx(
            comparison.markov / 8760.0
        )

    def test_compare_scenarios_covers_all(self):
        comparisons = compare_scenarios(paper_scenarios())
        assert set(comparisons) == set(paper_scenarios())

    def test_approximation_error_positive_for_scrubbed_scenario(self):
        # Eq. 10 is optimistic relative to the full Eq. 7 here.
        assert approximation_error(model()) > 0

    def test_paper_agreement_within_tolerance(self):
        result = paper_agreement(cheetah_scrubbed_scenario())
        assert result["within_tolerance"]

    def test_paper_agreement_requires_reference_value(self):
        scenario = cheetah_scrubbed_scenario()
        object.__setattr__(scenario, "paper_mttdl_years", None)
        with pytest.raises(ValueError):
            paper_agreement(scenario)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("a")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_handles_inf_and_large_numbers(self):
        text = format_table(["x"], [[float("inf")], [1e12], [1e-9]])
        assert "inf" in text
        assert "e" in text

    def test_format_dict(self):
        text = format_dict({"alpha": 0.1, "beta": 2}, title="params")
        assert "params" in text
        assert "alpha" in text

    def test_format_scenario_table_lists_all_scenarios(self):
        text = format_scenario_table(paper_scenarios())
        for name in paper_scenarios():
            assert name in text

    def test_format_sweep(self):
        sweep = sweep_audit_rate(model(), [1.0, 3.0])
        text = format_sweep(sweep, title="audits")
        assert "audits_per_year" in text
        assert "audits" in text


class TestPlotting:
    def test_line_chart_contains_points(self):
        chart = ascii_line_chart([1, 2, 3], [10, 20, 30], title="t")
        assert "*" in chart
        assert "t" in chart

    def test_line_chart_log_scale(self):
        chart = ascii_line_chart([1, 2, 3], [1.0, 100.0, 10000.0], log_y=True)
        assert "*" in chart

    def test_line_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], [1.0])
        with pytest.raises(ValueError):
            ascii_line_chart([], [])
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], [0.0, 1.0], log_y=True)
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], [1.0, 2.0], width=5)

    def test_bar_chart(self):
        chart = ascii_bar_chart(["a", "bb"], [1.0, 4.0])
        assert "a" in chart and "bb" in chart
        assert "#" in chart

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])

    def test_histogram(self):
        chart = ascii_histogram([1.0, 1.5, 2.0, 5.0, 5.1], bins=4)
        assert "#" in chart

    def test_histogram_single_value(self):
        chart = ascii_histogram([3.0, 3.0, 3.0])
        assert "3" in chart

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)

    def test_series_to_dict(self):
        assert series_to_dict([1, 2], [3, 4]) == {1.0: 3.0, 2.0: 4.0}
        with pytest.raises(ValueError):
            series_to_dict([1], [1, 2])


class TestReports:
    def test_experiment_record_relative_error(self):
        record = ExperimentRecord("E1", "x", 100.0, 110.0, "years", True)
        assert record.relative_error == pytest.approx(0.1)

    def test_experiment_record_no_paper_value(self):
        record = ExperimentRecord("E9", "shape only", None, 5.0, "count", True)
        assert record.relative_error is None

    def test_report_grouping_and_rendering(self):
        report = ExperimentReport()
        report.add(ExperimentRecord("E1", "a", 1.0, 1.0, "x", True))
        report.add(ExperimentRecord("E1", "b", 2.0, 2.2, "x", True))
        report.add(ExperimentRecord("E2", "c", None, 3.0, "x", False))
        grouped = report.by_experiment()
        assert len(grouped["E1"]) == 2
        assert not report.all_shapes_hold()
        rendered = report.render()
        assert "experiment" in rendered and "E2" in rendered

    def test_scenario_report_reproduces_paper(self):
        report = scenario_experiment_report()
        assert report.all_shapes_hold()
        errors = [
            record.relative_error
            for record in report.records
            if record.relative_error is not None
        ]
        assert errors and max(errors) < 0.05
