"""Golden-file tests locking each subcommand's JSON payload shape.

Every ``--json`` payload flows through the one shared emitter
(:func:`repro.study.emit_json`) and carries a schema version; these
tests lock the *shape* (the set of key paths and their JSON types) of
each subcommand's envelope against golden files in ``tests/golden/``,
so a field rename/removal — a breaking change for consumers — cannot
land without bumping the schema and regenerating the goldens
deliberately:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cli_golden.py

Values are deliberately not locked (estimates move with the estimator),
only structure.
"""

import io
import json
import os
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "golden"

# A compressed-time model keeps the stochastic commands fast and free of
# surprises; every command pins its seed so shapes are reproducible.
FAST_MODEL = ["--mv", "500", "--ml", "100", "--mrv", "1", "--mrl", "1",
              "--mdl", "5"]

COMMANDS = {
    "mttdl": ["mttdl", "--json"],
    "sweep-audit": ["sweep-audit", "--rates", "0", "3", "12", "--json"],
    "sweep-audit-simulated": (
        ["sweep-audit"] + FAST_MODEL
        + ["--rates", "0", "12", "--trials", "100", "--seed", "0", "--json"]
    ),
    "replication": ["replication", "--max-replicas", "3", "--json"],
    "validate": ["validate", "--json"],
    "simulate-mttdl": (
        ["simulate"] + FAST_MODEL
        + ["--trials", "200", "--max-time", "1e6", "--seed", "0", "--json"]
    ),
    "simulate-loss-is": (
        ["simulate"] + FAST_MODEL
        + ["--metric", "loss", "--mission-years", "0.01", "--method", "is",
           "--trials", "100", "--seed", "0", "--json"]
    ),
    "optimize": [
        "optimize", "--budget", "1000000000", "--media", "drive:cheetah",
        "--replicas", "2", "--audit-rates", "12", "--trials", "100",
        "--seed", "0", "--json",
    ],
    "fleet": [
        "fleet", "--members", "100", "--years", "5", "--refresh-years", "2",
        "--seed", "0", "--json",
    ],
    # Scheme-bearing variants: the envelope's scenario must carry the
    # resolved (n, k) scheme.  The scheme-free goldens above must never
    # change — replication payloads serialise exactly as before.
    "simulate-loss-erasure": (
        ["simulate"] + FAST_MODEL
        + ["--metric", "loss", "--mission-years", "0.01", "--scheme", "3,2",
           "--trials", "100", "--seed", "0", "--json"]
    ),
    "optimize-erasure": [
        "optimize", "--budget", "1000000000", "--media", "drive:cheetah",
        "--replicas", "2", "--scheme", "4,2", "--audit-rates", "12",
        "--trials", "100", "--seed", "0", "--json",
    ],
    "fleet-erasure": [
        "fleet", "--members", "100", "--years", "5", "--refresh-years", "2",
        "--scheme", "3,2", "--seed", "0", "--json",
    ],
}


def _json_type(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "array"
    return "object"


def _shape(value, prefix="", out=None):
    """Flatten a payload into sorted ``path: type`` strings.

    Arrays are described by their first element (homogeneous by
    construction), so growing a series never changes the shape.
    """
    if out is None:
        out = set()
    out.add(f"{prefix or '.'}: {_json_type(value)}")
    if isinstance(value, dict):
        for key, child in value.items():
            _shape(child, f"{prefix}.{key}", out)
    elif isinstance(value, list) and value:
        _shape(value[0], f"{prefix}[]", out)
    return sorted(out)


def _run_cli(argv) -> dict:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(argv) == 0
    return json.loads(buffer.getvalue())


@pytest.mark.parametrize("name", sorted(COMMANDS))
def test_json_shape_matches_golden(name):
    payload = _run_cli(COMMANDS[name])
    shape = _shape(payload)
    golden_path = GOLDEN_DIR / f"{name}.shape.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(
            json.dumps(shape, indent=2) + "\n", encoding="utf-8"
        )
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"no golden shape for {name!r}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    assert shape == golden, (
        f"JSON shape of {name!r} drifted from {golden_path.name}; if the "
        "change is intentional, bump the schema version and regenerate "
        "with REPRO_REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("name", sorted(COMMANDS))
def test_every_payload_carries_command_and_schema(name):
    payload = _run_cli(COMMANDS[name])
    from repro.study import CLI_JSON_SCHEMA_VERSION

    assert payload["schema"] == CLI_JSON_SCHEMA_VERSION
    assert payload["command"] == COMMANDS[name][0]
    assert payload["result"]["schema"] >= 1
    assert payload["scenario"]["question"] in (
        "mttdl", "loss_probability", "frontier", "fleet_survival", "sweep",
    )


def test_scheme_bearing_payloads_carry_resolved_scheme():
    simulate = _run_cli(COMMANDS["simulate-loss-erasure"])
    assert simulate["scenario"]["system"]["scheme"] == {"n": 3, "k": 2}
    assert simulate["scenario"]["system"]["replicas"] == 3
    optimize = _run_cli(COMMANDS["optimize-erasure"])
    assert optimize["scenario"]["space"]["erasure_schemes"] == ["4,2"]
    fleet = _run_cli(COMMANDS["fleet-erasure"])
    assert fleet["scenario"]["timeline"]["scheme"] == {"n": 3, "k": 2}


def test_default_scheme_payloads_unchanged():
    """Replication envelopes must not grow scheme keys."""
    simulate = _run_cli(COMMANDS["simulate-mttdl"])
    assert "scheme" not in simulate["scenario"]["system"]
    optimize = _run_cli(COMMANDS["optimize"])
    assert "erasure_schemes" not in optimize["scenario"]["space"]
    fleet = _run_cli(COMMANDS["fleet"])
    assert "scheme" not in fleet["scenario"]["timeline"]
