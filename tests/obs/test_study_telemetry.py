"""Telemetry through the study facade: identical answers, rich traces.

The load-bearing contract: instrumentation observes a run without
changing it.  Every engine must produce bit-identical results with
telemetry on and off at the same seed, and the ``data`` payloads of the
emitted trace must be deterministic given that seed.
"""

import json
import warnings

import pytest

from repro import obs
from repro.core.parameters import FaultModel
from repro.fleet import stationary_timeline
from repro.optimize import DesignSpace
from repro.study import EstimatorPolicy, Scenario, SystemSpec, run
import repro.study.engine as engine_module

MODEL = FaultModel(500.0, 100.0, 1.0, 1.0, 5.0, 1.0)


def _point_scenario(**policy_kwargs):
    policy_kwargs.setdefault("engine", "auto")
    policy_kwargs.setdefault("trials", 300)
    policy_kwargs.setdefault("seed", 11)
    return Scenario(
        question="mttdl",
        system=SystemSpec(model=MODEL),
        max_time_hours=1e6,
        policy=EstimatorPolicy(**policy_kwargs),
    )


def _fleet_scenario(seed=4):
    return Scenario(
        question="fleet_survival",
        timeline=stationary_timeline(MODEL, 2.0),
        members=400,
        chunk_size=200,
        policy=EstimatorPolicy(engine="fleet", seed=seed),
    )


def _frontier_scenario():
    return Scenario(
        question="frontier",
        space=DesignSpace(media=("drive:cheetah",)),
        budget=500000.0,
        policy=EstimatorPolicy(engine="auto", trials=300, seed=1),
    )


def _headline(result):
    return (
        result.value,
        result.std_error,
        result.ci_low,
        result.ci_high,
        result.trials,
        result.losses,
        result.censored,
        result.method,
    )


class TestObservationDoesNotPerturb:
    @pytest.mark.parametrize(
        "scenario_factory",
        [_point_scenario, _fleet_scenario, _frontier_scenario],
        ids=["point", "fleet", "frontier"],
    )
    def test_bit_identical_with_telemetry_on(self, scenario_factory):
        plain = run(scenario_factory())
        observed = run(scenario_factory(), telemetry=obs.Telemetry())
        assert _headline(observed) == _headline(plain)

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_fleet_workers_identical_across_transports(self, transport):
        plain = run(_fleet_scenario(), jobs=2, transport=transport)
        observed = run(
            _fleet_scenario(),
            jobs=2,
            transport=transport,
            telemetry=obs.Telemetry(),
        )
        assert _headline(observed) == _headline(plain)

    def test_session_always_restored(self):
        with pytest.raises(ValueError):
            run(_point_scenario(), jobs=0, telemetry=obs.Telemetry())
        assert obs.current() is obs.NULL


class TestDetailsSurface:
    def test_no_payloads_by_default(self):
        result = run(_point_scenario())
        assert "telemetry" not in result.details
        assert "profile" not in result.details
        assert result.telemetry is None

    def test_telemetry_payload_when_registry_passed(self):
        result = run(_point_scenario(), telemetry=obs.Telemetry())
        payload = result.telemetry
        assert payload is result.details["telemetry"]
        snapshot = obs.TelemetrySnapshot.from_dict(payload)
        assert snapshot.counters["events.study_start"] == 1
        assert snapshot.counters["events.study_end"] == 1
        assert {"setup", "kernel", "merge"} <= set(snapshot.spans)
        # The payload must serialise: it rides StudyResult.to_json.
        json.dumps(payload)

    def test_profile_alone_attaches_only_profile(self):
        result = run(_point_scenario(), profile=True)
        assert "telemetry" not in result.details
        assert set(result.details["profile"]) == {
            "setup_seconds",
            "kernel_seconds",
            "merge_seconds",
        }

    def test_frontier_profile(self):
        result = run(_frontier_scenario(), profile=True)
        assert set(result.details["profile"]) == {
            "setup_seconds",
            "kernel_seconds",
            "merge_seconds",
        }

    def test_fleet_spans_cover_the_kernel(self):
        tel = obs.Telemetry()
        result = run(_fleet_scenario(), telemetry=tel)
        snapshot = tel.snapshot()
        covered = sum(
            snapshot.spans[name][1]
            for name in ("setup", "kernel", "merge")
        )
        assert covered <= result.wall_time_seconds
        assert covered >= 0.5 * result.wall_time_seconds
        assert snapshot.counters["fleet.chunks"] == 2
        assert snapshot.spans["worker.fleet_chunk"][0] == 2


class TestTraceDeterminism:
    def _data_sequence(self, tmp_path, name, **run_kwargs):
        path = tmp_path / name
        with obs.TraceWriter(path) as writer:
            run(
                _point_scenario(engine="is", trials=200, bias=8.0),
                telemetry=obs.Telemetry(trace=writer),
                **run_kwargs,
            )
        return [
            (record["event"], record["data"])
            for record in obs.read_trace(path)
        ]

    def test_same_seed_same_data_payloads(self, tmp_path):
        first = self._data_sequence(tmp_path, "a.jsonl")
        second = self._data_sequence(tmp_path, "b.jsonl")
        assert first == second
        events = [event for event, _ in first]
        assert events[0] == "study_start"
        assert events[-1] == "study_end"
        assert "engine_resolved" in events
        assert "estimate" in events

    def test_trace_validates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.TraceWriter(path) as writer:
            run(_fleet_scenario(), telemetry=obs.Telemetry(trace=writer))
        assert obs.validate_trace(path) > 0


class TestWarningDedup:
    def test_duplicate_warnings_collapse(self, monkeypatch):
        from repro.simulation.estimators import HighCensoringWarning

        reference = run(_point_scenario())

        def noisy_stub(scenario):
            for _ in range(3):
                warnings.warn(
                    "9 of 10 trials were censored", HighCensoringWarning
                )
            warnings.warn("something else", UserWarning)
            warnings.warn("something else", UserWarning)
            return reference

        monkeypatch.setattr(
            engine_module, "_run_point_estimate", noisy_stub
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run(_point_scenario())
        assert result.warnings == ("9 of 10 trials were censored",)
        emitted = [(w.category, str(w.message)) for w in caught]
        assert emitted == [
            (HighCensoringWarning, "9 of 10 trials were censored"),
            (UserWarning, "something else"),
        ]


class TestCacheCounters:
    def _corrupt(self, cache_dir):
        entries = list(cache_dir.glob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{not json", encoding="utf-8")
        return len(entries)

    def test_fleet_cache_miss_hit_error(self, tmp_path):
        cache_dir = tmp_path / "cache"

        def counters(run_kwargs):
            tel = obs.Telemetry()
            result = run(
                _fleet_scenario(), cache_dir=cache_dir, telemetry=tel
            )
            return result, tel.snapshot().counters

        cold, cold_counters = counters({})
        assert cold_counters["cache.fleet.miss"] == 2
        assert cold_counters["cache.fleet.store"] == 2
        assert "cache.fleet.hit" not in cold_counters
        assert cold.details["summary"]["cache_errors"] == 0

        warm, warm_counters = counters({})
        assert warm_counters["cache.fleet.hit"] == 2
        assert "cache.fleet.miss" not in warm_counters
        assert warm.details["summary"]["cache_hits"] == 2
        assert _headline(warm) == _headline(cold)

        self._corrupt(cache_dir)
        broken, broken_counters = counters({})
        assert broken_counters["cache.fleet.error"] == 2
        assert broken.details["summary"]["cache_errors"] == 2
        # Corrupt entries degrade to re-simulation, not wrong answers.
        assert _headline(broken) == _headline(cold)

    def test_optimize_cache_errors(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run(_frontier_scenario(), cache_dir=cache_dir)
        assert cold.details["summary"]["cache_errors"] == 0
        corrupted = self._corrupt(cache_dir)

        tel = obs.Telemetry()
        broken = run(
            _frontier_scenario(), cache_dir=cache_dir, telemetry=tel
        )
        assert broken.details["summary"]["cache_errors"] == corrupted
        assert tel.snapshot().counters["cache.optimize.error"] == corrupted
        assert _headline(broken) == _headline(cold)
