"""The JSONL flight recorder: envelope schema, validation, summaries."""

import json
import math

import pytest

from repro import obs
from repro.obs.trace import iter_trace, sanitize


class TestWriter:
    def test_records_carry_the_envelope(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.TraceWriter(path) as writer:
            writer.emit("study_start", data={"seed": 7})
            writer.emit("study_end", timing={"total_seconds": 0.5})
        records = obs.read_trace(path)
        assert [r["event"] for r in records] == ["study_start", "study_end"]
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["schema"] == obs.TRACE_SCHEMA_VERSION for r in records)
        assert records[0]["data"] == {"seed": 7}
        assert records[0]["timing"] == {}
        assert records[1]["timing"] == {"total_seconds": 0.5}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with obs.TraceWriter(path) as writer:
            writer.emit("ping")
        assert obs.validate_trace(path) == 1

    def test_writes_to_an_open_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            writer = obs.TraceWriter(handle)
            writer.emit("ping")
            writer.close()
            handle.write("")  # the writer must not have closed our handle
        assert obs.validate_trace(path) == 1

    def test_non_finite_floats_sanitise_to_null(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.TraceWriter(path) as writer:
            writer.emit(
                "estimate",
                data={"mean": math.inf, "nested": {"x": [math.nan, 1.0]}},
            )
        record = obs.read_trace(path)[0]
        assert record["data"]["mean"] is None
        assert record["data"]["nested"]["x"] == [None, 1.0]

    def test_sanitize_leaves_finite_values_alone(self):
        payload = {"a": 1.5, "b": [2, "s"], "c": {"d": True}}
        assert sanitize(payload) == {"a": 1.5, "b": [2, "s"], "c": {"d": True}}


class TestValidation:
    def _write(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def _record(self, seq, event="ping", **overrides):
        record = {
            "schema": obs.TRACE_SCHEMA_VERSION,
            "seq": seq,
            "event": event,
            "data": {},
            "timing": {},
        }
        record.update(overrides)
        return record

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = self._record(0)
        del record["timing"]
        self._write(path, [record])
        with pytest.raises(obs.TraceSchemaError, match="missing keys"):
            obs.validate_trace(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [self._record(0, schema=99)])
        with pytest.raises(obs.TraceSchemaError, match="schema"):
            obs.validate_trace(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(obs.TraceSchemaError, match="line 1"):
            obs.validate_trace(path)

    def test_dropped_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [self._record(0), self._record(2)])
        with pytest.raises(obs.TraceSchemaError, match="breaks the run"):
            obs.validate_trace(path)

    def test_appended_writer_runs_validate(self, tmp_path):
        # Two CLI invocations appending to one file each restart seq at
        # 0; the validator accepts each run independently.
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            with obs.TraceWriter(path) as writer:
                writer.emit("study_start")
                writer.emit("study_end")
        assert obs.validate_trace(path) == 4

    def test_iter_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(self._record(0)) + "\n\n", encoding="utf-8"
        )
        assert len(list(iter_trace(path))) == 1


class TestSummary:
    def _trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.TraceWriter(path) as writer:
            writer.emit(
                "study_start",
                data={
                    "question": "mttdl",
                    "engine": "auto",
                    "seed": 3,
                    "content_hash": "abc123def456",
                },
            )
            for outcome in ("miss", "miss", "hit", "store"):
                writer.emit("cache", data={"outcome": outcome})
            for error in (0.8, 0.4, 0.1):
                writer.emit("pilot_round", data={"relative_error": error})
            writer.emit("escalation", data={"to": "is"})
            writer.emit(
                "study_end",
                timing={
                    "total_seconds": 2.0,
                    "spans": {"kernel": 1.5, "setup": 0.25, "merge": 0.25},
                },
            )
        return path

    def test_summary_digest(self, tmp_path):
        summary = obs.summarize_trace(self._trace(tmp_path))
        assert summary["records"] == 10
        assert summary["studies"] == [
            {
                "question": "mttdl",
                "engine": "auto",
                "seed": 3,
                "content_hash": "abc123def456",
            }
        ]
        assert summary["cache"] == {
            "hits": 1, "misses": 2, "stores": 1, "errors": 0,
        }
        assert summary["cache_hit_rate"] == pytest.approx(1 / 3)
        assert summary["spans"]["kernel"] == 1.5
        assert summary["total_seconds"] == 2.0
        assert summary["pilot_relative_errors"] == [0.8, 0.4, 0.1]
        assert summary["escalations"] == ["is"]

    def test_render_shows_the_headline_numbers(self, tmp_path):
        text = obs.render(obs.summarize_trace(self._trace(tmp_path)))
        assert "mttdl via auto" in text
        assert "kernel" in text and "75.0%" in text
        assert "hit rate 33.3%" in text
        assert "escalations: is" in text
        assert obs.sparkline([0.8, 0.4, 0.1]) in text


class TestSparkline:
    def test_maps_range_onto_levels(self):
        line = obs.sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_none_becomes_a_space(self):
        assert obs.sparkline([0.0, None, 1.0])[1] == " "

    def test_flat_series_is_low(self):
        assert obs.sparkline([2.0, 2.0]) == "▁▁"

    def test_empty(self):
        assert obs.sparkline([]) == ""
