"""The Prometheus text exposition in repro.obs.export."""

import math

from repro.obs import Telemetry
from repro.obs.export import metric_name, to_prometheus
from repro.obs.telemetry import TelemetrySnapshot


def test_metric_name_sanitization():
    assert metric_name("cache.fleet.hits") == "repro_cache_fleet_hits"
    assert metric_name("serve.batch.size") == "repro_serve_batch_size"
    assert metric_name("weird-name with spaces") == (
        "repro_weird_name_with_spaces"
    )
    assert metric_name("hits", prefix="") == "hits"
    # A leading digit is not a valid metric-name start.
    assert metric_name("9lives", prefix="")[0] == "_"


def test_empty_snapshot_renders_empty_exposition():
    assert to_prometheus(TelemetrySnapshot()) == ""


def test_counters_render_with_type_and_total_suffix():
    text = to_prometheus(
        TelemetrySnapshot(counters={"serve.requests": 7.0})
    )
    assert "# TYPE repro_serve_requests_total counter" in text
    assert "repro_serve_requests_total 7" in text
    assert text.endswith("\n")


def test_gauges_and_histograms_render():
    snapshot = TelemetrySnapshot(
        gauges={"queue.depth": 3.5},
        histograms={"serve.batch.size": (4.0, 10.0, 1.0, 4.0)},
    )
    text = to_prometheus(snapshot)
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 3.5" in text
    assert "# TYPE repro_serve_batch_size summary" in text
    assert "repro_serve_batch_size_count 4" in text
    assert "repro_serve_batch_size_sum 10" in text
    assert "repro_serve_batch_size_min 1" in text
    assert "repro_serve_batch_size_max 4" in text


def test_spans_render_as_seconds_total_counter():
    text = to_prometheus(
        TelemetrySnapshot(spans={"study.kernel": (3, 0.25)})
    )
    assert "# TYPE repro_study_kernel_span_seconds_total counter" in text
    assert "repro_study_kernel_span_seconds_total 0.25" in text
    assert "repro_study_kernel_span_count 3" in text


def test_non_finite_values_use_prometheus_spellings():
    text = to_prometheus(
        TelemetrySnapshot(
            gauges={
                "up": math.inf,
                "down": -math.inf,
                "unknown": math.nan,
            }
        )
    )
    assert "repro_up +Inf" in text
    assert "repro_down -Inf" in text
    assert "repro_unknown NaN" in text


def test_custom_prefix_applies_everywhere():
    snapshot = TelemetrySnapshot(
        counters={"a": 1.0}, gauges={"b": 2.0}, spans={"c": (1, 0.5)}
    )
    text = to_prometheus(snapshot, prefix="svc")
    assert "svc_a_total 1" in text
    assert "svc_b 2" in text
    assert "svc_c_span_count 1" in text
    assert "repro_" not in text


def test_live_registry_round_trips_through_exposition():
    tel = Telemetry()
    tel.count("cache.serve.hit", 3)
    tel.gauge("inflight", 2)
    tel.observe("serve.batch.size", 4)
    with tel.span("kernel"):
        pass
    text = to_prometheus(tel.snapshot())
    assert "repro_cache_serve_hit_total 3" in text
    assert "repro_inflight 2" in text
    assert "repro_serve_batch_size_count 1" in text
    assert "repro_kernel_span_count 1" in text
    # Every sample line is "<name> <value>"; every other line is # TYPE.
    for line in text.strip().splitlines():
        if line.startswith("#"):
            assert line.startswith("# TYPE ")
        else:
            name, value = line.split(" ")
            assert name[0].isalpha() or name[0] == "_"
            float(value)  # parseable, incl. +Inf/NaN spellings
