"""The telemetry registry: snapshot merge algebra, sessions, export.

The snapshot merge tests mirror ``tests/fleet/test_aggregate.py``'s
FleetTally properties: the parallel runners absorb worker snapshots in
whatever order the pool completes them, so merging must be associative
and commutative.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.obs.export import metric_name, to_prometheus

_NAMES = st.sampled_from(["a", "b.c", "cache.fleet.hit", "worker"])
_VALUES = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def snapshots(draw):
    counters = draw(
        st.dictionaries(_NAMES, _VALUES, max_size=3)
    )
    gauges = draw(st.dictionaries(_NAMES, _VALUES, max_size=3))
    histograms = {}
    for name in draw(st.lists(_NAMES, max_size=2, unique=True)):
        count = draw(st.integers(min_value=1, max_value=50))
        lo = draw(_VALUES)
        hi = lo + draw(_VALUES)
        histograms[name] = (float(count), lo * count, lo, hi)
    spans = {}
    for name in draw(st.lists(_NAMES, max_size=2, unique=True)):
        spans[name] = (
            draw(st.integers(min_value=1, max_value=50)),
            draw(_VALUES),
        )
    return obs.TelemetrySnapshot(
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        spans=spans,
    )


def _flat(snapshot):
    """One flat name → float dict, so pytest.approx can compare
    whole snapshots (float addition is only approximately associative)."""
    out = {}
    for name, value in snapshot.counters.items():
        out[f"counter:{name}"] = value
    for name, value in snapshot.gauges.items():
        out[f"gauge:{name}"] = value
    for name, summary in snapshot.histograms.items():
        for label, value in zip(("count", "total", "min", "max"), summary):
            out[f"hist:{name}:{label}"] = value
    for name, (count, seconds) in snapshot.spans.items():
        out[f"span:{name}:count"] = count
        out[f"span:{name}:seconds"] = seconds
    return out


class TestSnapshotMerge:
    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots())
    def test_merge_is_commutative(self, a, b):
        assert _flat(a.merge(b)) == pytest.approx(_flat(b.merge(a)))

    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots(), snapshots())
    def test_merge_is_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _flat(left) == pytest.approx(_flat(right))

    @settings(max_examples=25, deadline=None)
    @given(snapshots())
    def test_empty_is_identity(self, snap):
        empty = obs.TelemetrySnapshot()
        assert empty.merge(snap).as_dict() == snap.as_dict()
        assert snap.merge(empty).as_dict() == snap.as_dict()

    @settings(max_examples=25, deadline=None)
    @given(snapshots())
    def test_dict_round_trip(self, snap):
        rebuilt = obs.TelemetrySnapshot.from_dict(snap.as_dict())
        assert rebuilt.as_dict() == snap.as_dict()

    @settings(max_examples=25, deadline=None)
    @given(snapshots(), snapshots())
    def test_absorb_equals_merge(self, a, b):
        tel = obs.Telemetry()
        tel.absorb(a)
        tel.absorb(b)
        assert tel.snapshot().as_dict() == a.merge(b).as_dict()


class TestInstruments:
    def test_counters_sum(self):
        tel = obs.Telemetry()
        tel.count("x")
        tel.count("x", 4)
        assert tel.snapshot().counters["x"] == 5

    def test_gauge_keeps_last_and_merges_max(self):
        tel = obs.Telemetry()
        tel.gauge("g", 3.0)
        tel.gauge("g", 1.0)
        assert tel.snapshot().gauges["g"] == 1.0
        tel.absorb(obs.TelemetrySnapshot(gauges={"g": 7.0}))
        assert tel.snapshot().gauges["g"] == 7.0

    def test_histogram_summary(self):
        tel = obs.Telemetry()
        for value in (2.0, 5.0, 3.0):
            tel.observe("h", value)
        assert tel.snapshot().histograms["h"] == (3.0, 10.0, 2.0, 5.0)

    def test_spans_nest_into_dotted_paths(self):
        tel = obs.Telemetry()
        with tel.span("kernel"):
            with tel.span("refine"):
                pass
            with tel.span("refine"):
                pass
        spans = tel.snapshot().spans
        assert spans["kernel"][0] == 1
        assert spans["kernel.refine"][0] == 2
        assert spans["kernel"][1] >= spans["kernel.refine"][1]

    def test_worker_span_snapshot(self):
        snap = obs.worker_span_snapshot("worker.fleet_chunk", 0.25)
        assert snap.spans == {"worker.fleet_chunk": (1, 0.25)}

    def test_event_counts_without_trace(self):
        tel = obs.Telemetry()
        tel.event("cache", data={"outcome": "hit"})
        assert tel.snapshot().counters["events.cache"] == 1


class TestSession:
    def test_defaults_to_null(self):
        assert obs.current() is obs.NULL
        assert not obs.current().enabled

    def test_session_installs_and_restores(self):
        tel = obs.Telemetry()
        with obs.session(tel):
            assert obs.current() is tel
        assert obs.current() is obs.NULL

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.session(obs.Telemetry()):
                raise RuntimeError("boom")
        assert obs.current() is obs.NULL

    def test_null_instruments_record_nothing(self):
        null = obs.NullTelemetry()
        null.count("x")
        null.gauge("g", 1.0)
        null.observe("h", 1.0)
        with null.span("s"):
            pass
        null.event("e", data={"k": 1})
        null.absorb(obs.TelemetrySnapshot(counters={"x": 1.0}))
        assert null.snapshot().empty


class TestPrometheusExport:
    def test_metric_name_sanitises(self):
        assert metric_name("cache.fleet.hit") == "repro_cache_fleet_hit"
        assert metric_name("9lives") == "repro_9lives"
        assert metric_name("a b/c") == "repro_a_b_c"

    def test_exposition_covers_every_instrument(self):
        tel = obs.Telemetry()
        tel.count("cache.fleet.hit", 3)
        tel.gauge("jobs", 4)
        tel.observe("fleet.chunk_seconds", 0.5)
        tel.observe("fleet.chunk_seconds", 1.5)
        with tel.span("kernel"):
            pass
        text = to_prometheus(tel.snapshot())
        assert "# TYPE repro_cache_fleet_hit_total counter" in text
        assert "repro_cache_fleet_hit_total 3" in text
        assert "repro_jobs 4" in text
        assert "repro_fleet_chunk_seconds_count 2" in text
        assert "repro_fleet_chunk_seconds_sum 2" in text
        assert "repro_kernel_span_count 1" in text
        assert text.endswith("\n")

    def test_non_finite_values_render_prometheus_style(self):
        snap = obs.TelemetrySnapshot(gauges={"g": math.inf})
        assert "repro_g +Inf" in to_prometheus(snap)
