"""Zero-copy result transport for the worker-pool runners.

The fleet and optimizer runners fan chunks out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  With the default
``transport="pickle"`` every worker pickles its result object back
through the pool's result pipe; with ``transport="shm"`` the parent
allocates one :mod:`multiprocessing.shared_memory` block of fixed-width
numeric rows and each worker writes its slot *in place*, so the only
thing crossing the pipe is ``None``.  Both runners' results are already
flat numeric summaries (a :class:`~repro.fleet.aggregate.FleetTally`, a
:class:`~repro.optimize.evaluate.SimulatedLoss`), which is what makes a
fixed-width row encoding lossless: the parent reconstructs the objects
from the rows in the same chunk order the pickled path would have used,
so the merged result is identical — the equality property the transport
tests pin down.

The block lives exactly as long as one runner call: the parent creates
it, the workers attach by name, and the parent unlinks it in a
``finally`` so no segment leaks even when a worker raises.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

#: Recognised chunk-result transports.
TRANSPORTS: Tuple[str, ...] = ("pickle", "shm")

#: Resolution of the integer wall-time encoding below.
_MICROSECONDS_PER_SECOND = 1_000_000


def encode_seconds(seconds: float) -> int:
    """Encode a wall time as integer microseconds.

    Telemetry-enabled shared-memory runs append one wall-time column to
    each worker's result row; on ``int64`` buffers (the fleet tallies)
    the time rides as microseconds, exact far beyond any chunk duration.
    """
    return int(round(seconds * _MICROSECONDS_PER_SECOND))


def decode_seconds(value: float) -> float:
    """Invert :func:`encode_seconds`."""
    return float(value) / _MICROSECONDS_PER_SECOND


def check_transport(transport: str) -> None:
    """Validate a ``transport`` knob."""
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )


class SharedResultBuffer:
    """A parent-owned ``(rows, width)`` matrix in shared memory.

    The parent creates the buffer, ships ``spec()`` to the workers with
    their slot index, and reads :meth:`array` after the pool drains;
    :meth:`destroy` closes and unlinks the segment.
    """

    def __init__(self, rows: int, width: int, dtype: str = "float64") -> None:
        if rows < 1 or width < 1:
            raise ValueError("rows and width must be positive")
        self.rows = rows
        self.width = width
        self.dtype = np.dtype(dtype)
        self._shm = shared_memory.SharedMemory(
            create=True, size=rows * width * self.dtype.itemsize
        )
        self.array()[:] = 0

    def spec(self) -> Tuple[str, int, int, str]:
        """Picklable handle a worker needs to attach: (name, rows, width, dtype)."""
        return (self._shm.name, self.rows, self.width, self.dtype.name)

    def array(self) -> np.ndarray:
        """The live view over the shared block (valid until destroy)."""
        return np.ndarray(
            (self.rows, self.width), dtype=self.dtype, buffer=self._shm.buf
        )

    def destroy(self) -> None:
        """Release the segment (close this handle and unlink the block)."""
        self._shm.close()
        self._shm.unlink()


def write_row(
    spec: Tuple[str, int, int, str], index: int, values: np.ndarray
) -> None:
    """Worker-side: write one result row into the parent's buffer."""
    name, rows, width, dtype = spec
    values = np.asarray(values)
    if values.shape != (width,):
        raise ValueError(
            f"row has {values.shape} values; buffer rows are ({width},)"
        )
    segment = shared_memory.SharedMemory(name=name)
    try:
        array = np.ndarray(
            (rows, width), dtype=np.dtype(dtype), buffer=segment.buf
        )
        array[index] = values
    finally:
        segment.close()
