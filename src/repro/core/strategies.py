"""Evaluation of the paper's reliability-improvement strategies (§6).

Section 6 of the paper enumerates seven strategies and the model lets us
quantify each one as a change to the :class:`FaultModel` parameters:

* increase ``MV`` (better hardware),
* increase ``ML`` (media less subject to corruption / formats less
  subject to obsolescence),
* reduce ``MDL`` (audit / scrub more often),
* reduce ``MRL`` (automate latent-fault repair),
* reduce ``MRV`` (hot spares),
* increase the number of replicas,
* increase ``α`` (make replicas more independent).

:func:`evaluate_strategy` applies one strategy to a model and reports
the MTTDL before and after, so the strategies can be ranked for a given
starting point — the paper's conclusion is that detection latency,
automated repair, and independence dominate.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.replication import replicated_mttdl_from_model
from repro.core.units import HOURS_PER_YEAR


class Strategy(enum.Enum):
    """The reliability-improvement levers enumerated in Section 6."""

    INCREASE_MV = "increase_mv"
    INCREASE_ML = "increase_ml"
    REDUCE_MDL = "reduce_mdl"
    REDUCE_MRL = "reduce_mrl"
    REDUCE_MRV = "reduce_mrv"
    INCREASE_REPLICATION = "increase_replication"
    INCREASE_INDEPENDENCE = "increase_independence"


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of applying one strategy with a given improvement factor.

    Attributes:
        strategy: which lever was applied.
        factor: the improvement factor applied to the relevant parameter
            (mean times multiplied, repair/detection times divided,
            replica count multiplied, correlation factor moved toward 1).
        baseline_mttdl_hours: MTTDL before the change.
        improved_mttdl_hours: MTTDL after the change.
        model: the modified model (for replication strategies this is the
            unchanged per-replica model; the improvement shows up in the
            replica count).
        replicas: replica count used for the evaluation.
    """

    strategy: Strategy
    factor: float
    baseline_mttdl_hours: float
    improved_mttdl_hours: float
    model: FaultModel
    replicas: int = 2

    @property
    def improvement_ratio(self) -> float:
        """How many times larger the MTTDL became."""
        if self.baseline_mttdl_hours == 0:
            return float("inf")
        return self.improved_mttdl_hours / self.baseline_mttdl_hours

    @property
    def improved_mttdl_years(self) -> float:
        return self.improved_mttdl_hours / HOURS_PER_YEAR

    @property
    def baseline_mttdl_years(self) -> float:
        return self.baseline_mttdl_hours / HOURS_PER_YEAR


def _apply_strategy(
    model: FaultModel, strategy: Strategy, factor: float
) -> FaultModel:
    """Return the model after applying ``strategy`` with ``factor``."""
    if factor < 1:
        raise ValueError("improvement factor must be at least 1")
    if strategy is Strategy.INCREASE_MV:
        return replace(model, mean_time_to_visible=model.mean_time_to_visible * factor)
    if strategy is Strategy.INCREASE_ML:
        return replace(model, mean_time_to_latent=model.mean_time_to_latent * factor)
    if strategy is Strategy.REDUCE_MDL:
        return replace(model, mean_detect_latent=model.mean_detect_latent / factor)
    if strategy is Strategy.REDUCE_MRL:
        return replace(model, mean_repair_latent=model.mean_repair_latent / factor)
    if strategy is Strategy.REDUCE_MRV:
        return replace(model, mean_repair_visible=model.mean_repair_visible / factor)
    if strategy is Strategy.INCREASE_INDEPENDENCE:
        # Move alpha toward 1 by shrinking the "correlation excess"
        # (1 - alpha would be wrong: alpha is multiplicative, so an
        # improvement factor f multiplies alpha, capped at 1).
        return replace(
            model,
            correlation_factor=min(1.0, model.correlation_factor * factor),
        )
    if strategy is Strategy.INCREASE_REPLICATION:
        # Replication changes the system, not the per-replica model.
        return model
    raise ValueError(f"unknown strategy {strategy!r}")


def evaluate_strategy(
    model: FaultModel,
    strategy: Strategy,
    factor: float = 2.0,
    replicas: int = 2,
) -> StrategyOutcome:
    """Apply one strategy and report the MTTDL before and after.

    For :attr:`Strategy.INCREASE_REPLICATION` the ``factor`` is rounded
    to the number of replicas to add (a factor of 2 doubles the replica
    count) and the evaluation uses the r-way Eq. 12 model; all other
    strategies are evaluated on the mirrored-pair Eq. 7 model.
    """
    if replicas < 2:
        raise ValueError("replicas must be at least 2 for a replicated system")
    if strategy is Strategy.INCREASE_REPLICATION:
        baseline = replicated_mttdl_from_model(model, replicas)
        new_replicas = max(replicas + 1, int(round(replicas * factor)))
        improved = replicated_mttdl_from_model(model, new_replicas)
        return StrategyOutcome(
            strategy=strategy,
            factor=factor,
            baseline_mttdl_hours=baseline,
            improved_mttdl_hours=improved,
            model=model,
            replicas=new_replicas,
        )
    improved_model = _apply_strategy(model, strategy, factor)
    baseline = mirrored_mttdl(model)
    improved = mirrored_mttdl(improved_model)
    return StrategyOutcome(
        strategy=strategy,
        factor=factor,
        baseline_mttdl_hours=baseline,
        improved_mttdl_hours=improved,
        model=improved_model,
        replicas=replicas,
    )


def evaluate_all_strategies(
    model: FaultModel,
    factor: float = 2.0,
    replicas: int = 2,
    strategies: Optional[Iterable[Strategy]] = None,
) -> Dict[Strategy, StrategyOutcome]:
    """Evaluate every strategy with the same improvement factor."""
    chosen = list(strategies) if strategies is not None else list(Strategy)
    return {
        strategy: evaluate_strategy(model, strategy, factor, replicas)
        for strategy in chosen
    }


def rank_strategies(
    model: FaultModel, factor: float = 2.0, replicas: int = 2
) -> List[StrategyOutcome]:
    """Strategies sorted by decreasing MTTDL improvement ratio."""
    outcomes = evaluate_all_strategies(model, factor, replicas)
    return sorted(
        outcomes.values(), key=lambda outcome: outcome.improvement_ratio, reverse=True
    )


def alpha_lower_bound(model: FaultModel, safety_multiple: float = 10.0) -> float:
    """The paper's lower bound on the correlation factor (Section 5.4).

    The paper argues the correlated mean time to a second visible fault
    should be at least an order of magnitude larger than the recovery
    time (``α · MV ≥ 10 · MRV``), which bounds ``α`` below by
    ``10 · MRV / MV``.
    """
    if safety_multiple <= 0:
        raise ValueError("safety_multiple must be positive")
    bound = safety_multiple * model.mean_repair_visible / model.mean_time_to_visible
    return min(bound, 1.0)


def alpha_range_orders_of_magnitude(
    model: FaultModel, safety_multiple: float = 10.0
) -> float:
    """How many orders of magnitude the plausible ``α`` range spans.

    The paper's example gives a range of at least five orders of
    magnitude (``2e-6`` to 1) for the Cheetah parameters.
    """
    lower = alpha_lower_bound(model, safety_multiple)
    if lower <= 0:
        return float("inf")
    return math.log10(1.0 / lower)
