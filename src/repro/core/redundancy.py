"""First-class redundancy schemes: r-way replication and (n, k) codes.

The paper's reliability model (Eq. 12 and the Markov MTTDL analysis)
assumes r-way mirroring, but its own comparison points — the
Weatherspoon/Kubiatowicz erasure-coding analysis in
:mod:`repro.baselines.weatherspoon` and RAID in
:mod:`repro.baselines.raid_patterson` — frame the production answer for
long-term archives as "any ``k`` of ``n`` fragments reconstruct".  This
module is the single place that knows what a redundancy scheme *is*:

* :class:`RedundancyScheme` — ``n`` stored fragments of which any ``k``
  reconstruct the object.  Data is lost when more than ``n - k``
  fragments are simultaneously faulty, i.e. when the number of faulty
  fragments reaches the :attr:`~RedundancyScheme.loss_threshold`
  ``n - k + 1``.  Repair of one fragment reads ``k`` surviving
  fragments.
* :func:`Replication` — ``r``-way replication as the ``(n=r, k=1)``
  special case (loss only when all ``r`` copies are down).
* :func:`ErasureCode` — an explicit ``(n, k)`` code.

It also owns the scheme-aware closed forms.  The residual-window
chaining argument behind Eq. 12 generalises directly: a window of
vulnerability opens when any of the ``n`` fragments faults, and data is
lost when ``n - k`` *further* faults all land inside it, each drawn
from the remaining healthy fragments at the correlated rate.  For
``k = 1`` the formulas reduce exactly to the existing replication
closed forms (:func:`repro.simulation.rare_event.analytic_loss_rate`
and Eq. 12), which is what keeps the replication path bit-for-bit
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.parameters import FaultModel


@dataclass(frozen=True)
class RedundancyScheme:
    """An ``(n, k)`` redundancy scheme.

    ``n`` fragments are stored; any ``k`` of them reconstruct the
    object.  ``k = 1`` is plain ``n``-way replication (every fragment is
    a full copy); ``k > 1`` is an erasure code with storage overhead
    ``n / k``.

    Attributes:
        n: number of stored fragments (>= 1).
        k: number of fragments needed to reconstruct (1 <= k <= n).
    """

    n: int
    k: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be at least 1")
        if not 1 <= self.k <= self.n:
            raise ValueError("k must be between 1 and n")

    @property
    def loss_threshold(self) -> int:
        """Faulty-fragment count at which data is lost (``n - k + 1``)."""
        return self.n - self.k + 1

    @property
    def max_tolerable_faults(self) -> int:
        """Largest number of simultaneous faults survived (``n - k``)."""
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per user byte (``n / k``; ``r`` for replication)."""
        return self.n / self.k

    @property
    def repair_fragments_read(self) -> int:
        """Fragments read to rebuild one lost fragment (``k``)."""
        return self.k

    @property
    def is_replication(self) -> bool:
        """True when the scheme is plain replication (``k == 1``)."""
        return self.k == 1

    def describe(self) -> str:
        """Short human label: ``3-way replication`` or ``EC(6,4)``."""
        if self.is_replication:
            return f"{self.n}-way replication"
        return f"EC({self.n},{self.k})"

    def key(self) -> str:
        """Canonical compact form ``n,k`` (used in CLI and cache keys)."""
        return f"{self.n},{self.k}"

    def as_dict(self) -> Dict[str, int]:
        return {"n": self.n, "k": self.k}

    @staticmethod
    def from_dict(payload: Dict[str, int]) -> "RedundancyScheme":
        return RedundancyScheme(n=int(payload["n"]), k=int(payload["k"]))


def Replication(replicas: int) -> RedundancyScheme:
    """``r``-way replication as the ``(n=r, k=1)`` scheme."""
    return RedundancyScheme(n=replicas, k=1)


def ErasureCode(n: int, k: int) -> RedundancyScheme:
    """An ``(n, k)`` erasure code (any ``k`` of ``n`` reconstruct)."""
    return RedundancyScheme(n=n, k=k)


def parse_scheme(text: str) -> RedundancyScheme:
    """Parse ``"n,k"`` (or bare ``"n"`` meaning replication) to a scheme.

    Raises:
        ValueError: for malformed input or invalid ``(n, k)``.
    """
    parts = [p.strip() for p in text.split(",")]
    try:
        if len(parts) == 1:
            return Replication(int(parts[0]))
        if len(parts) == 2:
            return RedundancyScheme(n=int(parts[0]), k=int(parts[1]))
    except ValueError as exc:
        raise ValueError(f"invalid scheme {text!r}: {exc}") from exc
    raise ValueError(
        f"invalid scheme {text!r}: expected 'n,k' (erasure) or 'r' "
        "(replication)"
    )


def resolve_scheme(
    scheme: Optional[Union[RedundancyScheme, str]],
    replicas: Optional[int] = None,
) -> RedundancyScheme:
    """Normalise the optional ``scheme``/legacy ``replicas`` pair.

    Every layer that grew a ``scheme`` argument next to its historical
    ``replicas`` argument resolves them here: an explicit scheme wins,
    a string is parsed, and a bare replica count becomes ``(r, 1)``.
    """
    if scheme is not None:
        if isinstance(scheme, str):
            return parse_scheme(scheme)
        return scheme
    if replicas is None:
        raise ValueError("either scheme or replicas must be provided")
    return Replication(replicas)


def scheme_loss_rate(model: FaultModel, scheme: RedundancyScheme) -> float:
    """Data-loss rate (per hour) of a scheme, simulator-consistent.

    Generalises the chained residual-window argument of
    :func:`repro.simulation.rare_event.analytic_loss_rate`: a window of
    vulnerability opens when any of the ``n`` fragments faults (rate
    ``n λ_T`` per fault type); data is lost when ``n - k`` further
    faults land inside it.  The ``j``-th successive fault has ``n - j``
    candidate fragments, each faulting at the correlated rate
    ``λ_any / α``, into an expected residual window of ``W_T / 2^(j-1)``
    (each uniformly-arriving fault leaves on average half the remaining
    overlap).  Every per-step probability is capped at 1.

    For ``k = 1`` this is identical to the replication formula; for
    ``k = n`` (no redundancy beyond striping) the first fault is the
    loss and the rate is ``n λ_T``.
    """
    lam_any = model.total_fault_rate
    alpha = model.correlation_factor
    rate = 0.0
    for lam_first, window in (
        (model.visible_rate, model.visible_window),
        (model.latent_rate, model.latent_window),
    ):
        product = 1.0
        for j in range(1, scheme.loss_threshold):
            residual = window / 2.0 ** (j - 1)
            product *= min(1.0, (scheme.n - j) * residual * lam_any / alpha)
        rate += scheme.n * lam_first * product
    return rate


def scheme_mttdl_hours(model: FaultModel, scheme: RedundancyScheme) -> float:
    """MTTDL (hours) implied by :func:`scheme_loss_rate`."""
    rate = scheme_loss_rate(model, scheme)
    if rate <= 0.0:
        return float("inf")
    return 1.0 / rate


def scheme_mttdl_eq12(
    mean_time_to_fault: float,
    mean_repair_time: float,
    scheme: RedundancyScheme,
    correlation_factor: float = 1.0,
) -> float:
    """Eq. 12 generalised to ``(n, k)``: MTTDL in hours.

    Under the overlapping-window simplification each of the ``n - k``
    successive faults needed after the first lands inside the window
    with probability ``MRV / (α MV)``, so

    .. math::

        \\mathrm{MTTDL}(n, k) = MV \\cdot
            \\left(\\frac{\\alpha MV}{MRV}\\right)^{n - k}

    which reduces to Eq. 12 for ``k = 1`` and to the single-copy mean
    time to fault for ``k = n``.
    """
    if mean_time_to_fault <= 0:
        raise ValueError("mean_time_to_fault must be positive")
    if mean_repair_time < 0:
        raise ValueError("mean_repair_time must be non-negative")
    if not 0 < correlation_factor <= 1:
        raise ValueError("correlation_factor must be in (0, 1]")
    if scheme.max_tolerable_faults == 0:
        return mean_time_to_fault
    if mean_repair_time == 0:
        return float("inf")
    per_step = correlation_factor * mean_time_to_fault / mean_repair_time
    if per_step <= 1:
        return mean_time_to_fault
    return mean_time_to_fault * per_step ** scheme.max_tolerable_faults
