"""Time-unit conversions used throughout the model.

The paper quotes fault parameters in hours (drive MTTFs), minutes (repair
times), and years (MTTDL results, mission lifetimes).  All internal model
arithmetic is done in hours; these helpers convert at the boundaries.

The paper's worked examples divide by 8760 hours per year (365 days), so
we use that constant rather than the Julian-year 8766.
"""

from __future__ import annotations

HOURS_PER_YEAR = 8760.0
HOURS_PER_DAY = 24.0
MINUTES_PER_HOUR = 60.0
SECONDS_PER_HOUR = 3600.0


def hours_to_years(hours: float) -> float:
    """Convert a duration in hours to years."""
    return hours / HOURS_PER_YEAR


def years_to_hours(years: float) -> float:
    """Convert a duration in years to hours."""
    return years * HOURS_PER_YEAR


def minutes_to_hours(minutes: float) -> float:
    """Convert a duration in minutes to hours."""
    return minutes / MINUTES_PER_HOUR


def hours_to_minutes(hours: float) -> float:
    """Convert a duration in hours to minutes."""
    return hours * MINUTES_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert a duration in hours to seconds."""
    return hours * SECONDS_PER_HOUR


def days_to_hours(days: float) -> float:
    """Convert a duration in days to hours."""
    return days * HOURS_PER_DAY


def hours_to_days(hours: float) -> float:
    """Convert a duration in hours to days."""
    return hours / HOURS_PER_DAY


def per_hour_to_per_year(rate_per_hour: float) -> float:
    """Convert an event rate expressed per hour to per year."""
    return rate_per_hour * HOURS_PER_YEAR


def per_year_to_per_hour(rate_per_year: float) -> float:
    """Convert an event rate expressed per year to per hour."""
    return rate_per_year / HOURS_PER_YEAR


def rate_from_mean_time(mean_time: float) -> float:
    """Return the exponential rate ``1 / mean_time``.

    Raises:
        ValueError: if ``mean_time`` is not strictly positive.
    """
    if mean_time <= 0:
        raise ValueError(f"mean time must be positive, got {mean_time!r}")
    return 1.0 / mean_time


def mean_time_from_rate(rate: float) -> float:
    """Return the mean time ``1 / rate`` of an exponential process.

    Raises:
        ValueError: if ``rate`` is not strictly positive.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    return 1.0 / rate
