"""The :class:`FaultModel` parameter set of the paper's analytic model.

Paper notation (Section 5.1):

=========  =====================================================
``MV``     mean time to a visible fault
``MRV``    mean time to repair a visible fault
``ML``     mean time to a latent fault
``MRL``    mean time to repair a latent fault (once detected)
``MDL``    mean time from occurrence to detection of a latent fault
``α``      multiplicative correlation factor, 0 < α ≤ 1; smaller
           means more correlated (the mean time to the *second*
           fault within a window of vulnerability is α times the
           unconditional mean time)
=========  =====================================================

All times are in hours.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.core.faults import FaultSpec, FaultType, latent_fault, visible_fault
from repro.core.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class FaultModel:
    """Parameters of the paper's reliability model for one replica.

    Attributes:
        mean_time_to_visible: ``MV``, hours.
        mean_time_to_latent: ``ML``, hours.
        mean_repair_visible: ``MRV``, hours.
        mean_repair_latent: ``MRL``, hours.
        mean_detect_latent: ``MDL``, hours.
        correlation_factor: ``α`` in (0, 1]; 1 means fully independent
            faults, smaller values mean stronger correlation.
    """

    mean_time_to_visible: float
    mean_time_to_latent: float
    mean_repair_visible: float
    mean_repair_latent: float
    mean_detect_latent: float
    correlation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_time_to_visible <= 0:
            raise ValueError("mean_time_to_visible (MV) must be positive")
        if self.mean_time_to_latent <= 0:
            raise ValueError("mean_time_to_latent (ML) must be positive")
        if self.mean_repair_visible < 0:
            raise ValueError("mean_repair_visible (MRV) must be non-negative")
        if self.mean_repair_latent < 0:
            raise ValueError("mean_repair_latent (MRL) must be non-negative")
        if self.mean_detect_latent < 0:
            raise ValueError("mean_detect_latent (MDL) must be non-negative")
        if not 0 < self.correlation_factor <= 1:
            raise ValueError(
                "correlation_factor (alpha) must be in (0, 1], got "
                f"{self.correlation_factor!r}"
            )

    # -- short aliases matching the paper's notation ---------------------

    @property
    def mv(self) -> float:
        """``MV`` — mean time to a visible fault (hours)."""
        return self.mean_time_to_visible

    @property
    def ml(self) -> float:
        """``ML`` — mean time to a latent fault (hours)."""
        return self.mean_time_to_latent

    @property
    def mrv(self) -> float:
        """``MRV`` — mean time to repair a visible fault (hours)."""
        return self.mean_repair_visible

    @property
    def mrl(self) -> float:
        """``MRL`` — mean time to repair a latent fault (hours)."""
        return self.mean_repair_latent

    @property
    def mdl(self) -> float:
        """``MDL`` — mean time to detect a latent fault (hours)."""
        return self.mean_detect_latent

    @property
    def alpha(self) -> float:
        """``α`` — multiplicative correlation factor."""
        return self.correlation_factor

    # -- derived quantities ----------------------------------------------

    @property
    def visible_rate(self) -> float:
        """Occurrence rate of visible faults per replica (per hour)."""
        return 1.0 / self.mean_time_to_visible

    @property
    def latent_rate(self) -> float:
        """Occurrence rate of latent faults per replica (per hour)."""
        return 1.0 / self.mean_time_to_latent

    @property
    def total_fault_rate(self) -> float:
        """Combined fault occurrence rate per replica (per hour)."""
        return self.visible_rate + self.latent_rate

    @property
    def visible_window(self) -> float:
        """Window of vulnerability after a visible fault (hours)."""
        return self.mean_repair_visible

    @property
    def latent_window(self) -> float:
        """Window of vulnerability after a latent fault (hours).

        Includes the detection delay and the repair time
        (paper Section 5.3, Figure 2 discussion).
        """
        return self.mean_detect_latent + self.mean_repair_latent

    @property
    def latent_to_visible_ratio(self) -> float:
        """How much more frequent latent faults are than visible ones.

        Schwarz et al. (cited in Section 5.4) suggest this ratio is
        about five for silent block faults vs whole-disk faults.
        """
        return self.mean_time_to_visible / self.mean_time_to_latent

    # -- fault specs -------------------------------------------------------

    def visible_spec(self) -> FaultSpec:
        """The visible fault process as a :class:`FaultSpec`."""
        return visible_fault(
            mean_time_to_fault=self.mean_time_to_visible,
            mean_repair_time=self.mean_repair_visible,
            description="visible fault",
        )

    def latent_spec(self) -> FaultSpec:
        """The latent fault process as a :class:`FaultSpec`."""
        return latent_fault(
            mean_time_to_fault=self.mean_time_to_latent,
            mean_repair_time=self.mean_repair_latent,
            mean_detection_time=self.mean_detect_latent,
            description="latent fault",
        )

    def spec(self, fault_type: FaultType) -> FaultSpec:
        """Return the :class:`FaultSpec` for the requested fault type."""
        if fault_type is FaultType.VISIBLE:
            return self.visible_spec()
        return self.latent_spec()

    # -- evolution helpers -------------------------------------------------

    def with_correlation(self, alpha: float) -> "FaultModel":
        """Return a copy with a different correlation factor."""
        return replace(self, correlation_factor=alpha)

    def with_detection_time(self, mdl: float) -> "FaultModel":
        """Return a copy with a different mean latent detection time."""
        return replace(self, mean_detect_latent=mdl)

    def with_latent_mean_time(self, ml: float) -> "FaultModel":
        """Return a copy with a different mean time to latent faults."""
        return replace(self, mean_time_to_latent=ml)

    def with_visible_mean_time(self, mv: float) -> "FaultModel":
        """Return a copy with a different mean time to visible faults."""
        return replace(self, mean_time_to_visible=mv)

    def with_repair_times(self, mrv: float, mrl: float) -> "FaultModel":
        """Return a copy with different repair times."""
        return replace(self, mean_repair_visible=mrv, mean_repair_latent=mrl)

    def scaled(self, factor: float) -> "FaultModel":
        """Return a copy with both fault mean times scaled by ``factor``.

        Useful for modelling better or worse media without changing the
        repair and detection machinery.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            mean_time_to_visible=self.mean_time_to_visible * factor,
            mean_time_to_latent=self.mean_time_to_latent * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the parameters as a plain dictionary (paper notation)."""
        return {
            "MV": self.mean_time_to_visible,
            "ML": self.mean_time_to_latent,
            "MRV": self.mean_repair_visible,
            "MRL": self.mean_repair_latent,
            "MDL": self.mean_detect_latent,
            "alpha": self.correlation_factor,
        }

    def describe(self) -> str:
        """Return a readable multi-line description of the parameters."""
        lines = [
            f"MV    = {self.mean_time_to_visible:.6g} h "
            f"({self.mean_time_to_visible / HOURS_PER_YEAR:.3g} yr)",
            f"ML    = {self.mean_time_to_latent:.6g} h "
            f"({self.mean_time_to_latent / HOURS_PER_YEAR:.3g} yr)",
            f"MRV   = {self.mean_repair_visible:.6g} h",
            f"MRL   = {self.mean_repair_latent:.6g} h",
            f"MDL   = {self.mean_detect_latent:.6g} h",
            f"alpha = {self.correlation_factor:.6g}",
        ]
        return "\n".join(lines)


def model_from_specs(
    visible: FaultSpec, latent: FaultSpec, correlation_factor: float = 1.0
) -> FaultModel:
    """Build a :class:`FaultModel` from separate visible/latent specs.

    Raises:
        ValueError: if the spec types do not match their roles.
    """
    if visible.fault_type is not FaultType.VISIBLE:
        raise ValueError("the 'visible' spec must have FaultType.VISIBLE")
    if latent.fault_type is not FaultType.LATENT:
        raise ValueError("the 'latent' spec must have FaultType.LATENT")
    return FaultModel(
        mean_time_to_visible=visible.mean_time_to_fault,
        mean_time_to_latent=latent.mean_time_to_fault,
        mean_repair_visible=visible.mean_repair_time,
        mean_repair_latent=latent.mean_repair_time,
        mean_detect_latent=latent.mean_detection_time,
        correlation_factor=correlation_factor,
    )
