"""Sensitivity of the MTTDL to each model parameter.

The paper's qualitative implications (Section 5.4) — MTTDL varies
quadratically with ``min(MV, ML)``, linearly with ``α``, and inversely
with the latent window — can be checked numerically by computing the
elasticity (log-log derivative) of the MTTDL with respect to each
parameter.  An elasticity of 2 means "quadratic", 1 means "linear",
-1 means "inverse".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel

#: Parameter names accepted by the sensitivity functions, mapping the
#: paper's notation to :class:`FaultModel` field names.
PARAMETER_FIELDS: Dict[str, str] = {
    "MV": "mean_time_to_visible",
    "ML": "mean_time_to_latent",
    "MRV": "mean_repair_visible",
    "MRL": "mean_repair_latent",
    "MDL": "mean_detect_latent",
    "alpha": "correlation_factor",
}


def _perturbed(model: FaultModel, parameter: str, factor: float) -> FaultModel:
    """Return a copy of ``model`` with one parameter scaled by ``factor``."""
    field = PARAMETER_FIELDS.get(parameter)
    if field is None:
        raise ValueError(
            f"unknown parameter {parameter!r}; expected one of "
            f"{sorted(PARAMETER_FIELDS)}"
        )
    value = getattr(model, field) * factor
    if parameter == "alpha":
        value = min(value, 1.0)
    return replace(model, **{field: value})


def elasticity(
    model: FaultModel,
    parameter: str,
    metric: Callable[[FaultModel], float] = mirrored_mttdl,
    relative_step: float = 1e-3,
) -> float:
    """Log-log derivative of ``metric`` with respect to one parameter.

    Uses a central finite difference in log space:
    ``d ln(metric) / d ln(parameter)``.

    Args:
        model: the operating point.
        parameter: one of ``MV``, ``ML``, ``MRV``, ``MRL``, ``MDL``,
            ``alpha``.
        metric: function of the model to differentiate (defaults to the
            mirrored MTTDL).
        relative_step: relative perturbation size.

    Returns:
        The elasticity.  Returns 0 when the parameter's current value is
        zero (no relative perturbation is possible).
    """
    import math

    field = PARAMETER_FIELDS.get(parameter)
    if field is None:
        raise ValueError(
            f"unknown parameter {parameter!r}; expected one of "
            f"{sorted(PARAMETER_FIELDS)}"
        )
    current = getattr(model, field)
    if current == 0:
        return 0.0
    up_factor = 1.0 + relative_step
    down_factor = 1.0 - relative_step
    metric_up = metric(_perturbed(model, parameter, up_factor))
    metric_down = metric(_perturbed(model, parameter, down_factor))
    if metric_up <= 0 or metric_down <= 0:
        return 0.0
    return (math.log(metric_up) - math.log(metric_down)) / (
        math.log(up_factor) - math.log(down_factor)
    )


def parameter_sensitivities(
    model: FaultModel,
    metric: Callable[[FaultModel], float] = mirrored_mttdl,
    relative_step: float = 1e-3,
) -> Dict[str, float]:
    """Elasticity of ``metric`` with respect to every model parameter."""
    return {
        parameter: elasticity(model, parameter, metric, relative_step)
        for parameter in PARAMETER_FIELDS
    }


def most_sensitive_parameter(
    model: FaultModel,
    metric: Callable[[FaultModel], float] = mirrored_mttdl,
) -> str:
    """The parameter whose relative change moves ``metric`` the most."""
    sensitivities = parameter_sensitivities(model, metric)
    return max(sensitivities, key=lambda name: abs(sensitivities[name]))
