"""Format / media migration planning.

The paper treats format and media obsolescence as *latent* faults at a
higher layer (Section 6: "we can use a similar process of cycling
through the data, albeit at a reduced frequency, to detect data in
endangered formats and convert to new formats before we can no longer
interpret the old formats").  This module applies the same machinery to
that layer: given how often formats become endangered, how long a
migration sweep takes, and how often the collection is checked for
endangered formats, it computes the probability of ending up with
uninterpretable data and the checking cadence needed to bound it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class FormatRisk:
    """Obsolescence risk profile of one format family.

    Attributes:
        name: format label (e.g. ``"camera RAW"``, ``"TIFF"``).
        mean_years_to_endangered: mean years until the format becomes
            endangered (readers start disappearing).
        mean_years_endangered_to_dead: mean years from "endangered" to
            "uninterpretable" (the window in which migration is still
            possible).
        migration_sweep_years: years needed to convert the whole
            collection once the need is recognised.
        proprietary: proprietary formats carry a higher obsolescence
            hazard and are flagged for reporting.
    """

    name: str
    mean_years_to_endangered: float
    mean_years_endangered_to_dead: float
    migration_sweep_years: float
    proprietary: bool = False

    def __post_init__(self) -> None:
        if self.mean_years_to_endangered <= 0:
            raise ValueError("mean_years_to_endangered must be positive")
        if self.mean_years_endangered_to_dead <= 0:
            raise ValueError("mean_years_endangered_to_dead must be positive")
        if self.migration_sweep_years <= 0:
            raise ValueError("migration_sweep_years must be positive")


#: A handful of representative format risk profiles.  Proprietary camera
#: RAW is the paper's running example of a fragile format.
CAMERA_RAW = FormatRisk(
    name="proprietary camera RAW",
    mean_years_to_endangered=8.0,
    mean_years_endangered_to_dead=5.0,
    migration_sweep_years=1.0,
    proprietary=True,
)

OPEN_DOCUMENT_FORMAT = FormatRisk(
    name="open documented format",
    mean_years_to_endangered=40.0,
    mean_years_endangered_to_dead=20.0,
    migration_sweep_years=1.0,
    proprietary=False,
)

LEGACY_DATABASE_DUMP = FormatRisk(
    name="legacy database dump",
    mean_years_to_endangered=12.0,
    mean_years_endangered_to_dead=6.0,
    migration_sweep_years=2.0,
    proprietary=True,
)


def obsolescence_fault_model(
    risk: FormatRisk, format_checks_per_year: float
) -> FaultModel:
    """Map a format risk onto the paper's fault model.

    The "fault" is the format becoming endangered (latent — nothing
    breaks immediately); "detection" is the format-review cycle noticing
    it; "repair" is the migration sweep.  A second fault within the
    window corresponds to losing the remaining interpretability before
    migration completes, modelled by the endangered-to-dead clock acting
    as the visible-fault process.
    """
    if format_checks_per_year < 0:
        raise ValueError("format_checks_per_year must be non-negative")
    endangered_hours = risk.mean_years_to_endangered * HOURS_PER_YEAR
    death_hours = risk.mean_years_endangered_to_dead * HOURS_PER_YEAR
    sweep_hours = risk.migration_sweep_years * HOURS_PER_YEAR
    if format_checks_per_year == 0:
        detection_hours = endangered_hours
    else:
        detection_hours = HOURS_PER_YEAR / format_checks_per_year / 2.0
    return FaultModel(
        mean_time_to_visible=death_hours,
        mean_time_to_latent=endangered_hours,
        mean_repair_visible=sweep_hours,
        mean_repair_latent=sweep_hours,
        mean_detect_latent=detection_hours,
        correlation_factor=1.0,
    )


def probability_uninterpretable(
    risk: FormatRisk,
    format_checks_per_year: float,
    mission_years: float = 50.0,
) -> float:
    """Probability the collection's data becomes uninterpretable.

    The format dies if it goes from healthy to endangered to dead before
    a review cycle notices and the migration sweep completes.  With
    exponential clocks, the probability that the review-plus-sweep
    (duration ``D`` on average) finishes before the endangered-to-dead
    clock (mean ``T``) fires is ``T / (T + D)``; the complement is the
    per-endangerment death probability, and endangerment events arrive
    at ``1 / mean_years_to_endangered``.
    """
    if mission_years <= 0:
        raise ValueError("mission_years must be positive")
    if format_checks_per_year < 0:
        raise ValueError("format_checks_per_year must be non-negative")
    if format_checks_per_year == 0:
        review_delay_years = risk.mean_years_to_endangered
    else:
        review_delay_years = 1.0 / format_checks_per_year / 2.0
    exposure_years = review_delay_years + risk.migration_sweep_years
    death_probability_per_event = exposure_years / (
        exposure_years + risk.mean_years_endangered_to_dead
    )
    endangerment_rate = 1.0 / risk.mean_years_to_endangered
    death_rate = endangerment_rate * death_probability_per_event
    return 1.0 - math.exp(-death_rate * mission_years)


def review_rate_for_target(
    risk: FormatRisk,
    max_probability: float,
    mission_years: float = 50.0,
    max_checks_per_year: float = 12.0,
) -> Optional[float]:
    """Smallest format-review rate bounding the uninterpretability risk.

    Returns None when even ``max_checks_per_year`` reviews cannot meet
    the target (the migration sweep itself is then the bottleneck).
    """
    if not 0 < max_probability < 1:
        raise ValueError("max_probability must be in (0, 1)")
    if probability_uninterpretable(risk, max_checks_per_year, mission_years) > max_probability:
        return None
    if probability_uninterpretable(risk, 0.0, mission_years) <= max_probability:
        return 0.0
    low, high = 0.0, max_checks_per_year
    for _ in range(64):
        mid = (low + high) / 2.0
        if probability_uninterpretable(risk, mid, mission_years) <= max_probability:
            high = mid
        else:
            low = mid
    return high


def mttdf_hours(risk: FormatRisk, format_checks_per_year: float) -> float:
    """Mean time to "data death by format" via the mirrored-pair analogy.

    Evaluates :func:`obsolescence_fault_model` with the core MTTDL
    machinery; useful for putting format risk on the same axis as media
    risk in reports.
    """
    model = obsolescence_fault_model(risk, format_checks_per_year)
    return mirrored_mttdl(model)


def proprietary_penalty(
    proprietary: FormatRisk, open_format: FormatRisk, format_checks_per_year: float = 1.0
) -> float:
    """How many times likelier uninterpretable data is with the
    proprietary format at the same review cadence."""
    p_prop = probability_uninterpretable(proprietary, format_checks_per_year)
    p_open = probability_uninterpretable(open_format, format_checks_per_year)
    if p_open == 0:
        return float("inf")
    return p_prop / p_open
