"""Window-of-vulnerability probabilities (paper Eqs. 3-6).

After a first fault occurs on one copy of a mirrored pair, the data is
vulnerable until that fault is repaired.  The paper distinguishes the
window following a *visible* first fault (mean length ``MRV``) from the
window following a *latent* first fault (mean length ``MDL + MRL``), and
computes the probability of each kind of second fault arriving within
each window.  Correlation shortens the effective mean time to the second
fault by the factor ``α``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel


@dataclass(frozen=True)
class WindowOfVulnerability:
    """The unprotected period following a first fault.

    Attributes:
        first_fault: the type of the fault that opened the window.
        duration: mean length of the window in hours.
    """

    first_fault: FaultType
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("window duration must be non-negative")


def window_after(model: FaultModel, first_fault: FaultType) -> WindowOfVulnerability:
    """Return the window of vulnerability opened by ``first_fault``."""
    if first_fault is FaultType.VISIBLE:
        return WindowOfVulnerability(FaultType.VISIBLE, model.visible_window)
    return WindowOfVulnerability(FaultType.LATENT, model.latent_window)


def _second_fault_probability(
    window: float, mean_time_to_second: float, alpha: float, exact: bool
) -> float:
    """Probability of a second fault within a window.

    In the linearised form used by the paper this is
    ``window / (alpha * mean_time_to_second)`` (Eqs. 3-6 times 1/α), which
    assumes the window is much shorter than the mean time to the second
    fault.  With ``exact=True`` we use the exponential CDF instead, which
    stays within [0, 1] even for long windows — the regime the paper
    handles separately by "P(V2 or L2 | L1) approaches 1".
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    if mean_time_to_second <= 0:
        raise ValueError("mean_time_to_second must be positive")
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    effective_mean = alpha * mean_time_to_second
    if exact:
        return 1.0 - math.exp(-window / effective_mean)
    return window / effective_mean


def prob_second_fault_after_visible(
    model: FaultModel, second_fault: FaultType, exact: bool = False
) -> float:
    """Paper Eqs. 3 and 4 (with the correlation factor applied).

    Probability that a fault of ``second_fault`` type strikes the
    surviving copy during the repair window (``MRV``) that follows a
    visible first fault.
    """
    mean_time = (
        model.mean_time_to_visible
        if second_fault is FaultType.VISIBLE
        else model.mean_time_to_latent
    )
    return _second_fault_probability(
        model.visible_window, mean_time, model.correlation_factor, exact
    )


def prob_second_fault_after_latent(
    model: FaultModel, second_fault: FaultType, exact: bool = False
) -> float:
    """Paper Eqs. 5 and 6 (with the correlation factor applied).

    Probability that a fault of ``second_fault`` type strikes the
    surviving copy during the detection-plus-repair window
    (``MDL + MRL``) that follows a latent first fault.
    """
    mean_time = (
        model.mean_time_to_visible
        if second_fault is FaultType.VISIBLE
        else model.mean_time_to_latent
    )
    return _second_fault_probability(
        model.latent_window, mean_time, model.correlation_factor, exact
    )


def prob_any_second_fault_after_latent(model: FaultModel, exact: bool = False) -> float:
    """``P(V2 or L2 | L1)`` — probability of *any* second fault in the
    window following a latent first fault.

    The paper notes that when ``MDL`` is large this combined probability
    approaches 1, which is how the "no scrubbing" worked example is
    evaluated.  The linearised sum is capped at 1 to preserve that
    behaviour; the exact form computes the combined exponential.
    """
    if exact:
        combined_rate = (
            1.0 / (model.correlation_factor * model.mean_time_to_visible)
            + 1.0 / (model.correlation_factor * model.mean_time_to_latent)
        )
        return 1.0 - math.exp(-model.latent_window * combined_rate)
    total = prob_second_fault_after_latent(
        model, FaultType.VISIBLE, exact=False
    ) + prob_second_fault_after_latent(model, FaultType.LATENT, exact=False)
    return min(total, 1.0)


def prob_any_second_fault_after_visible(
    model: FaultModel, exact: bool = False
) -> float:
    """``P(V2 or L2 | V1)`` — probability of any second fault in the
    repair window following a visible first fault."""
    if exact:
        combined_rate = (
            1.0 / (model.correlation_factor * model.mean_time_to_visible)
            + 1.0 / (model.correlation_factor * model.mean_time_to_latent)
        )
        return 1.0 - math.exp(-model.visible_window * combined_rate)
    total = prob_second_fault_after_visible(
        model, FaultType.VISIBLE, exact=False
    ) + prob_second_fault_after_visible(model, FaultType.LATENT, exact=False)
    return min(total, 1.0)


def second_fault_probabilities(model: FaultModel, exact: bool = False) -> dict:
    """All four conditional probabilities from Figure 2 of the paper.

    Returns a dictionary keyed by ``(first, second)`` tuples of
    :class:`FaultType`, covering visible→visible, visible→latent,
    latent→visible and latent→latent.
    """
    return {
        (FaultType.VISIBLE, FaultType.VISIBLE): prob_second_fault_after_visible(
            model, FaultType.VISIBLE, exact
        ),
        (FaultType.VISIBLE, FaultType.LATENT): prob_second_fault_after_visible(
            model, FaultType.LATENT, exact
        ),
        (FaultType.LATENT, FaultType.VISIBLE): prob_second_fault_after_latent(
            model, FaultType.VISIBLE, exact
        ),
        (FaultType.LATENT, FaultType.LATENT): prob_second_fault_after_latent(
            model, FaultType.LATENT, exact
        ),
    }
