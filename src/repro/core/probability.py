"""Exponential loss-probability arithmetic (paper Eq. 1 and Section 5.4).

The model treats double-fault data loss as a memoryless process with mean
time MTTDL, so the probability of losing the data within a mission time
``t`` is ``1 - exp(-t / MTTDL)``.  The paper uses this to convert the
worked MTTDL values into "probability of data loss in 50 years" figures.
"""

from __future__ import annotations

import math

from repro.core.units import HOURS_PER_YEAR


def exponential_cdf(t: float, mean_time: float) -> float:
    """``P(T <= t)`` for an exponential variable with the given mean.

    This is the paper's Eq. 1, ``P(t) = 1 - e^{-t / MTTF}``.

    Raises:
        ValueError: if ``mean_time`` is not positive or ``t`` is negative.
    """
    if mean_time <= 0:
        raise ValueError(f"mean_time must be positive, got {mean_time!r}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t!r}")
    # expm1 keeps precision when t << mean_time, where 1 - exp(-x)
    # underflows to 0 long before the probability actually vanishes.
    return -math.expm1(-t / mean_time)


def exponential_survival(t: float, mean_time: float) -> float:
    """``P(T > t)`` for an exponential variable with the given mean."""
    if mean_time <= 0:
        raise ValueError(f"mean_time must be positive, got {mean_time!r}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t!r}")
    return math.exp(-t / mean_time)


def probability_of_loss(mttdl: float, mission_time: float) -> float:
    """Probability of at least one data-loss event within ``mission_time``.

    Both arguments are in hours.  The paper reports, for example, a 79.0%
    probability of loss in 50 years for the unscrubbed mirrored Cheetah
    pair whose MTTDL is 32.0 years.

    Args:
        mttdl: mean time to data loss in hours.
        mission_time: how long the data must survive, in hours.
    """
    return exponential_cdf(mission_time, mttdl)


def probability_of_survival(mttdl: float, mission_time: float) -> float:
    """Probability of surviving ``mission_time`` without data loss."""
    return exponential_survival(mission_time, mttdl)


def probability_of_loss_years(mttdl_years: float, mission_years: float) -> float:
    """Same as :func:`probability_of_loss` with both arguments in years."""
    return exponential_cdf(mission_years, mttdl_years)


def mttdl_for_loss_probability(loss_probability: float, mission_time: float) -> float:
    """Invert :func:`probability_of_loss`.

    Given a tolerable loss probability over a mission time, return the
    MTTDL (same unit as ``mission_time``) the system must achieve.

    Raises:
        ValueError: if ``loss_probability`` is not strictly between 0 and
            1, or ``mission_time`` is not positive.
    """
    if not 0 < loss_probability < 1:
        raise ValueError(
            "loss_probability must be strictly between 0 and 1, got "
            f"{loss_probability!r}"
        )
    if mission_time <= 0:
        raise ValueError(f"mission_time must be positive, got {mission_time!r}")
    return -mission_time / math.log(1.0 - loss_probability)


def annualised_loss_rate(mttdl_hours: float) -> float:
    """Expected number of data-loss events per year.

    This is simply ``8760 / MTTDL`` for an MTTDL expressed in hours; it is
    the natural rate to compare against annualised failure rates (AFR)
    quoted for drives.
    """
    if mttdl_hours <= 0:
        raise ValueError(f"mttdl_hours must be positive, got {mttdl_hours!r}")
    return HOURS_PER_YEAR / mttdl_hours


def halflife_from_mttdl(mttdl: float) -> float:
    """Time by which the data has a 50% chance of having been lost."""
    if mttdl <= 0:
        raise ValueError(f"mttdl must be positive, got {mttdl!r}")
    return mttdl * math.log(2.0)


def expected_losses(mttdl: float, mission_time: float) -> float:
    """Expected number of loss events in ``mission_time`` (same units).

    For a memoryless loss process with repairs that fully restore the
    system, the expected count over a mission is ``mission_time / MTTDL``.
    """
    if mttdl <= 0:
        raise ValueError(f"mttdl must be positive, got {mttdl!r}")
    if mission_time < 0:
        raise ValueError(f"mission_time must be non-negative, got {mission_time!r}")
    return mission_time / mttdl
