"""Fault vocabulary used by the analytic model and the simulator.

The paper distinguishes two fault *types* from the model's point of view
(Section 5.1):

* **visible** faults — detected essentially at the moment they occur
  (whole-disk failures, controller failures);
* **latent** faults — a significant delay separates occurrence from
  detection (bit rot, unreadable sectors, misdirected writes, data stored
  in obsolete formats, undiscovered deletions).

Separately, Section 3 enumerates the *classes* of threat that produce
those faults.  :class:`FaultClass` captures that taxonomy so threat
generators (``repro.threats``) and the simulator can label which class
caused each injected fault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class FaultType(enum.Enum):
    """Model-level fault type: visible or latent (paper Section 5.1)."""

    VISIBLE = "visible"
    LATENT = "latent"

    @property
    def is_latent(self) -> bool:
        return self is FaultType.LATENT

    @property
    def is_visible(self) -> bool:
        return self is FaultType.VISIBLE


class FaultClass(enum.Enum):
    """Threat classes from Section 3 of the paper."""

    LARGE_SCALE_DISASTER = "large_scale_disaster"
    HUMAN_ERROR = "human_error"
    COMPONENT_FAULT = "component_fault"
    MEDIA_FAULT = "media_fault"
    MEDIA_OBSOLESCENCE = "media_obsolescence"
    SOFTWARE_OBSOLESCENCE = "software_obsolescence"
    LOSS_OF_CONTEXT = "loss_of_context"
    ATTACK = "attack"
    ORGANIZATIONAL_FAULT = "organizational_fault"
    ECONOMIC_FAULT = "economic_fault"


#: Default model-level fault type for each threat class.  Several classes
#: manifest latently in the paper's discussion (Section 4.1); disasters
#: and most component faults are immediately visible.
DEFAULT_TYPE_FOR_CLASS = {
    FaultClass.LARGE_SCALE_DISASTER: FaultType.VISIBLE,
    FaultClass.HUMAN_ERROR: FaultType.LATENT,
    FaultClass.COMPONENT_FAULT: FaultType.VISIBLE,
    FaultClass.MEDIA_FAULT: FaultType.LATENT,
    FaultClass.MEDIA_OBSOLESCENCE: FaultType.LATENT,
    FaultClass.SOFTWARE_OBSOLESCENCE: FaultType.LATENT,
    FaultClass.LOSS_OF_CONTEXT: FaultType.LATENT,
    FaultClass.ATTACK: FaultType.LATENT,
    FaultClass.ORGANIZATIONAL_FAULT: FaultType.VISIBLE,
    FaultClass.ECONOMIC_FAULT: FaultType.VISIBLE,
}


@dataclass(frozen=True)
class FaultSpec:
    """A single fault process description.

    Attributes:
        fault_type: whether the fault is visible or latent.
        mean_time_to_fault: mean time between fault occurrences (hours).
        mean_repair_time: mean time to repair once detected (hours).
        mean_detection_time: mean time from occurrence to detection
            (hours).  Must be 0 for visible faults (detection is
            immediate by definition) and non-negative for latent faults.
        fault_class: optional threat class that produces this fault.
        description: optional human-readable label.
    """

    fault_type: FaultType
    mean_time_to_fault: float
    mean_repair_time: float
    mean_detection_time: float = 0.0
    fault_class: Optional[FaultClass] = None
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.mean_time_to_fault <= 0:
            raise ValueError(
                "mean_time_to_fault must be positive, got "
                f"{self.mean_time_to_fault!r}"
            )
        if self.mean_repair_time < 0:
            raise ValueError(
                "mean_repair_time must be non-negative, got "
                f"{self.mean_repair_time!r}"
            )
        if self.mean_detection_time < 0:
            raise ValueError(
                "mean_detection_time must be non-negative, got "
                f"{self.mean_detection_time!r}"
            )
        if self.fault_type is FaultType.VISIBLE and self.mean_detection_time != 0:
            raise ValueError(
                "visible faults are detected immediately; "
                "mean_detection_time must be 0"
            )

    @property
    def rate(self) -> float:
        """Occurrence rate of the fault process (per hour)."""
        return 1.0 / self.mean_time_to_fault

    @property
    def window_of_vulnerability(self) -> float:
        """Mean unrepaired period following one of these faults (hours).

        For visible faults this is just the repair time; for latent
        faults it additionally includes the detection delay
        (paper Section 5.3).
        """
        return self.mean_detection_time + self.mean_repair_time

    def with_detection_time(self, mean_detection_time: float) -> "FaultSpec":
        """Return a copy with a different mean detection time."""
        return FaultSpec(
            fault_type=self.fault_type,
            mean_time_to_fault=self.mean_time_to_fault,
            mean_repair_time=self.mean_repair_time,
            mean_detection_time=mean_detection_time,
            fault_class=self.fault_class,
            description=self.description,
        )


def visible_fault(
    mean_time_to_fault: float,
    mean_repair_time: float,
    fault_class: Optional[FaultClass] = None,
    description: str = "",
) -> FaultSpec:
    """Convenience constructor for a visible :class:`FaultSpec`."""
    return FaultSpec(
        fault_type=FaultType.VISIBLE,
        mean_time_to_fault=mean_time_to_fault,
        mean_repair_time=mean_repair_time,
        mean_detection_time=0.0,
        fault_class=fault_class,
        description=description,
    )


def latent_fault(
    mean_time_to_fault: float,
    mean_repair_time: float,
    mean_detection_time: float,
    fault_class: Optional[FaultClass] = None,
    description: str = "",
) -> FaultSpec:
    """Convenience constructor for a latent :class:`FaultSpec`."""
    return FaultSpec(
        fault_type=FaultType.LATENT,
        mean_time_to_fault=mean_time_to_fault,
        mean_repair_time=mean_repair_time,
        mean_detection_time=mean_detection_time,
        fault_class=fault_class,
        description=description,
    )
