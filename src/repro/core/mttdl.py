"""Mean time to data loss for mirrored data (paper Eqs. 7 and 8).

Mirrored data is lost when a second fault strikes the surviving copy
before the first fault has been repaired — a *double fault*.  Equation 7
sums, over both kinds of first fault, the rate at which first faults
occur times the probability a second fault lands inside the resulting
window of vulnerability.  Equation 8 is the closed form obtained by
substituting the linearised window probabilities and the correlation
factor.

Two evaluation modes are provided:

* :func:`mirrored_mttdl` — the paper's formulation: linearised window
  probabilities, with the combined second-fault probability capped at 1
  when a window is so long that the approximation breaks down (this is
  exactly how the paper evaluates the "no scrubbing" example, where it
  substitutes ``P(V2 or L2 | L1) ≈ 1``).
* :func:`mirrored_mttdl_exact` — uses exponential window probabilities
  instead of the linearisation, which never exceed 1 and smoothly cover
  both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.wov import (
    prob_any_second_fault_after_latent,
    prob_any_second_fault_after_visible,
    second_fault_probabilities,
)


@dataclass(frozen=True)
class DoubleFaultBreakdown:
    """Contribution of each first/second fault combination to data loss.

    All fields are rates (per hour).  ``total`` is the double-fault data
    loss rate, i.e. ``1 / MTTDL``.
    """

    visible_then_visible: float
    visible_then_latent: float
    latent_then_visible: float
    latent_then_latent: float

    @property
    def total(self) -> float:
        return (
            self.visible_then_visible
            + self.visible_then_latent
            + self.latent_then_visible
            + self.latent_then_latent
        )

    @property
    def after_visible(self) -> float:
        """Loss rate attributable to windows opened by visible faults."""
        return self.visible_then_visible + self.visible_then_latent

    @property
    def after_latent(self) -> float:
        """Loss rate attributable to windows opened by latent faults."""
        return self.latent_then_visible + self.latent_then_latent

    def as_dict(self) -> Dict[Tuple[FaultType, FaultType], float]:
        return {
            (FaultType.VISIBLE, FaultType.VISIBLE): self.visible_then_visible,
            (FaultType.VISIBLE, FaultType.LATENT): self.visible_then_latent,
            (FaultType.LATENT, FaultType.VISIBLE): self.latent_then_visible,
            (FaultType.LATENT, FaultType.LATENT): self.latent_then_latent,
        }

    def fractions(self) -> Dict[Tuple[FaultType, FaultType], float]:
        """Each combination's share of the total double-fault rate."""
        total = self.total
        if total == 0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}


def double_fault_breakdown(
    model: FaultModel, exact: bool = False, cap_windows: bool = True
) -> DoubleFaultBreakdown:
    """Per-combination double-fault rates (the terms of Eq. 7).

    Args:
        model: the fault model parameters.
        exact: use exponential window probabilities rather than the
            paper's linearisation.
        cap_windows: when using the linearised probabilities, rescale the
            second-fault probabilities within a window so their sum never
            exceeds 1 (the paper's ``P(V2 or L2 | L1) ≈ 1`` substitution).
            Ignored when ``exact`` is true.
    """
    probs = second_fault_probabilities(model, exact=exact)
    p_vv = probs[(FaultType.VISIBLE, FaultType.VISIBLE)]
    p_vl = probs[(FaultType.VISIBLE, FaultType.LATENT)]
    p_lv = probs[(FaultType.LATENT, FaultType.VISIBLE)]
    p_ll = probs[(FaultType.LATENT, FaultType.LATENT)]

    if not exact and cap_windows:
        p_vv, p_vl = _cap_pair(p_vv, p_vl)
        p_lv, p_ll = _cap_pair(p_lv, p_ll)

    visible_rate = model.visible_rate
    latent_rate = model.latent_rate
    return DoubleFaultBreakdown(
        visible_then_visible=visible_rate * p_vv,
        visible_then_latent=visible_rate * p_vl,
        latent_then_visible=latent_rate * p_lv,
        latent_then_latent=latent_rate * p_ll,
    )


def _cap_pair(p_first: float, p_second: float) -> Tuple[float, float]:
    """Rescale a pair of window probabilities so their sum is at most 1."""
    total = p_first + p_second
    if total <= 1.0:
        return p_first, p_second
    scale = 1.0 / total
    return p_first * scale, p_second * scale


def double_fault_rate(
    model: FaultModel, exact: bool = False, cap_windows: bool = True
) -> float:
    """The double-fault data-loss rate ``1 / MTTDL`` (paper Eq. 7).

    The rate sums, for each kind of first fault, the first-fault rate
    times the probability that any second fault arrives within the
    resulting window of vulnerability.
    """
    if exact:
        p_after_visible = prob_any_second_fault_after_visible(model, exact=True)
        p_after_latent = prob_any_second_fault_after_latent(model, exact=True)
    else:
        p_after_visible = prob_any_second_fault_after_visible(model, exact=False)
        p_after_latent = prob_any_second_fault_after_latent(model, exact=False)
        if not cap_windows:
            # Recompute without the min(..., 1) cap for the raw Eq. 8 form.
            p_after_visible = model.visible_window / (
                model.correlation_factor * model.mean_time_to_visible
            ) + model.visible_window / (
                model.correlation_factor * model.mean_time_to_latent
            )
            p_after_latent = model.latent_window / (
                model.correlation_factor * model.mean_time_to_visible
            ) + model.latent_window / (
                model.correlation_factor * model.mean_time_to_latent
            )
    return (
        model.visible_rate * p_after_visible + model.latent_rate * p_after_latent
    )


def mirrored_mttdl(
    model: FaultModel, exact: bool = False, cap_windows: bool = True
) -> float:
    """Mean time to data loss of a mirrored pair, in hours.

    With ``exact=False`` and ``cap_windows=True`` (the defaults) this
    evaluates the model exactly as the paper does in its Section 5.4
    worked examples: the linearised Eq. 8, except that when a window of
    vulnerability is long enough that the linearised second-fault
    probability would exceed 1 it is capped at 1.

    Returns:
        MTTDL in hours.
    """
    rate = double_fault_rate(model, exact=exact, cap_windows=cap_windows)
    if rate <= 0:
        return float("inf")
    return 1.0 / rate


def mirrored_mttdl_exact(model: FaultModel) -> float:
    """Mean time to data loss using exponential window probabilities."""
    return mirrored_mttdl(model, exact=True)


def mirrored_mttdl_closed_form(model: FaultModel) -> float:
    """The paper's Eq. 8 evaluated literally (no capping).

    .. math::

        \\mathrm{MTTDL} = \\frac{\\alpha\\,ML^2\\,MV^2}
            {(MV + ML)\\,(MRV\\cdot ML + (MRL + MDL)\\cdot MV)}

    This form is only meaningful when both windows of vulnerability are
    much shorter than both fault mean times; outside that regime prefer
    :func:`mirrored_mttdl`.
    """
    mv = model.mean_time_to_visible
    ml = model.mean_time_to_latent
    mrv = model.mean_repair_visible
    wov_latent = model.latent_window
    numerator = model.correlation_factor * ml * ml * mv * mv
    denominator = (mv + ml) * (mrv * ml + wov_latent * mv)
    if denominator == 0:
        return float("inf")
    return numerator / denominator
