"""Analytic reliability model for replicated long-term storage.

This subpackage is the paper's primary contribution (Section 5): a
window-of-vulnerability model of mirrored and r-way replicated data that
accounts for visible faults, latent faults (with a detection delay), and
correlated faults via a multiplicative correlation factor.
"""

from repro.core.units import (
    HOURS_PER_YEAR,
    hours_to_years,
    years_to_hours,
    minutes_to_hours,
    hours_to_minutes,
    per_hour_to_per_year,
    per_year_to_per_hour,
)
from repro.core.faults import FaultType, FaultClass, FaultSpec
from repro.core.parameters import FaultModel
from repro.core.probability import (
    exponential_cdf,
    exponential_survival,
    probability_of_loss,
    probability_of_survival,
    mttdl_for_loss_probability,
    annualised_loss_rate,
)
from repro.core.wov import (
    WindowOfVulnerability,
    prob_second_fault_after_visible,
    prob_second_fault_after_latent,
    second_fault_probabilities,
)
from repro.core.mttdl import (
    double_fault_rate,
    mirrored_mttdl,
    mirrored_mttdl_exact,
    DoubleFaultBreakdown,
    double_fault_breakdown,
)
from repro.core.approximations import (
    visible_dominated_mttdl,
    latent_dominated_mttdl,
    long_window_mttdl,
    OperatingRegime,
    classify_regime,
    best_approximation,
)
from repro.core.replication import (
    replicated_mttdl,
    replication_gain,
    replicas_needed_for_target,
    fragments_needed_for_target,
)
from repro.core.redundancy import (
    RedundancyScheme,
    Replication,
    ErasureCode,
    parse_scheme,
    resolve_scheme,
    scheme_loss_rate,
    scheme_mttdl_hours,
    scheme_mttdl_eq12,
)
from repro.core.scenarios import (
    Scenario,
    cheetah_no_scrub_scenario,
    cheetah_scrubbed_scenario,
    cheetah_correlated_scenario,
    cheetah_negligent_scenario,
    paper_scenarios,
)
from repro.core.strategies import (
    Strategy,
    StrategyOutcome,
    evaluate_strategy,
    evaluate_all_strategies,
    alpha_lower_bound,
    alpha_range_orders_of_magnitude,
)
from repro.core.sensitivity import (
    parameter_sensitivities,
    elasticity,
    most_sensitive_parameter,
)
from repro.core.tradeoffs import (
    AuditTradeoff,
    audit_rate_tradeoff,
    optimal_audit_rate,
)
from repro.core.migration import (
    FormatRisk,
    CAMERA_RAW,
    OPEN_DOCUMENT_FORMAT,
    LEGACY_DATABASE_DUMP,
    obsolescence_fault_model,
    probability_uninterpretable,
    review_rate_for_target,
)

__all__ = [
    # units
    "HOURS_PER_YEAR",
    "hours_to_years",
    "years_to_hours",
    "minutes_to_hours",
    "hours_to_minutes",
    "per_hour_to_per_year",
    "per_year_to_per_hour",
    # faults
    "FaultType",
    "FaultClass",
    "FaultSpec",
    # parameters
    "FaultModel",
    # probability
    "exponential_cdf",
    "exponential_survival",
    "probability_of_loss",
    "probability_of_survival",
    "mttdl_for_loss_probability",
    "annualised_loss_rate",
    # WOV
    "WindowOfVulnerability",
    "prob_second_fault_after_visible",
    "prob_second_fault_after_latent",
    "second_fault_probabilities",
    # MTTDL
    "double_fault_rate",
    "mirrored_mttdl",
    "mirrored_mttdl_exact",
    "DoubleFaultBreakdown",
    "double_fault_breakdown",
    # approximations
    "visible_dominated_mttdl",
    "latent_dominated_mttdl",
    "long_window_mttdl",
    "OperatingRegime",
    "classify_regime",
    "best_approximation",
    # replication
    "replicated_mttdl",
    "replication_gain",
    "replicas_needed_for_target",
    "fragments_needed_for_target",
    # redundancy schemes
    "RedundancyScheme",
    "Replication",
    "ErasureCode",
    "parse_scheme",
    "resolve_scheme",
    "scheme_loss_rate",
    "scheme_mttdl_hours",
    "scheme_mttdl_eq12",
    # scenarios
    "Scenario",
    "cheetah_no_scrub_scenario",
    "cheetah_scrubbed_scenario",
    "cheetah_correlated_scenario",
    "cheetah_negligent_scenario",
    "paper_scenarios",
    # strategies
    "Strategy",
    "StrategyOutcome",
    "evaluate_strategy",
    "evaluate_all_strategies",
    "alpha_lower_bound",
    "alpha_range_orders_of_magnitude",
    # sensitivity
    "parameter_sensitivities",
    "elasticity",
    "most_sensitive_parameter",
    # tradeoffs
    "AuditTradeoff",
    "audit_rate_tradeoff",
    "optimal_audit_rate",
    # migration
    "FormatRisk",
    "CAMERA_RAW",
    "OPEN_DOCUMENT_FORMAT",
    "LEGACY_DATABASE_DUMP",
    "obsolescence_fault_model",
    "probability_uninterpretable",
    "review_rate_for_target",
]
