"""Limit-case approximations of the mirrored MTTDL (paper Eqs. 9-11).

The paper specialises Eq. 8 in three operating regimes:

* **Visible-dominated** (Eq. 9): visible faults are much more frequent
  than latent ones and both windows are short.  The model collapses to
  the original RAID MTTDL, ``α MV² / MRV``.
* **Latent-dominated** (Eq. 10): latent faults are much more frequent
  than visible ones.  ``α ML² / (MRL + MDL)`` — the detection time
  directly divides the reliability, which is the paper's argument for
  scrubbing.
* **Long window** (Eq. 11): visible faults dominate in frequency but the
  window after a latent fault is long (detection and/or repair is slow),
  so nearly every latent fault leads to a double fault.
  ``α MV² / (MRV + MV²/ML)``.

These closed forms are what the paper's Section 5.4 worked examples use,
so reproducing the paper's numbers exactly requires these functions
rather than the full Eq. 7 evaluation (which is slightly more
conservative; the comparison is part of experiment E11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.parameters import FaultModel


class OperatingRegime(enum.Enum):
    """Which specialisation of the model applies to a parameter set."""

    VISIBLE_DOMINATED = "visible_dominated"
    LATENT_DOMINATED = "latent_dominated"
    LONG_LATENT_WINDOW = "long_latent_window"
    GENERAL = "general"


def visible_dominated_mttdl(model: FaultModel) -> float:
    """Paper Eq. 9: ``MTTDL ≈ α · MV² / MRV``.

    Valid when visible faults dominate (``MV ≪ ML``) and both windows of
    vulnerability are much shorter than ``MV``.  This is the classic RAID
    mirrored-pair MTTDL scaled by the correlation factor.
    """
    if model.mean_repair_visible <= 0:
        return float("inf")
    return (
        model.correlation_factor
        * model.mean_time_to_visible ** 2
        / model.mean_repair_visible
    )


def latent_dominated_mttdl(model: FaultModel) -> float:
    """Paper Eq. 10: ``MTTDL ≈ α · ML² / (MRL + MDL)``.

    Valid when latent faults dominate (``ML ≪ MV``).  The key implication
    the paper draws from this form is that the detection time ``MDL``
    divides the reliability directly: halving the scrub interval doubles
    the expected time to data loss.
    """
    window = model.latent_window
    if window <= 0:
        return float("inf")
    return model.correlation_factor * model.mean_time_to_latent ** 2 / window


def long_window_mttdl(model: FaultModel) -> float:
    """Paper Eq. 11: ``MTTDL ≈ α · MV² / (MRV + MV²/ML)``.

    Valid when visible faults dominate in frequency but the window of
    vulnerability after a latent fault is long enough that essentially
    every latent fault leads to a double fault
    (``P(V2 or L2 | L1) ≈ 1``).  The paper applies it when
    ``ML < MV²`` (in hours).
    """
    denominator = (
        model.mean_repair_visible
        + model.mean_time_to_visible ** 2 / model.mean_time_to_latent
    )
    if denominator <= 0:
        return float("inf")
    return model.correlation_factor * model.mean_time_to_visible ** 2 / denominator


@dataclass(frozen=True)
class RegimeClassification:
    """Result of classifying a model into an operating regime."""

    regime: OperatingRegime
    reason: str


def classify_regime(
    model: FaultModel, dominance_ratio: float = 5.0, long_window_fraction: float = 0.5
) -> RegimeClassification:
    """Decide which approximation best matches a parameter set.

    Args:
        model: the fault model parameters.
        dominance_ratio: how many times more frequent one fault type must
            be than the other before we call it dominant.
        long_window_fraction: the latent window is considered "long" when
            it exceeds this fraction of the combined mean time between
            faults (at that point the linearised probability of a second
            fault within the window is no longer small).

    Returns:
        A :class:`RegimeClassification` naming the regime and explaining
        the choice.
    """
    if dominance_ratio <= 1:
        raise ValueError("dominance_ratio must exceed 1")
    if not 0 < long_window_fraction <= 1:
        raise ValueError("long_window_fraction must be in (0, 1]")

    mv = model.mean_time_to_visible
    ml = model.mean_time_to_latent
    combined_mean_time = 1.0 / (1.0 / mv + 1.0 / ml)
    window_is_long = (
        model.latent_window >= long_window_fraction * combined_mean_time
    )

    if ml <= mv / dominance_ratio:
        return RegimeClassification(
            OperatingRegime.LATENT_DOMINATED,
            f"latent faults at least {dominance_ratio:g}x more frequent "
            "than visible faults",
        )
    if mv <= ml / dominance_ratio:
        if window_is_long:
            return RegimeClassification(
                OperatingRegime.LONG_LATENT_WINDOW,
                "visible faults dominate but the latent window of "
                "vulnerability is long",
            )
        return RegimeClassification(
            OperatingRegime.VISIBLE_DOMINATED,
            f"visible faults at least {dominance_ratio:g}x more frequent "
            "than latent faults and windows are short",
        )
    if window_is_long:
        return RegimeClassification(
            OperatingRegime.LONG_LATENT_WINDOW,
            "comparable fault rates with a long latent window",
        )
    return RegimeClassification(
        OperatingRegime.GENERAL,
        "no fault type dominates; use the full Eq. 7/8 evaluation",
    )


def best_approximation(model: FaultModel) -> float:
    """Evaluate the approximation matching the model's regime.

    Falls back to the latent-dominated form in the general regime only if
    latent faults are at least as frequent as visible ones, otherwise the
    visible-dominated form — mirroring how the paper picks which closed
    form to quote for each worked example.
    """
    classification = classify_regime(model)
    if classification.regime is OperatingRegime.VISIBLE_DOMINATED:
        return visible_dominated_mttdl(model)
    if classification.regime is OperatingRegime.LATENT_DOMINATED:
        return latent_dominated_mttdl(model)
    if classification.regime is OperatingRegime.LONG_LATENT_WINDOW:
        return long_window_mttdl(model)
    if model.mean_time_to_latent <= model.mean_time_to_visible:
        return latent_dominated_mttdl(model)
    return visible_dominated_mttdl(model)
