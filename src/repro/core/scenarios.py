"""Named parameter scenarios from the paper's worked examples (§5.4).

The paper grounds the model in a mirrored pair of Seagate Cheetah drives:

* ``MV`` = 1.4e6 hours (the Cheetah datasheet MTTF),
* 146 GB capacity and "300 MB/s" bandwidth, which the paper rounds to a
  visible repair time ``MRV`` of 20 minutes,
* ``ML`` = 2.8e5 hours — latent faults assumed five times as frequent as
  visible faults, following Schwarz et al.,
* ``MRL`` = ``MRV``.

Four scenarios are then evaluated:

=====================  ===========================================
no scrubbing            detection effectively never happens; the
                        window after a latent fault is unbounded
scrub three times/year  ``MDL`` = 1460 hours (half the scrub interval)
correlated              the scrubbed system with ``α`` = 0.1
negligent               latent faults rare (``ML`` = 1.4e7 h) but
                        never proactively detected, ``α`` = 0.1
=====================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.approximations import (
    latent_dominated_mttdl,
    long_window_mttdl,
)
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.units import HOURS_PER_YEAR, years_to_hours

#: Seagate Cheetah 15K.4 datasheet MTTF used throughout Section 5.4.
CHEETAH_MTTF_HOURS = 1.4e6

#: Mean time to a latent fault: five times as frequent as visible faults,
#: following Schwarz et al. (paper Section 5.4).
CHEETAH_LATENT_MTTF_HOURS = CHEETAH_MTTF_HOURS / 5.0

#: The paper's quoted visible repair time: 20 minutes.
CHEETAH_REPAIR_HOURS = 20.0 / 60.0

#: Scrubbing three times a year puts the mean detection delay at half the
#: scrub interval: 8760 / 3 / 2 = 1460 hours.
SCRUB_THREE_PER_YEAR_MDL_HOURS = HOURS_PER_YEAR / 3.0 / 2.0

#: Mission lifetime for the paper's loss-probability figures.
PAPER_MISSION_YEARS = 50.0


@dataclass(frozen=True)
class Scenario:
    """A named model instantiation plus the value the paper reports.

    Attributes:
        name: short identifier.
        description: what the scenario represents.
        model: the :class:`FaultModel` parameters.
        paper_mttdl_years: the MTTDL the paper quotes, if any.
        paper_loss_probability_50yr: the 50-year loss probability the
            paper quotes, if any.
        paper_equation: which equation the paper used to obtain its
            number ("eq7", "eq10", "eq11", ...).
    """

    name: str
    description: str
    model: FaultModel
    paper_mttdl_years: Optional[float] = None
    paper_loss_probability_50yr: Optional[float] = None
    paper_equation: str = "eq7"

    def mttdl_hours(self) -> float:
        """MTTDL from the full model evaluation (capped Eq. 7)."""
        return mirrored_mttdl(self.model)

    def mttdl_years(self) -> float:
        """MTTDL from the full model evaluation, in years."""
        return self.mttdl_hours() / HOURS_PER_YEAR

    def paper_method_mttdl_hours(self) -> float:
        """MTTDL evaluated the way the paper evaluated this scenario.

        The paper uses Eq. 7 with the ``P ≈ 1`` substitution for the
        unscrubbed example, Eq. 10 for the scrubbed and correlated
        examples, and Eq. 11 for the negligent example.
        """
        if self.paper_equation == "eq10":
            return latent_dominated_mttdl(self.model)
        if self.paper_equation == "eq11":
            return long_window_mttdl(self.model)
        return mirrored_mttdl(self.model)

    def paper_method_mttdl_years(self) -> float:
        return self.paper_method_mttdl_hours() / HOURS_PER_YEAR

    def loss_probability(self, mission_years: float = PAPER_MISSION_YEARS) -> float:
        """Probability of data loss over a mission, full model."""
        return probability_of_loss(
            self.mttdl_hours(), years_to_hours(mission_years)
        )

    def paper_method_loss_probability(
        self, mission_years: float = PAPER_MISSION_YEARS
    ) -> float:
        """Probability of data loss over a mission, paper's method."""
        return probability_of_loss(
            self.paper_method_mttdl_hours(), years_to_hours(mission_years)
        )


def _cheetah_model(
    mean_detect_latent: float,
    correlation_factor: float = 1.0,
    mean_time_to_latent: float = CHEETAH_LATENT_MTTF_HOURS,
) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=CHEETAH_MTTF_HOURS,
        mean_time_to_latent=mean_time_to_latent,
        mean_repair_visible=CHEETAH_REPAIR_HOURS,
        mean_repair_latent=CHEETAH_REPAIR_HOURS,
        mean_detect_latent=mean_detect_latent,
        correlation_factor=correlation_factor,
    )


def cheetah_no_scrub_scenario() -> Scenario:
    """Section 5.4 worked example 1: mirrored Cheetahs, no scrubbing.

    Without scrubbing the detection delay is effectively unbounded; we
    set ``MDL`` equal to ``ML`` which is already long enough that nearly
    every latent fault turns into a double fault — the paper's
    ``P(V2 or L2 | L1) ≈ 1`` substitution.  Paper result: MTTDL 32.0
    years, 79.0% probability of loss in 50 years.
    """
    return Scenario(
        name="cheetah_no_scrub",
        description="Mirrored Cheetah pair, latent faults never audited",
        model=_cheetah_model(mean_detect_latent=CHEETAH_LATENT_MTTF_HOURS),
        paper_mttdl_years=32.0,
        paper_loss_probability_50yr=0.790,
        paper_equation="eq7",
    )


def cheetah_scrubbed_scenario() -> Scenario:
    """Section 5.4 worked example 2: scrub three times a year.

    ``MDL`` = 1460 hours.  Paper result (via Eq. 10): MTTDL 6128.7 years,
    0.8% probability of loss in 50 years.
    """
    return Scenario(
        name="cheetah_scrubbed",
        description="Mirrored Cheetah pair scrubbed three times a year",
        model=_cheetah_model(mean_detect_latent=SCRUB_THREE_PER_YEAR_MDL_HOURS),
        paper_mttdl_years=6128.7,
        paper_loss_probability_50yr=0.008,
        paper_equation="eq10",
    )


def cheetah_correlated_scenario() -> Scenario:
    """Section 5.4 worked example 3: scrubbed system with ``α`` = 0.1.

    Paper result (via Eq. 10): MTTDL 612.9 years, 7.8% probability of
    loss in 50 years.
    """
    return Scenario(
        name="cheetah_correlated",
        description="Scrubbed mirrored Cheetah pair with correlation 0.1",
        model=_cheetah_model(
            mean_detect_latent=SCRUB_THREE_PER_YEAR_MDL_HOURS,
            correlation_factor=0.1,
        ),
        paper_mttdl_years=612.9,
        paper_loss_probability_50yr=0.078,
        paper_equation="eq10",
    )


def cheetah_negligent_scenario() -> Scenario:
    """Section 5.4 worked example 4: rare latent faults, never detected.

    ``ML`` = 1.4e7 hours, ``α`` = 0.1, no proactive detection.  Paper
    result (via Eq. 11): MTTDL 159.8 years, 26.8% probability of loss in
    50 years.
    """
    return Scenario(
        name="cheetah_negligent",
        description=(
            "Mirrored Cheetah pair with rare latent faults that are never "
            "proactively detected, correlation 0.1"
        ),
        model=_cheetah_model(
            mean_detect_latent=1.4e7,
            correlation_factor=0.1,
            mean_time_to_latent=1.4e7,
        ),
        paper_mttdl_years=159.8,
        paper_loss_probability_50yr=0.268,
        paper_equation="eq11",
    )


def paper_scenarios() -> Dict[str, Scenario]:
    """All four Section 5.4 worked examples keyed by scenario name."""
    scenarios = [
        cheetah_no_scrub_scenario(),
        cheetah_scrubbed_scenario(),
        cheetah_correlated_scenario(),
        cheetah_negligent_scenario(),
    ]
    return {scenario.name: scenario for scenario in scenarios}
