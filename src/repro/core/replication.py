"""MTTDL for r-way replication (paper Eq. 12, Section 5.5).

To reason about replication degrees beyond mirroring, the paper assumes
detection is fast (``MDL`` negligible), latent and visible faults have
similar rates and repair times, and the windows of vulnerability of
successive faults overlap exactly.  Data is lost when ``r - 1``
successive faults all land within the window opened by the first fault.
Each successive fault does so with probability ``MRV / (α MV)``, giving

.. math::

    \\mathrm{MTTDL}(r) = MV \\cdot
        \\left(\\frac{\\alpha MV}{MRV}\\right)^{r-1}
      = \\frac{\\alpha^{r-1} MV^r}{MRV^{r-1}}

The key observation the paper draws from this: replication increases
MTTDL geometrically, but strong correlation (small ``α``) decreases it
geometrically too, so adding replicas without adding independence buys
little.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme, scheme_mttdl_eq12


def replicated_mttdl(
    mean_time_to_fault: float,
    mean_repair_time: float,
    replicas: int,
    correlation_factor: float = 1.0,
) -> float:
    """Paper Eq. 12: MTTDL of ``replicas``-way replicated data, in hours.

    Args:
        mean_time_to_fault: per-replica mean time to any fault (hours).
        mean_repair_time: per-fault mean repair time (hours).
        replicas: replication degree ``r`` (>= 1).
        correlation_factor: ``α`` in (0, 1].

    Returns:
        MTTDL in hours.  For a single replica the data is lost as soon as
        the first fault occurs, so the MTTDL is just the mean time to
        fault.

    Raises:
        ValueError: for non-positive parameters or ``replicas < 1``.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    # Probability of each successive fault landing inside the window is
    # MRV / (α MV); the generalised form caps it at 1 so that when every
    # fault cascades the MTTDL degenerates to the single-copy mean time
    # to fault.  Replication is the (n=r, k=1) scheme.
    return scheme_mttdl_eq12(
        mean_time_to_fault,
        mean_repair_time,
        RedundancyScheme(n=replicas, k=1),
        correlation_factor,
    )


def replicated_mttdl_from_model(model: FaultModel, replicas: int) -> float:
    """Eq. 12 driven by a :class:`FaultModel`.

    Follows the paper's Section 5.5 simplification: the combined fault
    process (visible plus latent) with the visible repair time and the
    model's correlation factor.
    """
    combined_mean_time = 1.0 / model.total_fault_rate
    return replicated_mttdl(
        mean_time_to_fault=combined_mean_time,
        mean_repair_time=model.mean_repair_visible,
        replicas=replicas,
        correlation_factor=model.correlation_factor,
    )


def replication_gain(
    mean_time_to_fault: float,
    mean_repair_time: float,
    replicas: int,
    correlation_factor: float = 1.0,
) -> float:
    """How much adding one more replica multiplies the MTTDL.

    Under Eq. 12 the gain per added replica is ``α MV / MRV`` regardless
    of the starting degree, which is the quantity that correlation
    erodes.
    """
    with_extra = replicated_mttdl(
        mean_time_to_fault, mean_repair_time, replicas + 1, correlation_factor
    )
    base = replicated_mttdl(
        mean_time_to_fault, mean_repair_time, replicas, correlation_factor
    )
    if base == 0:
        return float("inf")
    return with_extra / base


def replicas_needed_for_target(
    mean_time_to_fault: float,
    mean_repair_time: float,
    target_mttdl: float,
    correlation_factor: float = 1.0,
    max_replicas: int = 64,
) -> int:
    """Smallest replication degree whose Eq. 12 MTTDL meets a target.

    Raises:
        ValueError: if the target cannot be met within ``max_replicas``
            (which happens when correlation is so strong that each added
            replica contributes no reliability).
    """
    if target_mttdl <= 0:
        raise ValueError("target_mttdl must be positive")
    for replicas in range(1, max_replicas + 1):
        mttdl = replicated_mttdl(
            mean_time_to_fault, mean_repair_time, replicas, correlation_factor
        )
        if mttdl >= target_mttdl:
            return replicas
    raise ValueError(
        f"target MTTDL {target_mttdl:g} h not reachable with up to "
        f"{max_replicas} replicas at correlation {correlation_factor:g}"
    )


def fragments_needed_for_target(
    n_max: int,
    k: int,
    mean_time_to_fault: float,
    mean_repair_time: float,
    target_mttdl: float,
    correlation_factor: float = 1.0,
) -> int:
    """Smallest fragment count ``n`` whose (n, k) MTTDL meets a target.

    The erasure-coded analogue of :func:`replicas_needed_for_target`:
    holding the reconstruction threshold ``k`` fixed, find the smallest
    ``n`` (searching ``k .. n_max``) whose generalised Eq. 12 MTTDL
    (:func:`repro.core.redundancy.scheme_mttdl_eq12`) reaches
    ``target_mttdl``.  For ``k = 1`` the answer coincides with
    :func:`replicas_needed_for_target` because the generalised formula
    reduces to Eq. 12 exactly.

    Raises:
        ValueError: for an unreachable target within ``n_max`` fragments,
            or ``n_max < k``.
    """
    if target_mttdl <= 0:
        raise ValueError("target_mttdl must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")
    if n_max < k:
        raise ValueError("n_max must be at least k")
    for n in range(k, n_max + 1):
        mttdl = scheme_mttdl_eq12(
            mean_time_to_fault,
            mean_repair_time,
            RedundancyScheme(n=n, k=k),
            correlation_factor,
        )
        if mttdl >= target_mttdl:
            return n
    raise ValueError(
        f"target MTTDL {target_mttdl:g} h not reachable with up to "
        f"{n_max} fragments at k={k}, correlation {correlation_factor:g}"
    )


def replication_sweep(
    mean_time_to_fault: float,
    mean_repair_time: float,
    max_replicas: int,
    correlation_factor: float = 1.0,
) -> List[float]:
    """MTTDL for every replication degree from 1 to ``max_replicas``."""
    if max_replicas < 1:
        raise ValueError("max_replicas must be at least 1")
    return [
        replicated_mttdl(
            mean_time_to_fault, mean_repair_time, r, correlation_factor
        )
        for r in range(1, max_replicas + 1)
    ]


def effective_replicas(
    replicas: int, correlation_factor: float, mean_time_to_fault: float,
    mean_repair_time: float,
) -> float:
    """Replication degree of an *independent* system with the same MTTDL.

    Answers the paper's Section 5.5 question quantitatively: with
    correlation ``α``, how many truly independent replicas is an r-way
    correlated system actually worth?  Computed by equating Eq. 12 with
    ``α = 1`` to the correlated MTTDL and solving for ``r``.
    """
    correlated = replicated_mttdl(
        mean_time_to_fault, mean_repair_time, replicas, correlation_factor
    )
    if mean_repair_time == 0:
        return float(replicas)
    ratio = mean_time_to_fault / mean_repair_time
    if ratio <= 1:
        return 1.0
    return 1.0 + math.log(correlated / mean_time_to_fault) / math.log(ratio)
