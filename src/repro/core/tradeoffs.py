"""The auditing trade-off (paper Section 6.6).

Auditing reduces the latent-fault detection time ``MDL``, but the extra
media activity it causes can itself increase the fault rates (more head
wear, more power, more handling for off-line media) and costs money.
This module models that trade-off: given how strongly audit activity
degrades the fault mean times, there is an audit rate beyond which more
scrubbing hurts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class AuditTradeoff:
    """MTTDL and cost at one audit rate.

    Attributes:
        audits_per_year: how many full audits of the replica per year.
        mean_detect_latent: the resulting ``MDL`` (hours).
        mttdl_hours: resulting mean time to data loss (hours).
        annual_cost: audit cost per year in arbitrary currency units.
        effective_model: the model after accounting for audit-induced
            wear on the fault mean times.
    """

    audits_per_year: float
    mean_detect_latent: float
    mttdl_hours: float
    annual_cost: float
    effective_model: FaultModel

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR


def mdl_for_audit_rate(audits_per_year: float) -> float:
    """Mean detection delay for a periodic audit rate.

    With perfect detection and uniformly-arriving latent faults the mean
    delay is half the audit interval (paper Section 6.2).  An audit rate
    of zero means detection effectively never happens; we represent that
    with infinity and let callers substitute a finite horizon.
    """
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    if audits_per_year == 0:
        return float("inf")
    return HOURS_PER_YEAR / audits_per_year / 2.0


def audit_rate_tradeoff(
    model: FaultModel,
    audits_per_year: float,
    wear_per_audit: float = 0.0,
    cost_per_audit: float = 1.0,
    no_audit_detection_horizon: Optional[float] = None,
) -> AuditTradeoff:
    """Evaluate the system at one audit rate.

    Args:
        model: baseline fault model (its ``MDL`` is replaced).
        audits_per_year: full audits per replica per year.
        wear_per_audit: fractional reduction of both fault mean times per
            audit per year.  For example 0.01 means each yearly audit
            shaves 1% off ``MV`` and ``ML``; the reduction compounds
            multiplicatively with the audit rate.
        cost_per_audit: cost of one full audit.
        no_audit_detection_horizon: the ``MDL`` to use when
            ``audits_per_year`` is zero.  Defaults to the model's mean
            time to a latent fault (detection not faster than the faults
            accumulate).

    Raises:
        ValueError: if ``wear_per_audit`` is not in [0, 1).
    """
    if not 0 <= wear_per_audit < 1:
        raise ValueError("wear_per_audit must be in [0, 1)")
    if cost_per_audit < 0:
        raise ValueError("cost_per_audit must be non-negative")
    mdl = mdl_for_audit_rate(audits_per_year)
    if mdl == float("inf"):
        mdl = (
            no_audit_detection_horizon
            if no_audit_detection_horizon is not None
            else model.mean_time_to_latent
        )
    wear_factor = (1.0 - wear_per_audit) ** audits_per_year
    effective = replace(
        model,
        mean_detect_latent=mdl,
        mean_time_to_visible=model.mean_time_to_visible * wear_factor,
        mean_time_to_latent=model.mean_time_to_latent * wear_factor,
    )
    return AuditTradeoff(
        audits_per_year=audits_per_year,
        mean_detect_latent=mdl,
        mttdl_hours=mirrored_mttdl(effective),
        annual_cost=audits_per_year * cost_per_audit,
        effective_model=effective,
    )


def audit_rate_sweep(
    model: FaultModel,
    audit_rates: Sequence[float],
    wear_per_audit: float = 0.0,
    cost_per_audit: float = 1.0,
) -> List[AuditTradeoff]:
    """Evaluate the trade-off at each audit rate in ``audit_rates``."""
    return [
        audit_rate_tradeoff(model, rate, wear_per_audit, cost_per_audit)
        for rate in audit_rates
    ]


def optimal_audit_rate(
    model: FaultModel,
    audit_rates: Sequence[float],
    wear_per_audit: float = 0.0,
    cost_per_audit: float = 1.0,
) -> AuditTradeoff:
    """The audit rate (from the candidates) that maximises MTTDL.

    Without audit-induced wear the answer is always the highest rate; a
    positive ``wear_per_audit`` produces an interior optimum, which is
    the paper's Section 6.6 point that a balance must be struck.

    Raises:
        ValueError: if ``audit_rates`` is empty.
    """
    if not audit_rates:
        raise ValueError("audit_rates must not be empty")
    results = audit_rate_sweep(model, audit_rates, wear_per_audit, cost_per_audit)
    return max(results, key=lambda result: result.mttdl_hours)
