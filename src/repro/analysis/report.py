"""Experiment report assembly.

Each benchmark produces an :class:`ExperimentRecord` — the experiment id,
what the paper reports, what we measured, and whether the qualitative
shape holds.  :class:`ExperimentReport` collects the records and renders
the per-experiment summary recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.scenarios import Scenario, paper_scenarios


@dataclass(frozen=True)
class ExperimentRecord:
    """One reproduced quantity.

    Attributes:
        experiment_id: identifier from DESIGN.md (e.g. ``"E2"``).
        description: what is being reproduced.
        paper_value: the number the paper reports (None if the paper only
            reports a shape).
        measured_value: the value this repository produces.
        unit: unit of both values.
        shape_holds: whether the qualitative conclusion holds (who wins,
            direction of the effect, order of magnitude).
        notes: any caveat (e.g. known bookkeeping difference).
    """

    experiment_id: str
    description: str
    paper_value: Optional[float]
    measured_value: float
    unit: str
    shape_holds: bool
    notes: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        """Relative error vs the paper's value, when one exists."""
        if self.paper_value is None or self.paper_value == 0:
            return None
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)


@dataclass
class ExperimentReport:
    """A collection of experiment records, renderable as a table."""

    records: List[ExperimentRecord] = field(default_factory=list)

    def add(self, record: ExperimentRecord) -> None:
        self.records.append(record)

    def by_experiment(self) -> Dict[str, List[ExperimentRecord]]:
        grouped: Dict[str, List[ExperimentRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.experiment_id, []).append(record)
        return grouped

    def all_shapes_hold(self) -> bool:
        """True when every record preserves the paper's qualitative shape."""
        return all(record.shape_holds for record in self.records)

    def render(self, precision: int = 3) -> str:
        """Render the report as a fixed-width table."""
        headers = [
            "experiment",
            "description",
            "paper",
            "measured",
            "unit",
            "rel err",
            "shape holds",
        ]
        rows = []
        for record in self.records:
            relative = record.relative_error
            rows.append(
                [
                    record.experiment_id,
                    record.description,
                    record.paper_value if record.paper_value is not None else "-",
                    record.measured_value,
                    record.unit,
                    relative if relative is not None else "-",
                    record.shape_holds,
                ]
            )
        return format_table(headers, rows, precision=precision)


def scenario_experiment_report(
    scenarios: Optional[Dict[str, Scenario]] = None
) -> ExperimentReport:
    """Build the E1-E4 report from the Section 5.4 worked examples."""
    chosen = scenarios if scenarios is not None else paper_scenarios()
    experiment_ids = {
        "cheetah_no_scrub": "E1",
        "cheetah_scrubbed": "E2",
        "cheetah_correlated": "E3",
        "cheetah_negligent": "E4",
    }
    report = ExperimentReport()
    for name, scenario in chosen.items():
        measured = scenario.paper_method_mttdl_years()
        paper_value = scenario.paper_mttdl_years
        shape = True
        if paper_value is not None and paper_value > 0:
            shape = 0.5 <= measured / paper_value <= 2.0
        report.add(
            ExperimentRecord(
                experiment_id=experiment_ids.get(name, "E1"),
                description=f"MTTDL, {scenario.description}",
                paper_value=paper_value,
                measured_value=measured,
                unit="years",
                shape_holds=shape,
                notes=f"evaluated via {scenario.paper_equation}",
            )
        )
        measured_p = scenario.paper_method_loss_probability()
        paper_p = scenario.paper_loss_probability_50yr
        shape_p = True
        if paper_p is not None and paper_p > 0:
            shape_p = 0.5 <= measured_p / paper_p <= 2.0
        report.add(
            ExperimentRecord(
                experiment_id=experiment_ids.get(name, "E1"),
                description=f"P(loss in 50 yr), {scenario.description}",
                paper_value=paper_p,
                measured_value=measured_p,
                unit="probability",
                shape_holds=shape_p,
            )
        )
    return report
