"""Dependency-free ASCII charts for terminal-friendly figure output.

The paper's figures are regenerated as data series by the benchmarks;
these helpers render those series as ASCII line charts, bar charts, and
histograms so a figure-shaped result can be inspected straight from the
benchmark output without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high == low:
        return 0
    fraction = (value - low) / (high - low)
    return min(int(fraction * cells), cells - 1)


def ascii_line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
    log_y: bool = False,
) -> str:
    """Plot a single series as an ASCII scatter/line chart.

    Args:
        xs: x values (need not be evenly spaced).
        ys: y values, same length as ``xs``.
        width: chart width in characters.
        height: chart height in rows.
        title: optional title line.
        log_y: plot the y axis on a log10 scale (values must be > 0).

    Raises:
        ValueError: for mismatched/empty series or non-positive values
            with ``log_y``.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        raise ValueError("series must not be empty")
    if width < 10 or height < 3:
        raise ValueError("chart must be at least 10x3")
    values = list(ys)
    if log_y:
        if any(value <= 0 for value in values):
            raise ValueError("log_y requires strictly positive y values")
        values = [math.log10(value) for value in values]

    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(values), max(values)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y in zip(xs, values):
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = "*"

    y_label_high = f"{(10 ** y_high if log_y else y_high):.3g}"
    y_label_low = f"{(10 ** y_low if log_y else y_low):.3g}"
    label_width = max(len(y_label_high), len(y_label_low))
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = y_label_high.rjust(label_width)
        elif index == height - 1:
            label = y_label_low.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_axis = f"{x_low:.3g}".ljust(width // 2) + f"{x_high:.3g}".rjust(width - width // 2)
    lines.append(f"{' ' * label_width}  {x_axis}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart with one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("series must not be empty")
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(int(value / peak * width), 1 if value > 0 else 0)
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)


def ascii_histogram(
    samples: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Histogram of a sample set as a horizontal bar chart."""
    if not samples:
        raise ValueError("samples must not be empty")
    if bins < 1:
        raise ValueError("bins must be at least 1")
    low, high = min(samples), max(samples)
    if low == high:
        return ascii_bar_chart([f"{low:.3g}"], [float(len(samples))], width, title)
    counts = [0] * bins
    span = high - low
    for sample in samples:
        index = min(int((sample - low) / span * bins), bins - 1)
        counts[index] += 1
    labels = []
    for index in range(bins):
        left = low + span * index / bins
        right = low + span * (index + 1) / bins
        labels.append(f"[{left:.3g}, {right:.3g})")
    return ascii_bar_chart(labels, [float(count) for count in counts], width, title)


def series_to_dict(xs: Sequence[float], ys: Sequence[float]) -> Dict[float, float]:
    """Zip two aligned series into a dictionary (convenience for tests)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    return {float(x): float(y) for x, y in zip(xs, ys)}
