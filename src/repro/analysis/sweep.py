"""Parameter sweeps over the analytic model and the simulator.

Every figure-shaped experiment in EXPERIMENTS.md is a sweep: MTTDL as a
function of audit rate (E8), replication degree (E6), correlation factor
(E5/E6), or any single model parameter.  :class:`SweepResult` holds the
swept values and the metric series so the benchmark harness and the
ASCII plots can consume the same object.

Alongside the closed-form sweeps, :func:`simulated_parameter_sweep` and
:func:`simulated_audit_sweep` run the same grids through the Monte-Carlo
estimators, defaulting to the vectorized ``batch`` backend so sweeping
thousands of scenario points stays cheap; each simulated series carries
its standard error next to the analytic prediction.  Both are now thin
shims over the unified facade (:func:`repro.study.run` with a
``question="sweep"`` scenario) — same loops, same seeds, bit-for-bit
identical series.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.replication import replicated_mttdl
from repro.core.sensitivity import PARAMETER_FIELDS
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.estimators import check_backend


@dataclass(frozen=True)
class SweepResult:
    """One swept series.

    Attributes:
        parameter: name of the swept quantity.
        values: the swept values, in order.
        metrics: mapping from metric name to the series of metric values
            aligned with ``values``.
    """

    parameter: str
    values: List[float]
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def metric(self, name: str) -> List[float]:
        """One metric series by name.

        Raises:
            KeyError: listing the available metrics when absent.
        """
        if name not in self.metrics:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def as_rows(self) -> List[List[float]]:
        """Rows of [value, metric1, metric2, ...] for table formatting."""
        names = sorted(self.metrics)
        return [
            [value] + [self.metrics[name][index] for name in names]
            for index, value in enumerate(self.values)
        ]

    def column_names(self) -> List[str]:
        return [self.parameter] + sorted(self.metrics)


def sweep_parameter(
    model: FaultModel,
    parameter: str,
    values: Sequence[float],
    metric: Callable[[FaultModel], float] = mirrored_mttdl,
    metric_name: str = "mttdl_hours",
) -> SweepResult:
    """Sweep one :class:`FaultModel` parameter and evaluate a metric.

    Args:
        model: the base operating point.
        parameter: ``MV``, ``ML``, ``MRV``, ``MRL``, ``MDL``, or
            ``alpha``.
        values: values to substitute for the parameter.
        metric: function of the modified model to record.
        metric_name: label for the metric series.
    """
    field_name = PARAMETER_FIELDS.get(parameter)
    if field_name is None:
        raise ValueError(
            f"unknown parameter {parameter!r}; expected one of "
            f"{sorted(PARAMETER_FIELDS)}"
        )
    series = []
    for value in values:
        modified = replace(model, **{field_name: value})
        series.append(metric(modified))
    return SweepResult(
        parameter=parameter, values=list(values), metrics={metric_name: series}
    )


def sweep_audit_rate(
    model: FaultModel,
    audits_per_year: Sequence[float],
    no_audit_mdl: Optional[float] = None,
) -> SweepResult:
    """MTTDL (hours and years) as a function of the audit rate.

    ``MDL`` is half the audit interval; a rate of zero uses
    ``no_audit_mdl`` (default: the latent mean time).
    """
    mttdl_hours: List[float] = []
    mttdl_years: List[float] = []
    mdl_values: List[float] = []
    for rate in audits_per_year:
        if rate < 0:
            raise ValueError("audit rates must be non-negative")
        if rate == 0:
            mdl = (
                no_audit_mdl if no_audit_mdl is not None else model.mean_time_to_latent
            )
        else:
            mdl = HOURS_PER_YEAR / rate / 2.0
        adjusted = model.with_detection_time(mdl)
        hours = mirrored_mttdl(adjusted)
        mttdl_hours.append(hours)
        mttdl_years.append(hours / HOURS_PER_YEAR)
        mdl_values.append(mdl)
    return SweepResult(
        parameter="audits_per_year",
        values=list(audits_per_year),
        metrics={
            "mttdl_hours": mttdl_hours,
            "mttdl_years": mttdl_years,
            "mdl_hours": mdl_values,
        },
    )


def sweep_replication(
    mean_time_to_fault: float,
    mean_repair_time: float,
    max_replicas: int,
    correlation_factors: Sequence[float] = (1.0,),
) -> Dict[float, SweepResult]:
    """Eq. 12 MTTDL vs replication degree for several correlation factors.

    Returns one :class:`SweepResult` per correlation factor, keyed by the
    factor — the data behind the paper's "replication without
    independence does not help much" conclusion.
    """
    if max_replicas < 1:
        raise ValueError("max_replicas must be at least 1")
    results: Dict[float, SweepResult] = {}
    degrees = list(range(1, max_replicas + 1))
    for alpha in correlation_factors:
        hours = [
            replicated_mttdl(mean_time_to_fault, mean_repair_time, r, alpha)
            for r in degrees
        ]
        results[alpha] = SweepResult(
            parameter="replicas",
            values=[float(r) for r in degrees],
            metrics={
                "mttdl_hours": hours,
                "mttdl_years": [h / HOURS_PER_YEAR for h in hours],
            },
        )
    return results


def sweep_correlation(
    model: FaultModel, alphas: Sequence[float]
) -> SweepResult:
    """MTTDL as a function of the correlation factor ``α``."""
    hours = [mirrored_mttdl(model.with_correlation(alpha)) for alpha in alphas]
    return SweepResult(
        parameter="alpha",
        values=list(alphas),
        metrics={
            "mttdl_hours": hours,
            "mttdl_years": [h / HOURS_PER_YEAR for h in hours],
        },
    )


def audit_adjusted_model(
    model: FaultModel, audits_per_year: Optional[float]
) -> FaultModel:
    """Fold an audit-rate override into the model for analytic evaluation.

    The simulators take ``audits_per_year`` as a separate knob; the
    closed forms only see ``MDL``.  Matching :func:`sweep_audit_rate`'s
    convention, the override sets ``MDL`` to half the audit interval
    (or to the latent mean time when auditing is disabled), so the
    attached analytic series describes the same scrubbing regime as the
    simulated one.
    """
    if audits_per_year is None:
        return model
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    if audits_per_year == 0:
        return model.with_detection_time(model.mean_time_to_latent)
    return model.with_detection_time(HOURS_PER_YEAR / audits_per_year / 2.0)


def simulated_parameter_sweep(
    model: FaultModel,
    parameter: str,
    values: Sequence[float],
    trials: int = 1000,
    seed: int = 0,
    backend: str = "batch",
    metric: str = "mttdl",
    replicas: int = 2,
    mission_years: float = 50.0,
    max_time: Optional[float] = None,
    audits_per_year: Optional[float] = None,
    target_relative_error: Optional[float] = None,
) -> SweepResult:
    """Simulation-backed counterpart of :func:`sweep_parameter`.

    Args:
        model: the base operating point.
        parameter: ``MV``, ``ML``, ``MRV``, ``MRL``, ``MDL``, or
            ``alpha``.
        values: values to substitute for the parameter.
        trials: Monte-Carlo trials per sweep point (per chunk when
            adaptive).
        seed: root seed, shared by every sweep point.  Points reuse the
            same underlying trial streams (common random numbers), which
            reduces the variance of *differences* along the sweep; each
            point's reported standard error is valid on its own.
            Deriving per-point seeds by arithmetic on ``seed`` would
            reintroduce the cross-seed stream aliasing the spawn-key
            scheme removes, so it is deliberately avoided.
        backend: ``"batch"`` (default, vectorized) or ``"event"``.
        metric: ``"mttdl"`` or ``"loss_probability"``.
        mission_years: mission length for the loss-probability metric.
        max_time: censoring horizon for the MTTDL metric.
        target_relative_error: enables adaptive sampling per point.

    Returns:
        A :class:`SweepResult` whose metrics hold the simulated series
        (``sim_<metric>``), its standard error (``sim_std_error``), and
        — for the MTTDL metric with mirrored pairs — the analytic
        ``mttdl_hours`` for comparison.
    """
    if PARAMETER_FIELDS.get(parameter) is None:
        raise ValueError(
            f"unknown parameter {parameter!r}; expected one of "
            f"{sorted(PARAMETER_FIELDS)}"
        )
    if metric not in ("mttdl", "loss_probability"):
        raise ValueError(
            f"unknown metric {metric!r}; expected 'mttdl' or 'loss_probability'"
        )
    check_backend(backend, None)
    from repro import study

    scenario = study.Scenario(
        question="sweep",
        system=study.SystemSpec(
            model=model, replicas=replicas, audits_per_year=audits_per_year
        ),
        sweep=study.SweepSpec(
            parameter=parameter, values=tuple(values), metric=metric
        ),
        mission_years=mission_years,
        max_time_hours=max_time,
        policy=study.EstimatorPolicy(
            engine=backend,
            trials=trials,
            seed=seed,
            target_relative_error=target_relative_error,
            cross_check=False,
        ),
    )
    return _sweep_from_details(study.run(scenario).details)


def simulated_audit_sweep(
    model: FaultModel,
    audits_per_year: Sequence[float],
    trials: int = 1000,
    seed: int = 0,
    backend: str = "batch",
    max_time: Optional[float] = None,
    target_relative_error: Optional[float] = None,
) -> SweepResult:
    """Simulated MTTDL as a function of the audit rate (E8's sweep).

    The analytic :func:`sweep_audit_rate` series (``mttdl_hours``) is
    attached for side-by-side comparison; the simulated series carries
    standard errors so the benchmark harness can check agreement.
    """
    check_backend(backend, None)
    from repro import study

    scenario = study.Scenario(
        question="sweep",
        system=study.SystemSpec(model=model),
        sweep=study.SweepSpec(
            parameter="audits_per_year",
            values=tuple(float(rate) for rate in audits_per_year),
        ),
        max_time_hours=max_time,
        policy=study.EstimatorPolicy(
            engine=backend,
            trials=trials,
            seed=seed,
            target_relative_error=target_relative_error,
            cross_check=False,
        ),
    )
    return _sweep_from_details(study.run(scenario).details)


def _sweep_from_details(details: Dict[str, object]) -> SweepResult:
    """Rebuild the legacy :class:`SweepResult` from a study's details."""
    return SweepResult(
        parameter=str(details["parameter"]),
        values=list(details["values"]),
        metrics={
            name: list(series)
            for name, series in details["metrics"].items()
        },
    )


def grid_sweep(
    model: FaultModel,
    parameter_a: str,
    values_a: Sequence[float],
    parameter_b: str,
    values_b: Sequence[float],
    metric: Callable[[FaultModel], float] = mirrored_mttdl,
) -> Dict[float, SweepResult]:
    """Two-parameter sweep: one :class:`SweepResult` per value of the
    first parameter, sweeping the second within it."""
    field_a = PARAMETER_FIELDS.get(parameter_a)
    if field_a is None:
        raise ValueError(f"unknown parameter {parameter_a!r}")
    results: Dict[float, SweepResult] = {}
    for value_a in values_a:
        base = replace(model, **{field_a: value_a})
        results[value_a] = sweep_parameter(
            base, parameter_b, values_b, metric=metric
        )
    return results
