"""Fixed-width table formatting for benchmark and example output.

The benchmark harness prints the same rows the paper reports; these
helpers keep that output aligned and consistent without pulling in any
formatting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: column names.
        rows: sequences of cells; each row must match the header length.
        precision: significant digits for floating-point cells.
        title: optional title line printed above the table.

    Raises:
        ValueError: if a row's length does not match the headers.
    """
    materialised: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but there are "
                f"{len(headers)} headers"
            )
        materialised.append([_format_cell(cell, precision) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_dict(
    mapping: Mapping[str, Cell], precision: int = 3, title: Optional[str] = None
) -> str:
    """Render a flat mapping as an aligned key/value listing."""
    if not mapping:
        return title or ""
    key_width = max(len(str(key)) for key in mapping)
    lines = [title] if title else []
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(key_width)}  {_format_cell(value, precision)}")
    return "\n".join(lines)


def format_scenario_table(scenarios: Dict[str, "object"], precision: int = 3) -> str:
    """Table of the paper's worked-example scenarios vs reproduced values.

    Accepts the mapping produced by
    :func:`repro.core.scenarios.paper_scenarios`.
    """
    headers = [
        "scenario",
        "paper MTTDL (yr)",
        "reproduced MTTDL (yr)",
        "paper P(loss,50yr)",
        "reproduced P(loss,50yr)",
    ]
    rows: List[List[Cell]] = []
    for name, scenario in scenarios.items():
        rows.append(
            [
                name,
                scenario.paper_mttdl_years
                if scenario.paper_mttdl_years is not None
                else "-",
                scenario.paper_method_mttdl_years(),
                scenario.paper_loss_probability_50yr
                if scenario.paper_loss_probability_50yr is not None
                else "-",
                scenario.paper_method_loss_probability(),
            ]
        )
    return format_table(headers, rows, precision=precision)


def format_sweep(sweep: "object", precision: int = 3, title: Optional[str] = None) -> str:
    """Render a :class:`repro.analysis.sweep.SweepResult` as a table."""
    headers = sweep.column_names()
    rows = sweep.as_rows()
    return format_table(headers, rows, precision=precision, title=title)
