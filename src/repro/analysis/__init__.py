"""Sweeps, comparisons, tables, ASCII plots, and experiment reports.

This subpackage is the glue between the models and the benchmark harness:
it runs parameter sweeps over the analytic model, compares analytic /
Markov / Monte-Carlo answers, formats results as fixed-width tables and
ASCII charts (no plotting dependency), and assembles the experiment
reports recorded in EXPERIMENTS.md.
"""

from repro.analysis.sweep import (
    SweepResult,
    sweep_parameter,
    sweep_audit_rate,
    sweep_replication,
    sweep_correlation,
    grid_sweep,
    simulated_parameter_sweep,
    simulated_audit_sweep,
)
from repro.analysis.compare import (
    ModelComparison,
    compare_models,
    compare_scenarios,
    approximation_error,
)
from repro.analysis.tables import (
    format_table,
    format_scenario_table,
    format_dict,
)
from repro.analysis.plotting import (
    ascii_line_chart,
    ascii_bar_chart,
    ascii_histogram,
)
from repro.analysis.report import (
    ExperimentRecord,
    ExperimentReport,
    scenario_experiment_report,
)

__all__ = [
    "SweepResult",
    "sweep_parameter",
    "sweep_audit_rate",
    "sweep_replication",
    "sweep_correlation",
    "grid_sweep",
    "simulated_parameter_sweep",
    "simulated_audit_sweep",
    "ModelComparison",
    "compare_models",
    "compare_scenarios",
    "approximation_error",
    "format_table",
    "format_scenario_table",
    "format_dict",
    "ascii_line_chart",
    "ascii_bar_chart",
    "ascii_histogram",
    "ExperimentRecord",
    "ExperimentReport",
    "scenario_experiment_report",
]
