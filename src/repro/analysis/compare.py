"""Cross-validation of the analytic model, the CTMC, and the simulator.

Experiment E11's machinery: for a parameter set, compute the MTTDL with
the paper's closed forms, with the exact Markov chain, and (optionally)
with Monte-Carlo simulation, then report how far apart they are and why
(the known bookkeeping conventions are documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.approximations import best_approximation
from repro.core.mttdl import mirrored_mttdl, mirrored_mttdl_exact
from repro.core.parameters import FaultModel
from repro.core.scenarios import Scenario
from repro.core.units import HOURS_PER_YEAR
from repro.markov.builders import mirrored_mttdl_markov
from repro.simulation.monte_carlo import MonteCarloEstimate, estimate_mttdl


@dataclass(frozen=True)
class ModelComparison:
    """MTTDL (hours) for one parameter set under each evaluation method.

    Attributes:
        analytic_capped: the paper's Eq. 7 with linearised, capped window
            probabilities (the library default).
        analytic_exact_windows: Eq. 7 with exponential window
            probabilities.
        closed_form_approximation: whichever of Eqs. 9-11 matches the
            operating regime.
        markov: exact CTMC with both copies able to initiate (physical
            convention).
        markov_paper_convention: exact CTMC with the paper's single-
            initiator first-fault rate.
        monte_carlo: simulation estimate, when requested.
    """

    analytic_capped: float
    analytic_exact_windows: float
    closed_form_approximation: float
    markov: float
    markov_paper_convention: float
    monte_carlo: Optional[MonteCarloEstimate] = None

    def as_dict(self) -> Dict[str, float]:
        result = {
            "analytic_capped": self.analytic_capped,
            "analytic_exact_windows": self.analytic_exact_windows,
            "closed_form_approximation": self.closed_form_approximation,
            "markov": self.markov,
            "markov_paper_convention": self.markov_paper_convention,
        }
        if self.monte_carlo is not None:
            result["monte_carlo"] = self.monte_carlo.mean
        return result

    def in_years(self) -> Dict[str, float]:
        return {
            key: value / HOURS_PER_YEAR for key, value in self.as_dict().items()
        }

    def max_discrepancy_factor(self) -> float:
        """Largest ratio between any two of the deterministic answers."""
        values = [
            self.analytic_capped,
            self.analytic_exact_windows,
            self.closed_form_approximation,
            self.markov,
            self.markov_paper_convention,
        ]
        positive = [value for value in values if value > 0 and value != float("inf")]
        if not positive:
            return float("inf")
        return max(positive) / min(positive)


def compare_models(
    model: FaultModel,
    include_monte_carlo: bool = False,
    trials: int = 100,
    seed: int = 0,
    max_time: Optional[float] = None,
) -> ModelComparison:
    """Evaluate one parameter set with every available method."""
    monte_carlo = None
    if include_monte_carlo:
        monte_carlo = estimate_mttdl(
            model, trials=trials, seed=seed, max_time=max_time
        )
    return ModelComparison(
        analytic_capped=mirrored_mttdl(model),
        analytic_exact_windows=mirrored_mttdl_exact(model),
        closed_form_approximation=best_approximation(model),
        markov=mirrored_mttdl_markov(model, double_first_fault_rate=True),
        markov_paper_convention=mirrored_mttdl_markov(
            model, double_first_fault_rate=False
        ),
        monte_carlo=monte_carlo,
    )


def compare_scenarios(
    scenarios: Dict[str, Scenario], include_monte_carlo: bool = False
) -> Dict[str, ModelComparison]:
    """Run :func:`compare_models` over a set of named scenarios."""
    return {
        name: compare_models(scenario.model, include_monte_carlo=include_monte_carlo)
        for name, scenario in scenarios.items()
    }


def approximation_error(model: FaultModel) -> float:
    """Relative error of the regime-matched closed form vs the full Eq. 7.

    Positive values mean the approximation is optimistic (reports a
    longer MTTDL than the full evaluation), which is the direction the
    paper's scrubbed worked example errs in.
    """
    full = mirrored_mttdl(model)
    approx = best_approximation(model)
    if full == 0:
        return float("inf")
    return (approx - full) / full


def paper_agreement(scenario: Scenario, tolerance: float = 0.02) -> Dict[str, object]:
    """Check a scenario against the value the paper reports.

    Returns the relative error of the paper-method evaluation against the
    quoted number and whether it falls within ``tolerance``.
    """
    if scenario.paper_mttdl_years is None:
        raise ValueError(f"scenario {scenario.name!r} has no paper value to check")
    ours = scenario.paper_method_mttdl_years()
    paper = scenario.paper_mttdl_years
    relative_error = abs(ours - paper) / paper
    return {
        "scenario": scenario.name,
        "paper_mttdl_years": paper,
        "reproduced_mttdl_years": ours,
        "relative_error": relative_error,
        "within_tolerance": relative_error <= tolerance,
    }
