"""From threat correlation reach to the model's correlation factor.

Section 4.2 of the paper lists the threat classes that produce
*correlated* faults (disasters, unified administration, shared
components, shared keys, worms, organisational failure).  Each
:class:`ThreatProfile` carries a ``correlation_reach`` — the expected
fraction of replicas a single occurrence touches.  This module combines
those reaches, weighted by how often each threat strikes, into a single
"correlation pressure" and the implied multiplicative factor ``α`` for
the analytic model, and ranks which threats contribute most (so the
mitigation budget goes where the model says it matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.threats.taxonomy import ThreatProfile


@dataclass(frozen=True)
class CorrelationPressure:
    """Aggregate correlation exposure of a threat mix.

    Attributes:
        weighted_reach: rate-weighted mean correlation reach in [0, 1].
        implied_alpha: the correlation factor the mix implies for the
            analytic model (1 = independent).
        per_threat: (threat, contribution) pairs, largest first, where
            contribution is the threat's share of the weighted reach.
    """

    weighted_reach: float
    implied_alpha: float
    per_threat: Tuple[Tuple[ThreatProfile, float], ...]


def implied_alpha_from_reach(weighted_reach: float, alpha_floor: float = 1e-3) -> float:
    """Map a weighted correlation reach onto ``α``.

    Zero reach (every fault touches exactly one replica) maps to ``α`` =
    1; full reach maps to ``alpha_floor``.  The exponential mapping
    mirrors :func:`repro.storage.site.effective_alpha` so the two
    independence views (threat-driven and placement-driven) are
    comparable.
    """
    if not 0 <= weighted_reach <= 1:
        raise ValueError("weighted_reach must be in [0, 1]")
    if not 0 < alpha_floor <= 1:
        raise ValueError("alpha_floor must be in (0, 1]")
    return float(alpha_floor ** weighted_reach)


def correlation_pressure(
    profiles: Iterable[ThreatProfile], alpha_floor: float = 1e-3
) -> CorrelationPressure:
    """Aggregate the correlation exposure of a set of threats.

    Each threat's reach is weighted by its occurrence rate, so a frequent
    low-reach threat (media faults) and a rare total-reach threat (format
    obsolescence) both register.

    Raises:
        ValueError: if no profiles are provided.
    """
    chosen: List[ThreatProfile] = list(profiles)
    if not chosen:
        raise ValueError("at least one threat profile is required")
    rates = [1.0 / profile.mean_time_to_occurrence for profile in chosen]
    total_rate = sum(rates)
    contributions = [
        rate / total_rate * profile.correlation_reach
        for rate, profile in zip(rates, chosen)
    ]
    weighted_reach = sum(contributions)
    ranked = tuple(
        sorted(
            zip(chosen, contributions), key=lambda pair: pair[1], reverse=True
        )
    )
    return CorrelationPressure(
        weighted_reach=weighted_reach,
        implied_alpha=implied_alpha_from_reach(weighted_reach, alpha_floor),
        per_threat=ranked,
    )


def dominant_correlation_sources(
    profiles: Iterable[ThreatProfile], top: int = 3
) -> List[ThreatProfile]:
    """The ``top`` threats contributing most correlation pressure."""
    if top < 1:
        raise ValueError("top must be at least 1")
    pressure = correlation_pressure(profiles)
    return [profile for profile, _ in pressure.per_threat[:top]]


def mitigation_effect(
    profiles: Sequence[ThreatProfile],
    mitigated: ThreatProfile,
    reach_reduction: float = 0.5,
    alpha_floor: float = 1e-3,
) -> Tuple[float, float]:
    """Effect on ``α`` of mitigating one threat's correlation reach.

    Returns ``(alpha_before, alpha_after)`` where the mitigation scales
    the chosen threat's reach by ``1 - reach_reduction``.

    Raises:
        ValueError: if the threat is not in the profile list.
    """
    if not 0 <= reach_reduction <= 1:
        raise ValueError("reach_reduction must be in [0, 1]")
    if mitigated not in profiles:
        raise ValueError("the mitigated threat must be one of the profiles")
    before = correlation_pressure(profiles, alpha_floor).implied_alpha
    adjusted = []
    for profile in profiles:
        if profile is mitigated:
            adjusted.append(
                ThreatProfile(
                    fault_class=profile.fault_class,
                    fault_type=profile.fault_type,
                    mean_time_to_occurrence=profile.mean_time_to_occurrence,
                    mean_detection_time=profile.mean_detection_time,
                    mean_repair_time=profile.mean_repair_time,
                    correlation_reach=profile.correlation_reach
                    * (1.0 - reach_reduction),
                    description=profile.description,
                    example=profile.example,
                    mitigations=profile.mitigations,
                )
            )
        else:
            adjusted.append(profile)
    after = correlation_pressure(adjusted, alpha_floor).implied_alpha
    return before, after
