"""The paper's threat taxonomy (Section 3) as structured generators.

Each of the eleven threat classes the paper enumerates — large-scale
disaster, human error, component faults, media faults, media/hardware
obsolescence, software/format obsolescence, loss of context, attack,
organisational faults, and economic faults — is represented with its
model-relevant attributes: how often it strikes, whether it manifests
visibly or latently, how many replicas it can hit at once, and what it
does to the model's parameters.  The taxonomy feeds both the simulator
(as shock generators) and the analytic model (as parameter adjustments).
"""

from repro.threats.taxonomy import (
    ThreatProfile,
    THREAT_REGISTRY,
    threat_profile,
    all_threat_profiles,
    combined_fault_model,
)
from repro.threats.events import (
    ThreatEvent,
    ThreatEventGenerator,
    sample_threat_timeline,
)
from repro.threats.correlation_sources import (
    correlation_pressure,
    dominant_correlation_sources,
)

__all__ = [
    "ThreatProfile",
    "THREAT_REGISTRY",
    "threat_profile",
    "all_threat_profiles",
    "combined_fault_model",
    "ThreatEvent",
    "ThreatEventGenerator",
    "sample_threat_timeline",
    "correlation_pressure",
    "dominant_correlation_sources",
]
