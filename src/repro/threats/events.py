"""Threat event timelines for scenario exploration.

Given a set of threat profiles and a horizon, generate a synthetic
timeline of threat occurrences — which threat, when, visible or latent,
and how many replicas it touched.  The timelines serve two purposes:

* they drive end-to-end examples (the "what will a 50-year archive
  actually experience?" narrative in ``examples/archive_threats.py``);
* they provide the synthetic stand-in for the incident logs the paper's
  Section 6.7 wants real systems to collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.faults import FaultClass, FaultType
from repro.core.units import HOURS_PER_YEAR
from repro.threats.taxonomy import ThreatProfile, all_threat_profiles


@dataclass(frozen=True)
class ThreatEvent:
    """One synthetic threat occurrence.

    Attributes:
        time: occurrence time in hours from the start of the timeline.
        fault_class: which threat struck.
        fault_type: how it manifests.
        replicas_affected: how many replicas it touched.
        detected_at: when it was (or will be) detected, in hours.
    """

    time: float
    fault_class: FaultClass
    fault_type: FaultType
    replicas_affected: int
    detected_at: float

    @property
    def detection_delay(self) -> float:
        return self.detected_at - self.time

    @property
    def is_latent(self) -> bool:
        return self.fault_type is FaultType.LATENT


class ThreatEventGenerator:
    """Poisson generator of threat events from a set of profiles."""

    def __init__(
        self,
        profiles: Optional[Iterable[ThreatProfile]] = None,
        replicas: int = 3,
        seed: int = 0,
    ) -> None:
        self._profiles: List[ThreatProfile] = (
            list(profiles) if profiles is not None else all_threat_profiles()
        )
        if not self._profiles:
            raise ValueError("at least one threat profile is required")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = replicas
        self._rng = np.random.default_rng(seed)

    @property
    def profiles(self) -> List[ThreatProfile]:
        return list(self._profiles)

    def _events_for_profile(
        self, profile: ThreatProfile, horizon_hours: float
    ) -> List[ThreatEvent]:
        events: List[ThreatEvent] = []
        time = 0.0
        while True:
            time += float(self._rng.exponential(profile.mean_time_to_occurrence))
            if time > horizon_hours:
                break
            affected = 1
            if profile.correlation_reach > 0 and self._replicas > 1:
                extra = self._rng.binomial(
                    self._replicas - 1, profile.correlation_reach
                )
                affected += int(extra)
            detection_delay = (
                float(self._rng.exponential(profile.mean_detection_time))
                if profile.mean_detection_time > 0
                else 0.0
            )
            events.append(
                ThreatEvent(
                    time=time,
                    fault_class=profile.fault_class,
                    fault_type=profile.fault_type,
                    replicas_affected=affected,
                    detected_at=time + detection_delay,
                )
            )
        return events

    def timeline(self, horizon_years: float) -> List[ThreatEvent]:
        """All threat events over a horizon, sorted by occurrence time."""
        if horizon_years <= 0:
            raise ValueError("horizon_years must be positive")
        horizon_hours = horizon_years * HOURS_PER_YEAR
        events: List[ThreatEvent] = []
        for profile in self._profiles:
            events.extend(self._events_for_profile(profile, horizon_hours))
        return sorted(events, key=lambda event: event.time)


def sample_threat_timeline(
    horizon_years: float = 50.0,
    replicas: int = 3,
    seed: int = 0,
    profiles: Optional[Sequence[ThreatProfile]] = None,
) -> List[ThreatEvent]:
    """Convenience wrapper: one timeline with the default registry."""
    generator = ThreatEventGenerator(profiles=profiles, replicas=replicas, seed=seed)
    return generator.timeline(horizon_years)


def summarize_timeline(events: Sequence[ThreatEvent]) -> dict:
    """Aggregate counts useful for reports and examples.

    Returns a dictionary with per-class counts, the latent fraction, the
    mean detection delay of latent events, and the count of events that
    touched more than one replica (the correlated ones).
    """
    if not events:
        return {
            "total": 0,
            "by_class": {},
            "latent_fraction": 0.0,
            "mean_latent_detection_delay": 0.0,
            "multi_replica_events": 0,
        }
    by_class: dict = {}
    latent_delays: List[float] = []
    multi = 0
    for event in events:
        by_class[event.fault_class] = by_class.get(event.fault_class, 0) + 1
        if event.is_latent:
            latent_delays.append(event.detection_delay)
        if event.replicas_affected > 1:
            multi += 1
    return {
        "total": len(events),
        "by_class": by_class,
        "latent_fraction": len(latent_delays) / len(events),
        "mean_latent_detection_delay": (
            float(np.mean(latent_delays)) if latent_delays else 0.0
        ),
        "multi_replica_events": multi,
    }
