"""Structured registry of the Section 3 threat classes.

Each :class:`ThreatProfile` records, for one threat class, the attributes
that matter to the reliability model: typical frequency, whether its
faults are visible or latent, how long detection typically takes, how
many replicas a single occurrence can affect (its correlation reach), and
a qualitative mitigation note taken from the paper.  The default rates
are synthetic but order-of-magnitude plausible; they are inputs users are
expected to override with their own measurements — gathering exactly this
data is what the paper's Section 6.7 calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.faults import DEFAULT_TYPE_FOR_CLASS, FaultClass, FaultType
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class ThreatProfile:
    """Model-relevant description of one threat class.

    Attributes:
        fault_class: which Section 3 threat this is.
        fault_type: whether it manifests visibly or latently by default.
        mean_time_to_occurrence: hours between occurrences affecting a
            given replica.
        mean_detection_time: hours from occurrence to detection (zero for
            visible threats).
        mean_repair_time: hours to recover once detected, assuming a good
            replica exists.
        correlation_reach: expected fraction of replicas affected by a
            single occurrence (0 = strictly one replica, 1 = all of
            them); drives the effective correlation factor.
        description: one-line summary.
        example: a real incident the paper cites.
        mitigations: the countermeasures Section 6 proposes.
    """

    fault_class: FaultClass
    fault_type: FaultType
    mean_time_to_occurrence: float
    mean_detection_time: float
    mean_repair_time: float
    correlation_reach: float
    description: str
    example: str
    mitigations: str

    def __post_init__(self) -> None:
        if self.mean_time_to_occurrence <= 0:
            raise ValueError("mean_time_to_occurrence must be positive")
        if self.mean_detection_time < 0 or self.mean_repair_time < 0:
            raise ValueError("times must be non-negative")
        if not 0 <= self.correlation_reach <= 1:
            raise ValueError("correlation_reach must be in [0, 1]")

    @property
    def rate_per_year(self) -> float:
        return HOURS_PER_YEAR / self.mean_time_to_occurrence

    @property
    def is_latent(self) -> bool:
        return self.fault_type is FaultType.LATENT


def _years(value: float) -> float:
    return value * HOURS_PER_YEAR


#: Synthetic but order-of-magnitude-plausible default profiles.  Rates
#: are per replica.  Override with measured data where available.
THREAT_REGISTRY: Dict[FaultClass, ThreatProfile] = {
    FaultClass.LARGE_SCALE_DISASTER: ThreatProfile(
        fault_class=FaultClass.LARGE_SCALE_DISASTER,
        fault_type=FaultType.VISIBLE,
        mean_time_to_occurrence=_years(100.0),
        mean_detection_time=0.0,
        mean_repair_time=24.0 * 30,
        correlation_reach=0.8,
        description="Flood, fire, earthquake, act of war destroying a site",
        example="The 9/11 data-center loss and the inaccessible failover site",
        mitigations="Geographic replica separation with truly distant sites",
    ),
    FaultClass.HUMAN_ERROR: ThreatProfile(
        fault_class=FaultClass.HUMAN_ERROR,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=_years(2.0),
        mean_detection_time=_years(0.5),
        mean_repair_time=24.0,
        correlation_reach=0.5,
        description="Accidental deletion/overwrite by operators or users",
        example="Repositories quietly losing data across replicas to admin error",
        mitigations="Administrative independence; no single admin touches all replicas",
    ),
    FaultClass.COMPONENT_FAULT: ThreatProfile(
        fault_class=FaultClass.COMPONENT_FAULT,
        fault_type=FaultType.VISIBLE,
        mean_time_to_occurrence=_years(1.0),
        mean_detection_time=0.0,
        mean_repair_time=8.0,
        correlation_reach=0.2,
        description="Hardware, firmware, network, or third-party service failure",
        example="Power surge destroying a controller card; vanished license server",
        mitigations="Hardware/software diversity; avoid shared third-party dependencies",
    ),
    FaultClass.MEDIA_FAULT: ThreatProfile(
        fault_class=FaultClass.MEDIA_FAULT,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=2.8e5,
        mean_detection_time=1460.0,
        mean_repair_time=1.0 / 3.0,
        correlation_reach=0.1,
        description="Bit rot, unreadable sectors, misdirected writes",
        example="CD-ROMs sold as good for decades failing within two to five years",
        mitigations="Frequent scrubbing against replicas or checksums",
    ),
    FaultClass.MEDIA_OBSOLESCENCE: ThreatProfile(
        fault_class=FaultClass.MEDIA_OBSOLESCENCE,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=_years(10.0),
        mean_detection_time=_years(2.0),
        mean_repair_time=24.0 * 7,
        correlation_reach=0.9,
        description="Media readers no longer obtainable",
        example="9-track tape, 12-inch laser discs, vanishing floppy drives",
        mitigations="Proactive migration to current media before readers disappear",
    ),
    FaultClass.SOFTWARE_OBSOLESCENCE: ThreatProfile(
        fault_class=FaultClass.SOFTWARE_OBSOLESCENCE,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=_years(8.0),
        mean_detection_time=_years(2.0),
        mean_repair_time=24.0 * 14,
        correlation_reach=1.0,
        description="Formats that can no longer be interpreted",
        example="Proprietary camera RAW formats abandoned by their vendors",
        mitigations="Format migration cycles; prefer open, documented formats",
    ),
    FaultClass.LOSS_OF_CONTEXT: ThreatProfile(
        fault_class=FaultClass.LOSS_OF_CONTEXT,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=_years(15.0),
        mean_detection_time=_years(3.0),
        mean_repair_time=24.0 * 30,
        correlation_reach=1.0,
        description="Lost metadata, provenance, or decryption keys",
        example="Encrypted archives whose keys leak or are lost",
        mitigations="Preserve context with the data; re-encrypt before keys age out",
    ),
    FaultClass.ATTACK: ThreatProfile(
        fault_class=FaultClass.ATTACK,
        fault_type=FaultType.LATENT,
        mean_time_to_occurrence=_years(5.0),
        mean_detection_time=_years(1.0),
        mean_repair_time=24.0 * 3,
        correlation_reach=0.7,
        description="Censorship, modification, theft, insider abuse",
        example="Government website 'sanitisation'; flash worms hitting all replicas",
        mitigations="Software diversity, audit protocols hardened like any protocol",
    ),
    FaultClass.ORGANIZATIONAL_FAULT: ThreatProfile(
        fault_class=FaultClass.ORGANIZATIONAL_FAULT,
        fault_type=FaultType.VISIBLE,
        mean_time_to_occurrence=_years(20.0),
        mean_detection_time=0.0,
        mean_repair_time=24.0 * 90,
        correlation_reach=1.0,
        description="Host organisation dies, changes mission, or loses interest",
        example="Research-lab closure leaving undocumented tapes; Ofoto account purge",
        mitigations="Exit strategies; replicas held by independent organisations",
    ),
    FaultClass.ECONOMIC_FAULT: ThreatProfile(
        fault_class=FaultClass.ECONOMIC_FAULT,
        fault_type=FaultType.VISIBLE,
        mean_time_to_occurrence=_years(10.0),
        mean_detection_time=0.0,
        mean_repair_time=24.0 * 180,
        correlation_reach=1.0,
        description="Budget interruptions stopping maintenance and migration",
        example="Libraries cutting serials; collections put online with no upkeep plan",
        mitigations="Low-cost designs; plan for budgets that vary down to zero",
    ),
}


def threat_profile(fault_class: FaultClass) -> ThreatProfile:
    """Look up the default profile for one threat class."""
    return THREAT_REGISTRY[fault_class]


def all_threat_profiles() -> List[ThreatProfile]:
    """All default threat profiles in registry order."""
    return list(THREAT_REGISTRY.values())


def combined_fault_model(
    profiles: Optional[Iterable[ThreatProfile]] = None,
    correlation_factor: Optional[float] = None,
) -> FaultModel:
    """Aggregate threat profiles into a single :class:`FaultModel`.

    Visible and latent rates add across threats; the detection and repair
    times of each type are rate-weighted averages.  The correlation
    factor defaults to the value implied by the threats' correlation
    reach (see :func:`repro.threats.correlation_sources.correlation_pressure`).
    """
    chosen = list(profiles) if profiles is not None else all_threat_profiles()
    if not chosen:
        raise ValueError("at least one threat profile is required")

    visible = [p for p in chosen if p.fault_type is FaultType.VISIBLE]
    latent = [p for p in chosen if p.fault_type is FaultType.LATENT]
    if not visible or not latent:
        raise ValueError(
            "profiles must include at least one visible and one latent threat"
        )

    def combined(group: List[ThreatProfile]) -> Dict[str, float]:
        total_rate = sum(1.0 / p.mean_time_to_occurrence for p in group)
        weights = [
            (1.0 / p.mean_time_to_occurrence) / total_rate for p in group
        ]
        return {
            "mean_time": 1.0 / total_rate,
            "detection": sum(w * p.mean_detection_time for w, p in zip(weights, group)),
            "repair": sum(w * p.mean_repair_time for w, p in zip(weights, group)),
        }

    visible_stats = combined(visible)
    latent_stats = combined(latent)
    if correlation_factor is None:
        from repro.threats.correlation_sources import correlation_pressure

        correlation_factor = correlation_pressure(chosen).implied_alpha
    return FaultModel(
        mean_time_to_visible=visible_stats["mean_time"],
        mean_time_to_latent=latent_stats["mean_time"],
        mean_repair_visible=visible_stats["repair"],
        mean_repair_latent=latent_stats["repair"],
        mean_detect_latent=latent_stats["detection"],
        correlation_factor=correlation_factor,
    )


def default_type_for(fault_class: FaultClass) -> FaultType:
    """The default visible/latent classification of a threat class."""
    return DEFAULT_TYPE_FOR_CLASS[fault_class]
