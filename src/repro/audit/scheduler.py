"""Audit planning across a fleet of replicas (paper Section 6.7).

The paper's data-gathering section poses a concrete planning question:
given two geographically independent replica systems, is it better for
each to audit its storage internally, or to audit between the two
replicas?  This module provides a small planner that answers that kind
of question with the model: it spreads an audit budget over replicas,
computes the achieved detection latency, and compares internal
(checksum-based) auditing against cross-replica comparison, which has a
higher per-pass cost (network transfer) but also detects faults that
local checksums cannot (e.g. consistent-but-wrong data from a buggy
ingest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.audit.policies import AuditKind, AuditSchedule, detection_latency


@dataclass(frozen=True)
class AuditPlan:
    """An allocation of audit passes across replicas.

    Attributes:
        audits_per_replica_year: audit passes per replica per year.
        mdl_hours: achieved mean detection latency.
        mttdl_years: resulting mirrored MTTDL in years.
        annual_cost: total audit spend per year across replicas.
        coverage: per-pass detection coverage assumed.
    """

    audits_per_replica_year: float
    mdl_hours: float
    mttdl_years: float
    annual_cost: float
    coverage: float


def plan_audits(
    model: FaultModel,
    replicas: int,
    annual_budget: float,
    cost_per_audit: float,
    coverage: float = 1.0,
) -> AuditPlan:
    """Spend an audit budget evenly across replicas and report the result.

    Raises:
        ValueError: for non-positive budget inputs or replica count.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if annual_budget < 0:
        raise ValueError("annual_budget must be non-negative")
    if cost_per_audit <= 0:
        raise ValueError("cost_per_audit must be positive")
    total_audits = annual_budget / cost_per_audit
    per_replica = total_audits / replicas
    if per_replica == 0:
        mdl = model.mean_time_to_latent
    else:
        schedule = AuditSchedule(
            kind=AuditKind.PERIODIC, audits_per_year=per_replica, coverage=coverage
        )
        mdl = detection_latency(schedule)
    adjusted = model.with_detection_time(mdl)
    return AuditPlan(
        audits_per_replica_year=per_replica,
        mdl_hours=mdl,
        mttdl_years=mirrored_mttdl(adjusted) / HOURS_PER_YEAR,
        annual_cost=per_replica * cost_per_audit * replicas,
        coverage=coverage,
    )


def internal_vs_cross_replica_audit(
    model: FaultModel,
    annual_budget: float,
    internal_cost_per_audit: float,
    cross_cost_per_audit: float,
    internal_coverage: float = 0.9,
    cross_coverage: float = 1.0,
    replicas: int = 2,
) -> Dict[str, AuditPlan]:
    """Compare spending the audit budget on internal vs cross-replica audits.

    Internal audits (local checksum scrubs) are cheaper per pass but have
    lower coverage: they cannot detect data that was checksummed after it
    was already wrong, or coordinated corruption of data and checksum.
    Cross-replica audits compare the replicas directly, so their coverage
    is higher, but each pass costs more (wide-area transfer or hashing
    protocols).

    Returns:
        ``{"internal": plan, "cross_replica": plan}``.
    """
    internal = plan_audits(
        model,
        replicas=replicas,
        annual_budget=annual_budget,
        cost_per_audit=internal_cost_per_audit,
        coverage=internal_coverage,
    )
    cross = plan_audits(
        model,
        replicas=replicas,
        annual_budget=annual_budget,
        cost_per_audit=cross_cost_per_audit,
        coverage=cross_coverage,
    )
    return {"internal": internal, "cross_replica": cross}


def budget_sweep(
    model: FaultModel,
    budgets: List[float],
    cost_per_audit: float,
    replicas: int = 2,
    coverage: float = 1.0,
) -> List[AuditPlan]:
    """Audit plans for a range of annual budgets (diminishing returns)."""
    return [
        plan_audits(model, replicas, budget, cost_per_audit, coverage)
        for budget in budgets
    ]
