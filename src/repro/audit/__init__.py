"""Audit / scrubbing strategy analysis (paper Sections 6.2-6.3).

Where :mod:`repro.simulation.scrubbing` provides audit policies for the
event-driven simulator, this subpackage answers the policy-level
questions analytically: what detection latency does a given audit
schedule achieve, what does auditing cost for on-line vs off-line media,
how much bandwidth does auditing consume, and where should the audit
budget go.
"""

from repro.audit.policies import (
    AuditSchedule,
    periodic_schedule,
    poisson_schedule,
    on_access_schedule,
    detection_latency,
    audits_needed_for_mdl,
)
from repro.audit.online_offline import (
    AuditCostComparison,
    compare_online_offline,
    audit_bandwidth_fraction,
    audit_induced_fault_rate,
)
from repro.audit.scheduler import (
    AuditPlan,
    plan_audits,
    internal_vs_cross_replica_audit,
)

__all__ = [
    "AuditSchedule",
    "periodic_schedule",
    "poisson_schedule",
    "on_access_schedule",
    "detection_latency",
    "audits_needed_for_mdl",
    "AuditCostComparison",
    "compare_online_offline",
    "audit_bandwidth_fraction",
    "audit_induced_fault_rate",
    "AuditPlan",
    "plan_audits",
    "internal_vs_cross_replica_audit",
]
