"""On-line vs off-line audit economics (paper Sections 6.2-6.3).

On-line (disk) replicas can be audited frequently, automatically, and
with negligible handling risk; off-line (tape, optical) replicas pay a
retrieval/mount/return cost for every audit pass and each pass carries a
handling-fault risk.  These functions quantify that comparison: achieved
detection latency per dollar, audit bandwidth consumed, and the
audit-induced fault rate that caps how often off-line media can safely be
audited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.mttdl import mirrored_mttdl
from repro.core.units import HOURS_PER_YEAR
from repro.storage.media import MediaSpec, fault_model_for_media


@dataclass(frozen=True)
class AuditCostComparison:
    """Reliability-per-cost numbers for one media class at one audit rate.

    Attributes:
        media_name: which media class.
        audits_per_year: the audit rate evaluated.
        mdl_hours: achieved mean detection latency.
        mttdl_years: mirrored-pair MTTDL with that latency.
        annual_audit_cost: dollars per replica per year spent auditing.
        audit_induced_faults_per_year: expected handling faults per year
            caused by the auditing itself.
        staff_hours_per_year: hands-on staff hours per replica per year.
    """

    media_name: str
    audits_per_year: float
    mdl_hours: float
    mttdl_years: float
    annual_audit_cost: float
    audit_induced_faults_per_year: float
    staff_hours_per_year: float


def audit_induced_fault_rate(media: MediaSpec, audits_per_year: float) -> float:
    """Expected handling faults per replica per year from auditing."""
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    return audits_per_year * media.handling_fault_probability


def audit_bandwidth_fraction(
    capacity_gb: float, bandwidth_mb_s: float, audits_per_year: float
) -> float:
    """Fraction of a replica's total bandwidth consumed by auditing.

    Each audit reads the full capacity once; the fraction is audit read
    time over total wall-clock time.  Values near (or above) 1 mean the
    requested audit rate is physically impossible at that bandwidth —
    the practical ceiling Schwarz et al. balance against.
    """
    if capacity_gb <= 0 or bandwidth_mb_s <= 0:
        raise ValueError("capacity and bandwidth must be positive")
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    hours_per_audit = capacity_gb * 1e3 / bandwidth_mb_s / 3600.0
    return audits_per_year * hours_per_audit / HOURS_PER_YEAR


def evaluate_media_audit(
    media: MediaSpec,
    audits_per_year: float,
    correlation_factor: float = 1.0,
    wear_per_handling_fault: float = 0.0,
) -> AuditCostComparison:
    """Reliability and cost of auditing one media class at one rate.

    The audit-induced handling faults are folded into the model by
    shortening the visible-fault mean time proportionally (each handling
    fault per year adds ``1/8760`` per hour of visible-fault rate).
    """
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    model = fault_model_for_media(media, audits_per_year, correlation_factor)
    induced_per_year = audit_induced_fault_rate(media, audits_per_year)
    if induced_per_year > 0:
        induced_rate_per_hour = induced_per_year / HOURS_PER_YEAR
        combined_visible_rate = 1.0 / model.mean_time_to_visible + induced_rate_per_hour
        model = model.with_visible_mean_time(1.0 / combined_visible_rate)
    if wear_per_handling_fault > 0 and induced_per_year > 0:
        model = model.scaled(max(1.0 - wear_per_handling_fault * induced_per_year, 0.01))
    mttdl_years = mirrored_mttdl(model) / HOURS_PER_YEAR
    staff_hours = (
        0.0
        if media.is_online
        else audits_per_year * media.effective_audit_hours()
    )
    return AuditCostComparison(
        media_name=media.name,
        audits_per_year=audits_per_year,
        mdl_hours=model.mean_detect_latent,
        mttdl_years=mttdl_years,
        annual_audit_cost=media.annual_audit_cost(audits_per_year),
        audit_induced_faults_per_year=induced_per_year,
        staff_hours_per_year=staff_hours,
    )


def compare_online_offline(
    online: MediaSpec,
    offline: MediaSpec,
    online_audits_per_year: float,
    offline_audits_per_year: float,
    correlation_factor: float = 1.0,
) -> Dict[str, AuditCostComparison]:
    """The paper's disk-vs-tape question at chosen audit rates.

    Returns one :class:`AuditCostComparison` per media class, keyed
    ``"online"`` / ``"offline"``.  The typical configuration audits the
    on-line replica often (it is cheap) and the off-line replica rarely
    (each pass is expensive and risky), which is precisely why the
    on-line replica ends up orders of magnitude more reliable.
    """
    return {
        "online": evaluate_media_audit(
            online, online_audits_per_year, correlation_factor
        ),
        "offline": evaluate_media_audit(
            offline, offline_audits_per_year, correlation_factor
        ),
    }


def max_affordable_audit_rate(
    media: MediaSpec, annual_budget: float
) -> float:
    """Highest audit rate whose annual cost fits a budget."""
    if annual_budget < 0:
        raise ValueError("annual_budget must be non-negative")
    if media.audit_cost == 0:
        return float("inf")
    return annual_budget / media.audit_cost
