"""Analytic view of audit schedules and the detection latency they buy.

The paper's central scrubbing result (Section 6.2): with perfect
detection and randomly-arriving latent faults, the mean detection delay
``MDL`` of a periodic audit is half the audit interval, so auditing three
times a year gives ``MDL`` = 1460 hours and turns a 32-year MTTDL into a
six-thousand-year one.  These helpers convert between audit schedules,
detection latencies, and the audit rate needed to hit a target
reliability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


class AuditKind(enum.Enum):
    """How audit passes are spaced in time."""

    PERIODIC = "periodic"
    POISSON = "poisson"
    ON_ACCESS = "on_access"
    NONE = "none"


@dataclass(frozen=True)
class AuditSchedule:
    """An audit cadence plus its detection characteristics.

    Attributes:
        kind: how audits are spaced.
        audits_per_year: mean audit passes per replica per year (0 for
            no auditing).
        coverage: probability one pass detects an outstanding latent
            fault.
    """

    kind: AuditKind
    audits_per_year: float
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")
        if not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        if self.kind is AuditKind.NONE and self.audits_per_year != 0:
            raise ValueError("a NONE schedule must have zero audits per year")
        if self.kind is not AuditKind.NONE and self.audits_per_year == 0:
            raise ValueError("a non-NONE schedule needs a positive audit rate")

    @property
    def interval_hours(self) -> float:
        """Mean hours between audit passes (inf when never auditing)."""
        if self.audits_per_year == 0:
            return float("inf")
        return HOURS_PER_YEAR / self.audits_per_year

    def mean_detection_latency(self) -> float:
        """Expected occurrence-to-detection delay (``MDL``) in hours."""
        return detection_latency(self)


def periodic_schedule(audits_per_year: float, coverage: float = 1.0) -> AuditSchedule:
    """A strictly periodic audit schedule."""
    if audits_per_year <= 0:
        return AuditSchedule(kind=AuditKind.NONE, audits_per_year=0.0)
    return AuditSchedule(
        kind=AuditKind.PERIODIC, audits_per_year=audits_per_year, coverage=coverage
    )


def poisson_schedule(audits_per_year: float, coverage: float = 1.0) -> AuditSchedule:
    """Opportunistic audits arriving at random (Poisson) times."""
    if audits_per_year <= 0:
        return AuditSchedule(kind=AuditKind.NONE, audits_per_year=0.0)
    return AuditSchedule(
        kind=AuditKind.POISSON, audits_per_year=audits_per_year, coverage=coverage
    )


def on_access_schedule(accesses_per_year: float, coverage: float = 1.0) -> AuditSchedule:
    """Detection piggy-backed on user accesses only."""
    if accesses_per_year <= 0:
        return AuditSchedule(kind=AuditKind.NONE, audits_per_year=0.0)
    return AuditSchedule(
        kind=AuditKind.ON_ACCESS, audits_per_year=accesses_per_year, coverage=coverage
    )


def detection_latency(schedule: AuditSchedule) -> float:
    """Mean latent-fault detection latency of a schedule, in hours.

    Periodic audits give half an interval plus full intervals for missed
    detections; Poisson and on-access schedules are memoryless, so the
    delay to the next pass is a full mean interval, divided by coverage.
    """
    if schedule.kind is AuditKind.NONE or schedule.audits_per_year == 0:
        return float("inf")
    interval = schedule.interval_hours
    if schedule.kind is AuditKind.PERIODIC:
        return interval / 2.0 + (1.0 / schedule.coverage - 1.0) * interval
    return interval / schedule.coverage


def audits_needed_for_mdl(
    target_mdl_hours: float, kind: AuditKind = AuditKind.PERIODIC, coverage: float = 1.0
) -> float:
    """Audit passes per year needed to achieve a target ``MDL``.

    Inverts :func:`detection_latency` for the chosen schedule kind.

    Raises:
        ValueError: for a non-positive target or the NONE kind.
    """
    if target_mdl_hours <= 0:
        raise ValueError("target_mdl_hours must be positive")
    if not 0 < coverage <= 1:
        raise ValueError("coverage must be in (0, 1]")
    if kind is AuditKind.NONE:
        raise ValueError("cannot achieve a finite MDL without auditing")
    if kind is AuditKind.PERIODIC:
        interval = target_mdl_hours / (0.5 + (1.0 / coverage - 1.0))
    else:
        interval = target_mdl_hours * coverage
    return HOURS_PER_YEAR / interval


def audits_needed_for_target_mttdl(
    model: FaultModel,
    target_mttdl_years: float,
    kind: AuditKind = AuditKind.PERIODIC,
    coverage: float = 1.0,
    max_audits_per_year: float = 10000.0,
) -> Optional[float]:
    """Smallest audit rate achieving a target MTTDL, or None if
    unreachable even with ``max_audits_per_year``.

    Uses bisection on the audit rate: the mirrored MTTDL is monotone in
    the detection latency, which is monotone in the audit rate.
    """
    if target_mttdl_years <= 0:
        raise ValueError("target_mttdl_years must be positive")
    target_hours = target_mttdl_years * HOURS_PER_YEAR

    def mttdl_at(audits_per_year: float) -> float:
        if audits_per_year == 0:
            schedule = AuditSchedule(kind=AuditKind.NONE, audits_per_year=0.0)
        else:
            schedule = AuditSchedule(
                kind=kind, audits_per_year=audits_per_year, coverage=coverage
            )
        mdl = detection_latency(schedule)
        if mdl == float("inf"):
            mdl = model.mean_time_to_latent
        return mirrored_mttdl(model.with_detection_time(mdl))

    if mttdl_at(max_audits_per_year) < target_hours:
        return None
    if mttdl_at(0.0) >= target_hours:
        return 0.0
    low, high = 0.0, max_audits_per_year
    for _ in range(80):
        mid = (low + high) / 2.0
        if mttdl_at(mid) >= target_hours:
            high = mid
        else:
            low = mid
    return high
