"""Storage media classes: on-line disk, off-line tape, optical media.

Sections 6.2 and 6.3 of the paper argue that on-line replicas (disk)
dominate off-line replicas (tape, optical) for long-term preservation
because auditing and repairing off-line media is slow, expensive, and —
through the human handling involved — itself a source of correlated
faults.  This module captures each media class's audit and repair
characteristics so the disk-vs-tape question (experiment E8/E12) can be
asked of the model quantitatively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR


class MediaClass(enum.Enum):
    """Broad classes of storage media discussed in the paper."""

    ONLINE_DISK = "online_disk"
    OFFLINE_TAPE = "offline_tape"
    OPTICAL = "optical"


@dataclass(frozen=True)
class MediaSpec:
    """Reliability- and audit-relevant characteristics of a media class.

    Attributes:
        name: readable label.
        media_class: which broad class this is.
        mean_time_to_visible: per-replica ``MV`` in hours.
        mean_time_to_latent: per-replica ``ML`` in hours (bit rot, media
            degradation).
        access_latency_hours: time to get the medium ready for an audit
            or a repair (retrieval from a vault, mounting, spin-up).
        audit_hours: hands-on time to audit one replica once accessible.
        repair_hours: time to restore one replica from a good copy once
            accessible.
        audit_cost: dollars per audit pass of one replica (handling,
            staff, transport).
        handling_fault_probability: probability that one audit or repair
            pass damages the medium (the correlated-fault channel of
            off-line handling).
        storage_cost_per_tb_year: dollars to keep one terabyte for one
            year on this medium (media, space, power where applicable).
    """

    name: str
    media_class: MediaClass
    mean_time_to_visible: float
    mean_time_to_latent: float
    access_latency_hours: float
    audit_hours: float
    repair_hours: float
    audit_cost: float
    handling_fault_probability: float
    storage_cost_per_tb_year: float

    def __post_init__(self) -> None:
        if self.mean_time_to_visible <= 0 or self.mean_time_to_latent <= 0:
            raise ValueError("fault mean times must be positive")
        if self.access_latency_hours < 0 or self.audit_hours < 0:
            raise ValueError("latencies must be non-negative")
        if self.repair_hours <= 0:
            raise ValueError("repair_hours must be positive")
        if self.audit_cost < 0 or self.storage_cost_per_tb_year < 0:
            raise ValueError("costs must be non-negative")
        if not 0 <= self.handling_fault_probability <= 1:
            raise ValueError("handling_fault_probability must be in [0, 1]")

    @property
    def is_online(self) -> bool:
        return self.media_class is MediaClass.ONLINE_DISK

    def effective_audit_hours(self) -> float:
        """Wall-clock hours per audit pass, including access latency."""
        return self.access_latency_hours + self.audit_hours

    def effective_repair_hours(self) -> float:
        """Wall-clock hours per repair, including access latency."""
        return self.access_latency_hours + self.repair_hours

    def max_audits_per_year(self, staff_hours_per_year: float = 2000.0) -> float:
        """Upper bound on audit frequency given a staffing budget.

        On-line media audit without human involvement, so the bound is
        set by the audit duration alone; off-line media consume staff
        hours for every pass.
        """
        per_pass = self.effective_audit_hours()
        if per_pass <= 0:
            return float("inf")
        if self.is_online:
            return HOURS_PER_YEAR / per_pass
        return staff_hours_per_year / per_pass

    def annual_audit_cost(self, audits_per_year: float) -> float:
        """Dollar cost of auditing one replica at a given rate."""
        if audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")
        return audits_per_year * self.audit_cost


#: On-line disk replica: cheap frequent audits, fast automated repair,
#: negligible handling risk.  Fault mean times follow the Cheetah-derived
#: numbers of Section 5.4.
ONLINE_DISK = MediaSpec(
    name="on-line disk replica",
    media_class=MediaClass.ONLINE_DISK,
    mean_time_to_visible=1.4e6,
    mean_time_to_latent=2.8e5,
    access_latency_hours=0.0,
    audit_hours=1.0,
    repair_hours=1.0 / 3.0,
    audit_cost=0.5,
    handling_fault_probability=0.0,
    storage_cost_per_tb_year=150.0,
)

#: Off-line tape replica in secure storage: retrieval dominates both the
#: audit and the repair path, each handling pass carries a damage risk,
#: and media degrade (latent faults) faster than they fail visibly.
OFFLINE_TAPE = MediaSpec(
    name="off-line tape replica",
    media_class=MediaClass.OFFLINE_TAPE,
    mean_time_to_visible=2.0e6,
    mean_time_to_latent=1.5e5,
    access_latency_hours=72.0,
    audit_hours=8.0,
    repair_hours=12.0,
    audit_cost=120.0,
    handling_fault_probability=0.01,
    storage_cost_per_tb_year=40.0,
)

#: Consumer optical media (CD-ROM/DVD): the paper cites studies finding
#: media sold as lasting decades often degrading within two to five
#: years.
OPTICAL_CDROM = MediaSpec(
    name="optical (CD-ROM) replica",
    media_class=MediaClass.OPTICAL,
    mean_time_to_visible=5.0e5,
    mean_time_to_latent=3.0e4,
    access_latency_hours=1.0,
    audit_hours=2.0,
    repair_hours=4.0,
    audit_cost=10.0,
    handling_fault_probability=0.005,
    storage_cost_per_tb_year=25.0,
)


def media_catalog() -> Dict[str, MediaSpec]:
    """All built-in media specifications keyed by a short identifier."""
    return {
        "disk": ONLINE_DISK,
        "tape": OFFLINE_TAPE,
        "optical": OPTICAL_CDROM,
    }


def fault_model_for_media(
    media: MediaSpec,
    audits_per_year: float,
    correlation_factor: float = 1.0,
) -> FaultModel:
    """Translate a media spec and audit rate into model parameters.

    ``MDL`` is half the audit interval (or the latent mean time when the
    medium is never audited); the repair times include the medium's
    access latency, which is what makes off-line media score poorly.
    """
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    if audits_per_year == 0:
        mdl = media.mean_time_to_latent
    else:
        mdl = HOURS_PER_YEAR / audits_per_year / 2.0
    return FaultModel(
        mean_time_to_visible=media.mean_time_to_visible,
        mean_time_to_latent=media.mean_time_to_latent,
        mean_repair_visible=media.effective_repair_hours(),
        mean_repair_latent=media.effective_repair_hours(),
        mean_detect_latent=mdl,
        correlation_factor=correlation_factor,
    )
