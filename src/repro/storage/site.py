"""Replica placement and independence assessment (paper Section 6.5).

The paper's strategy list ends with "increase the independence of the
replicas": geographic, administrative, organisational, hardware,
software, and third-party-component diversity all raise the effective
correlation factor ``α`` toward 1.  This module represents a replica
placement as a set of sites with those attributes and scores how
independent the placement actually is, translating shared dimensions
into an effective ``α`` for use with the core model — the quantitative
version of the paper's qualitative checklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: The independence dimensions called out in Section 6.5, with weights
#: reflecting how strongly the paper (and the studies it cites) tie each
#: dimension to correlated faults.  Sharing a dimension contributes its
#: weight to the "correlation pressure" of a replica pair.
INDEPENDENCE_DIMENSIONS: Dict[str, float] = {
    "geography": 0.25,
    "administration": 0.25,
    "organization": 0.15,
    "hardware": 0.15,
    "software": 0.15,
    "third_party": 0.05,
}


@dataclass(frozen=True)
class Site:
    """One location hosting a replica.

    Attributes:
        name: site label.
        geography: region / metro identifier.
        administration: which operations team administers the replica.
        organization: which legal organisation owns it.
        hardware: hardware platform / vendor / batch identifier.
        software: software stack identifier.
        third_party: critical external dependency (license server, DNS,
            certificate authority) or "none".
    """

    name: str
    geography: str
    administration: str
    organization: str
    hardware: str
    software: str
    third_party: str = "none"


@dataclass
class ReplicaPlacement:
    """A set of sites each holding one replica of the collection."""

    sites: List[Site] = field(default_factory=list)

    def add_site(self, site: Site) -> None:
        self.sites.append(site)

    @property
    def replicas(self) -> int:
        return len(self.sites)

    def shared_dimensions(self, a: Site, b: Site) -> List[str]:
        """Independence dimensions that two sites fail to diversify."""
        shared = []
        for dimension in INDEPENDENCE_DIMENSIONS:
            if getattr(a, dimension) == getattr(b, dimension):
                # A shared "none" third-party dependency is not a shared
                # risk — it means neither site depends on a third party.
                if dimension == "third_party" and getattr(a, dimension) == "none":
                    continue
                shared.append(dimension)
        return shared


@dataclass(frozen=True)
class IndependenceAssessment:
    """Summary of how independent a placement's replicas are.

    Attributes:
        pairwise_scores: for each site pair, the fraction of the
            (weighted) independence dimensions they share — 0 is fully
            independent, 1 is fully shared fate.
        worst_pair: the pair with the highest shared-fate score.
        mean_shared_fraction: average of the pairwise scores.
        effective_alpha: the correlation factor implied for the core
            model (1 = fully independent).
    """

    pairwise_scores: Dict[Tuple[str, str], float]
    worst_pair: Tuple[str, str]
    mean_shared_fraction: float
    effective_alpha: float


def _pair_score(placement: ReplicaPlacement, a: Site, b: Site) -> float:
    shared = placement.shared_dimensions(a, b)
    return sum(INDEPENDENCE_DIMENSIONS[dimension] for dimension in shared)


def effective_alpha(
    mean_shared_fraction: float, alpha_floor: float = 1e-3
) -> float:
    """Map a shared-fate fraction onto the model's correlation factor.

    Fully independent replicas (shared fraction 0) get ``α`` = 1; fully
    shared-fate replicas approach ``alpha_floor``.  The mapping is
    exponential in the shared fraction, reflecting the paper's point that
    the plausible range of ``α`` spans orders of magnitude.
    """
    if not 0 <= mean_shared_fraction <= 1:
        raise ValueError("mean_shared_fraction must be in [0, 1]")
    if not 0 < alpha_floor <= 1:
        raise ValueError("alpha_floor must be in (0, 1]")
    return float(alpha_floor ** mean_shared_fraction)


def assess_independence(
    placement: ReplicaPlacement, alpha_floor: float = 1e-3
) -> IndependenceAssessment:
    """Score a placement's replica independence.

    Raises:
        ValueError: if the placement has fewer than two sites.
    """
    if placement.replicas < 2:
        raise ValueError("a placement needs at least two sites to assess")
    scores: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(placement.sites):
        for b in placement.sites[i + 1 :]:
            scores[(a.name, b.name)] = _pair_score(placement, a, b)
    worst_pair = max(scores, key=scores.get)
    mean_shared = sum(scores.values()) / len(scores)
    return IndependenceAssessment(
        pairwise_scores=scores,
        worst_pair=worst_pair,
        mean_shared_fraction=mean_shared,
        effective_alpha=effective_alpha(mean_shared, alpha_floor),
    )


def single_site_placement(replicas: int) -> ReplicaPlacement:
    """A placement with every replica in one machine room.

    The configuration the paper warns about: geographic, administrative,
    organisational, hardware, and software fate are all shared.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    placement = ReplicaPlacement()
    for index in range(replicas):
        placement.add_site(
            Site(
                name=f"rack-slot-{index}",
                geography="hq-machine-room",
                administration="central-it",
                organization="single-org",
                hardware="same-vendor-batch",
                software="same-stack",
                third_party="shared-license-server",
            )
        )
    return placement


def diversified_placement(replicas: int, regions: Sequence[str] = ()) -> ReplicaPlacement:
    """A placement following the paper's independence checklist.

    Each replica gets its own region, administrative domain, hardware
    batch and software stack — the British Library style design the
    paper holds up as unusual but effective.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    region_names = list(regions) if regions else [f"region-{i}" for i in range(replicas)]
    if len(region_names) < replicas:
        raise ValueError("need at least one region per replica")
    placement = ReplicaPlacement()
    for index in range(replicas):
        placement.add_site(
            Site(
                name=f"site-{index}",
                geography=region_names[index],
                administration=f"ops-team-{index}",
                organization=f"org-{index % max(replicas, 1)}",
                hardware=f"vendor-{index}",
                software=f"stack-{index}",
                third_party="none",
            )
        )
    return placement
