"""Storage device, media, array, site, and cost models.

Section 6.1 of the paper compares consumer (Seagate Barracuda) and
enterprise (Seagate Cheetah) drives on in-service fault probability,
irrecoverable bit errors over a mostly-idle service life, and cost per
byte.  Sections 6.2-6.5 compare on-line and off-line media, RAID and
plain mirroring, and multi-site replica placement.  This subpackage
encodes those device specifications and the arithmetic behind the
paper's comparisons.
"""

from repro.storage.drives import (
    DriveSpec,
    BARRACUDA_ST3200822A,
    CHEETAH_15K4,
    GENERIC_CONSUMER_DRIVE,
    GENERIC_ENTERPRISE_DRIVE,
    drive_catalog,
)
from repro.storage.bit_errors import (
    bits_transferred,
    expected_bit_errors,
    bit_error_comparison,
    DriveBitErrorResult,
)
from repro.storage.media import (
    MediaClass,
    MediaSpec,
    ONLINE_DISK,
    OFFLINE_TAPE,
    OPTICAL_CDROM,
    media_catalog,
    fault_model_for_media,
)
from repro.storage.raid import (
    RaidLevel,
    raid_mttdl,
    raid1_mttdl,
    raid5_mttdl,
    raid6_mttdl,
)
from repro.storage.costs import (
    CostModel,
    StorageCostBreakdown,
    replication_cost,
    scheme_storage_cost,
    cost_per_terabyte_year,
    compare_drive_costs,
)
from repro.storage.site import (
    Site,
    ReplicaPlacement,
    IndependenceAssessment,
    assess_independence,
    effective_alpha,
)
from repro.storage.archive import (
    ArchiveCollection,
    CollectionReliability,
    collection_reliability,
    audit_pass_hours,
    achievable_detection_latency,
    required_audit_bandwidth,
    access_based_detection_is_sufficient,
    audit_rate_for_loss_budget,
)

__all__ = [
    "DriveSpec",
    "BARRACUDA_ST3200822A",
    "CHEETAH_15K4",
    "GENERIC_CONSUMER_DRIVE",
    "GENERIC_ENTERPRISE_DRIVE",
    "drive_catalog",
    "bits_transferred",
    "expected_bit_errors",
    "bit_error_comparison",
    "DriveBitErrorResult",
    "MediaClass",
    "MediaSpec",
    "ONLINE_DISK",
    "OFFLINE_TAPE",
    "OPTICAL_CDROM",
    "media_catalog",
    "fault_model_for_media",
    "RaidLevel",
    "raid_mttdl",
    "raid1_mttdl",
    "raid5_mttdl",
    "raid6_mttdl",
    "CostModel",
    "StorageCostBreakdown",
    "replication_cost",
    "scheme_storage_cost",
    "cost_per_terabyte_year",
    "compare_drive_costs",
    "Site",
    "ReplicaPlacement",
    "IndependenceAssessment",
    "assess_independence",
    "effective_alpha",
    "ArchiveCollection",
    "CollectionReliability",
    "collection_reliability",
    "audit_pass_hours",
    "achievable_detection_latency",
    "required_audit_bandwidth",
    "access_based_detection_is_sufficient",
    "audit_rate_for_loss_budget",
]
