"""Collection-level archive model.

The paper's motivating workloads (web mail, photo sharing, web archives)
are collections of very many small objects, each accessed very rarely —
which is precisely why detection cannot be left to user accesses
(Section 6.2).  This module models a collection as a population of
objects spread over replicated storage and answers collection-level
questions the per-unit MTTDL does not directly address:

* the expected number of objects lost over a mission,
* the probability that the collection survives intact,
* how long a full audit pass takes at a given audit bandwidth, and the
  detection latency that audit throughput implies,
* whether relying on user accesses would audit the average object often
  enough (it does not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class ArchiveCollection:
    """A preserved collection of many independent objects.

    Attributes:
        object_count: number of preserved objects.
        mean_object_size_mb: mean object size in megabytes.
        accesses_per_object_year: mean user accesses per object per year
            (archival collections sit well below 1).
        replicas: number of full copies of the collection.
    """

    object_count: int
    mean_object_size_mb: float
    accesses_per_object_year: float
    replicas: int = 2

    def __post_init__(self) -> None:
        if self.object_count < 1:
            raise ValueError("object_count must be at least 1")
        if self.mean_object_size_mb <= 0:
            raise ValueError("mean_object_size_mb must be positive")
        if self.accesses_per_object_year < 0:
            raise ValueError("accesses_per_object_year must be non-negative")
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")

    @property
    def total_size_tb(self) -> float:
        """Total collection size in terabytes (per replica)."""
        return self.object_count * self.mean_object_size_mb / 1e6

    @property
    def mean_access_interval_hours(self) -> float:
        """Mean hours between accesses to any given object."""
        if self.accesses_per_object_year == 0:
            return float("inf")
        return HOURS_PER_YEAR / self.accesses_per_object_year


@dataclass(frozen=True)
class CollectionReliability:
    """Collection-level reliability summary.

    Attributes:
        per_object_mttdl_hours: MTTDL of one object's replica group.
        per_object_loss_probability: probability one object is lost
            within the mission.
        expected_objects_lost: expected number of lost objects.
        collection_survival_probability: probability no object is lost.
    """

    per_object_mttdl_hours: float
    per_object_loss_probability: float
    expected_objects_lost: float
    collection_survival_probability: float


def collection_reliability(
    collection: ArchiveCollection,
    object_model: FaultModel,
    mission_years: float = 50.0,
) -> CollectionReliability:
    """Collection-level reliability from a per-object fault model.

    Objects are treated as independent replica groups sharing the same
    parameters (the paper's model is explicitly agnostic to the unit of
    replication).  For collections of millions of objects even a tiny
    per-object loss probability produces expected losses well above
    zero — the reason the paper insists on aggressive auditing.
    """
    if mission_years <= 0:
        raise ValueError("mission_years must be positive")
    mttdl = mirrored_mttdl(object_model)
    per_object_loss = probability_of_loss(mttdl, mission_years * HOURS_PER_YEAR)
    expected_lost = per_object_loss * collection.object_count
    # Survival of the whole collection: every object survives.
    if per_object_loss >= 1.0:
        survival = 0.0
    else:
        survival = math.exp(collection.object_count * math.log1p(-per_object_loss))
    return CollectionReliability(
        per_object_mttdl_hours=mttdl,
        per_object_loss_probability=per_object_loss,
        expected_objects_lost=expected_lost,
        collection_survival_probability=survival,
    )


def audit_pass_hours(
    collection: ArchiveCollection, audit_bandwidth_mb_s: float
) -> float:
    """Wall-clock hours to audit one full replica of the collection."""
    if audit_bandwidth_mb_s <= 0:
        raise ValueError("audit_bandwidth_mb_s must be positive")
    total_mb = collection.object_count * collection.mean_object_size_mb
    return total_mb / audit_bandwidth_mb_s / 3600.0


def achievable_detection_latency(
    collection: ArchiveCollection, audit_bandwidth_mb_s: float
) -> float:
    """Best mean detection latency the audit bandwidth supports.

    Auditing continuously at the given bandwidth cycles through the
    collection once per :func:`audit_pass_hours`, so the mean delay from
    corruption to detection is half a pass.
    """
    return audit_pass_hours(collection, audit_bandwidth_mb_s) / 2.0


def on_access_detection_latency(collection: ArchiveCollection) -> float:
    """Mean detection latency if only user accesses check the data."""
    return collection.mean_access_interval_hours


def required_audit_bandwidth(
    collection: ArchiveCollection, target_mdl_hours: float
) -> float:
    """Audit bandwidth (MB/s per replica) needed for a target latency.

    Raises:
        ValueError: for a non-positive target.
    """
    if target_mdl_hours <= 0:
        raise ValueError("target_mdl_hours must be positive")
    total_mb = collection.object_count * collection.mean_object_size_mb
    pass_hours = 2.0 * target_mdl_hours
    return total_mb / (pass_hours * 3600.0)


def access_based_detection_is_sufficient(
    collection: ArchiveCollection,
    object_model: FaultModel,
    mission_years: float = 50.0,
    acceptable_loss_fraction: float = 0.001,
) -> bool:
    """Would relying on user accesses keep losses acceptable?

    Substitutes the access interval for ``MDL`` and checks whether the
    expected fraction of lost objects stays below the acceptable level.
    For realistic archival access rates the answer is no, which is the
    paper's argument for proactive auditing.
    """
    if not 0 < acceptable_loss_fraction < 1:
        raise ValueError("acceptable_loss_fraction must be in (0, 1)")
    access_mdl = on_access_detection_latency(collection)
    if access_mdl == float("inf"):
        access_mdl = object_model.mean_time_to_latent
    adjusted = object_model.with_detection_time(access_mdl)
    reliability = collection_reliability(collection, adjusted, mission_years)
    return (
        reliability.expected_objects_lost / collection.object_count
        <= acceptable_loss_fraction
    )


def audit_rate_for_loss_budget(
    collection: ArchiveCollection,
    object_model: FaultModel,
    mission_years: float = 50.0,
    acceptable_loss_fraction: float = 0.001,
    max_audits_per_year: float = 365.0,
) -> Optional[float]:
    """Smallest audits-per-year keeping expected losses within budget.

    Returns None when even ``max_audits_per_year`` cannot meet the
    budget.  Uses bisection on the audit rate (losses are monotone in
    the detection latency).
    """
    if not 0 < acceptable_loss_fraction < 1:
        raise ValueError("acceptable_loss_fraction must be in (0, 1)")

    def loss_fraction(audits_per_year: float) -> float:
        if audits_per_year <= 0:
            mdl = object_model.mean_time_to_latent
        else:
            mdl = HOURS_PER_YEAR / audits_per_year / 2.0
        adjusted = object_model.with_detection_time(mdl)
        reliability = collection_reliability(collection, adjusted, mission_years)
        return reliability.expected_objects_lost / collection.object_count

    if loss_fraction(max_audits_per_year) > acceptable_loss_fraction:
        return None
    if loss_fraction(0.0) <= acceptable_loss_fraction:
        return 0.0
    low, high = 0.0, max_audits_per_year
    for _ in range(64):
        mid = (low + high) / 2.0
        if loss_fraction(mid) <= acceptable_loss_fraction:
            high = mid
        else:
            low = mid
    return high
