"""Cost model for replicated long-term storage.

The paper's Section 4.3 names limited budget as the biggest threat to
digital preservation, and Section 6 repeatedly weighs reliability
strategies by cost (enterprise vs consumer drives, on-line vs off-line
audits, RAID vs plain mirrors, geographic separation).  This module puts
dollar figures on a replication design so those comparisons can be
reported next to the MTTDL figures (experiments E7, E8, E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.storage.drives import DriveSpec
from repro.storage.media import MediaSpec


@dataclass(frozen=True)
class CostModel:
    """Unit costs for owning and operating storage replicas.

    All rates are per replica unless stated otherwise.

    Attributes:
        hardware_cost_per_tb: purchase cost of the storage itself,
            dollars per terabyte (amortised over
            ``hardware_lifetime_years``).
        hardware_lifetime_years: replacement cycle for the hardware.
        power_cooling_per_tb_year: annual power and cooling cost per
            terabyte (zero for powered-off off-line media).
        admin_cost_per_replica_year: annual system-administration cost
            attributable to one replica.
        site_cost_per_year: annual cost of one additional independent
            site (space, network, contracts); only counted for replicas
            placed at distinct sites.
        audit_cost_per_pass: dollars per full audit pass of one replica.
        repair_cost_per_event: dollars per repair action.
    """

    hardware_cost_per_tb: float
    hardware_lifetime_years: float = 5.0
    power_cooling_per_tb_year: float = 50.0
    admin_cost_per_replica_year: float = 500.0
    site_cost_per_year: float = 0.0
    audit_cost_per_pass: float = 1.0
    repair_cost_per_event: float = 10.0

    def __post_init__(self) -> None:
        if self.hardware_cost_per_tb < 0:
            raise ValueError("hardware_cost_per_tb must be non-negative")
        if self.hardware_lifetime_years <= 0:
            raise ValueError("hardware_lifetime_years must be positive")
        for name in (
            "power_cooling_per_tb_year",
            "admin_cost_per_replica_year",
            "site_cost_per_year",
            "audit_cost_per_pass",
            "repair_cost_per_event",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class StorageCostBreakdown:
    """Annualised cost of one replication design.

    Attributes:
        hardware_per_year: amortised hardware purchase cost.
        power_cooling_per_year: power and cooling.
        administration_per_year: staff cost.
        sites_per_year: cost of the extra independent sites.
        audits_per_year_cost: auditing cost.
        repairs_per_year_cost: expected repair cost.
    """

    hardware_per_year: float
    power_cooling_per_year: float
    administration_per_year: float
    sites_per_year: float
    audits_per_year_cost: float
    repairs_per_year_cost: float

    @property
    def total_per_year(self) -> float:
        return (
            self.hardware_per_year
            + self.power_cooling_per_year
            + self.administration_per_year
            + self.sites_per_year
            + self.audits_per_year_cost
            + self.repairs_per_year_cost
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "hardware": self.hardware_per_year,
            "power_cooling": self.power_cooling_per_year,
            "administration": self.administration_per_year,
            "sites": self.sites_per_year,
            "audits": self.audits_per_year_cost,
            "repairs": self.repairs_per_year_cost,
            "total": self.total_per_year,
        }


def replication_cost(
    cost_model: CostModel,
    dataset_tb: float,
    replicas: int,
    audits_per_replica_year: float = 0.0,
    expected_repairs_per_replica_year: float = 0.0,
    independent_sites: Optional[int] = None,
) -> StorageCostBreakdown:
    """Annualised cost of keeping ``replicas`` copies of ``dataset_tb``.

    Args:
        cost_model: unit costs.
        dataset_tb: size of the preserved collection in terabytes.
        replicas: number of full copies kept.
        audits_per_replica_year: audit passes per replica per year.
        expected_repairs_per_replica_year: expected repair actions per
            replica per year (e.g. the fault rates times 8760).
        independent_sites: number of distinct sites used; defaults to the
            replica count (full geographic independence).

    Raises:
        ValueError: for non-positive dataset size or replica count.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    return scheme_storage_cost(
        cost_model,
        dataset_tb,
        RedundancyScheme(n=replicas, k=1),
        audits_per_fragment_year=audits_per_replica_year,
        expected_repairs_per_fragment_year=expected_repairs_per_replica_year,
        independent_sites=independent_sites,
    )


def scheme_storage_cost(
    cost_model: CostModel,
    dataset_tb: float,
    scheme: RedundancyScheme,
    audits_per_fragment_year: float = 0.0,
    expected_repairs_per_fragment_year: float = 0.0,
    independent_sites: Optional[int] = None,
) -> StorageCostBreakdown:
    """Annualised cost of an (n, k) redundancy scheme over ``dataset_tb``.

    Generalises :func:`replication_cost`: the raw bytes stored are
    ``dataset_tb * n / k`` (each of the ``n`` fragments holds ``1/k`` of
    the collection), so hardware and power scale with the storage
    overhead while administration and auditing scale with the fragment
    count.  Repairing one fragment must read ``k`` surviving fragments,
    so each repair event is charged ``k`` times the per-event cost.
    ``k = 1`` reproduces :func:`replication_cost` exactly.

    Args:
        cost_model: unit costs (per-replica rates apply per fragment).
        dataset_tb: size of the preserved collection in terabytes.
        scheme: the (n, k) redundancy scheme.
        audits_per_fragment_year: audit passes per fragment per year.
        expected_repairs_per_fragment_year: expected repair actions per
            fragment per year.
        independent_sites: number of distinct sites used; defaults to the
            fragment count (full geographic independence).

    Raises:
        ValueError: for non-positive dataset size or invalid rates/sites.
    """
    if dataset_tb <= 0:
        raise ValueError("dataset_tb must be positive")
    if audits_per_fragment_year < 0 or expected_repairs_per_fragment_year < 0:
        raise ValueError("rates must be non-negative")
    sites = independent_sites if independent_sites is not None else scheme.n
    if sites < 1 or sites > scheme.n:
        raise ValueError("independent_sites must be between 1 and replicas")

    stored_tb = dataset_tb * scheme.storage_overhead
    hardware = (
        cost_model.hardware_cost_per_tb
        * stored_tb
        / cost_model.hardware_lifetime_years
    )
    power = cost_model.power_cooling_per_tb_year * stored_tb
    administration = cost_model.admin_cost_per_replica_year * scheme.n
    site_cost = cost_model.site_cost_per_year * max(sites - 1, 0)
    audits = cost_model.audit_cost_per_pass * audits_per_fragment_year * scheme.n
    repairs = (
        cost_model.repair_cost_per_event
        * expected_repairs_per_fragment_year
        * scheme.n
        * scheme.repair_fragments_read
    )
    return StorageCostBreakdown(
        hardware_per_year=hardware,
        power_cooling_per_year=power,
        administration_per_year=administration,
        sites_per_year=site_cost,
        audits_per_year_cost=audits,
        repairs_per_year_cost=repairs,
    )


def cost_model_for_drive(drive: DriveSpec, **overrides: float) -> CostModel:
    """Derive a :class:`CostModel` from a drive's price per gigabyte."""
    parameters = {
        "hardware_cost_per_tb": drive.price_per_gb * 1000.0,
        "hardware_lifetime_years": drive.service_life_years,
    }
    parameters.update(overrides)
    return CostModel(**parameters)


def cost_model_for_media(media: MediaSpec, **overrides: float) -> CostModel:
    """Derive a :class:`CostModel` from a media class specification."""
    parameters = {
        "hardware_cost_per_tb": media.storage_cost_per_tb_year * 5.0,
        "hardware_lifetime_years": 5.0,
        "power_cooling_per_tb_year": 0.0 if not media.is_online else 50.0,
        "audit_cost_per_pass": media.audit_cost,
    }
    parameters.update(overrides)
    return CostModel(**parameters)


def cost_per_terabyte_year(breakdown: StorageCostBreakdown, dataset_tb: float) -> float:
    """Total annual cost divided by the collection size."""
    if dataset_tb <= 0:
        raise ValueError("dataset_tb must be positive")
    return breakdown.total_per_year / dataset_tb


def compare_drive_costs(
    consumer: DriveSpec,
    enterprise: DriveSpec,
    dataset_tb: float,
    consumer_replicas: int,
    enterprise_replicas: int,
    audits_per_replica_year: float = 3.0,
) -> Dict[str, float]:
    """Annual cost of a consumer-replica design vs an enterprise design.

    Returns both totals and the ratio, the quantity behind the paper's
    "the large incremental cost of enterprise drives is hard to justify"
    argument.
    """
    consumer_model = cost_model_for_drive(consumer)
    enterprise_model = cost_model_for_drive(enterprise)
    consumer_cost = replication_cost(
        consumer_model,
        dataset_tb,
        consumer_replicas,
        audits_per_replica_year=audits_per_replica_year,
    ).total_per_year
    enterprise_cost = replication_cost(
        enterprise_model,
        dataset_tb,
        enterprise_replicas,
        audits_per_replica_year=audits_per_replica_year,
    ).total_per_year
    return {
        "consumer_total_per_year": consumer_cost,
        "enterprise_total_per_year": enterprise_cost,
        "cost_ratio_enterprise_to_consumer": (
            enterprise_cost / consumer_cost if consumer_cost > 0 else float("inf")
        ),
    }


def kryder_declined_cost(
    base_cost_per_tb: float,
    years_elapsed: float,
    annual_decline: float = 0.15,
) -> float:
    """Hardware $/TB after Kryder-style price decline.

    The paper's Section 4.3 leans on the long-running trend of
    storage-cost-per-byte falling by a roughly constant fraction each
    year (Kryder's observation); a generation refreshed ``years_elapsed``
    years into a fleet timeline buys its hardware at
    ``base * (1 - annual_decline) ** years_elapsed``.

    Raises:
        ValueError: for a negative elapsed time or a decline outside
            [0, 1).
    """
    if base_cost_per_tb < 0:
        raise ValueError("base_cost_per_tb must be non-negative")
    if years_elapsed < 0:
        raise ValueError("years_elapsed must be non-negative")
    if not 0 <= annual_decline < 1:
        raise ValueError("annual_decline must be in [0, 1)")
    return base_cost_per_tb * (1.0 - annual_decline) ** years_elapsed


def expected_repairs_per_year(mean_time_to_fault_hours: float) -> float:
    """Expected repair events per replica per year for a fault rate."""
    if mean_time_to_fault_hours <= 0:
        raise ValueError("mean_time_to_fault_hours must be positive")
    return HOURS_PER_YEAR / mean_time_to_fault_hours
