"""Irrecoverable bit error arithmetic (paper Section 6.1).

The paper's comparison: over a 5-year service life that is 99% idle, the
consumer Barracuda suffers about 8 irrecoverable bit errors and the
enterprise Cheetah about 6, despite the Cheetah's ten-times-better quoted
bit error rate and fourteen-times-higher price per byte.  The expected
error count is simply the number of bits transferred during the active
fraction of the service life multiplied by the bit error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.units import HOURS_PER_YEAR
from repro.storage.drives import BITS_PER_BYTE, DriveSpec

#: The paper's "99% idle" assumption for archival drives.
PAPER_IDLE_FRACTION = 0.99

#: The paper's 5-year service-life horizon.
PAPER_SERVICE_YEARS = 5.0


def bits_transferred(
    bandwidth_mb_s: float,
    duty_cycle: float,
    duration_hours: float,
) -> float:
    """Bits moved at a bandwidth, for a duty cycle, over a duration.

    Args:
        bandwidth_mb_s: transfer rate in MB/s while active.
        duty_cycle: fraction of the duration the drive is actively
            transferring (1 - idle fraction).
        duration_hours: total elapsed time in hours.

    Raises:
        ValueError: for non-positive bandwidth/duration or a duty cycle
            outside [0, 1].
    """
    if bandwidth_mb_s <= 0:
        raise ValueError("bandwidth_mb_s must be positive")
    if not 0 <= duty_cycle <= 1:
        raise ValueError("duty_cycle must be in [0, 1]")
    if duration_hours < 0:
        raise ValueError("duration_hours must be non-negative")
    active_seconds = duration_hours * 3600.0 * duty_cycle
    return bandwidth_mb_s * 1e6 * active_seconds * BITS_PER_BYTE


@dataclass(frozen=True)
class DriveBitErrorResult:
    """Expected irrecoverable bit errors for one drive over its life.

    Attributes:
        drive: the drive specification.
        bits_transferred: bits moved during the active fraction of the
            service life.
        expected_bit_errors: bits_transferred times the bit error rate.
        full_drive_reads: how many times the whole drive could have been
            read in that active time (a scrubbing-oriented view of the
            same number).
    """

    drive: DriveSpec
    bits_transferred: float
    expected_bit_errors: float
    full_drive_reads: float


def expected_bit_errors(
    drive: DriveSpec,
    idle_fraction: float = PAPER_IDLE_FRACTION,
    service_years: Optional[float] = None,
    bandwidth_mb_s: Optional[float] = None,
) -> DriveBitErrorResult:
    """Expected irrecoverable bit errors over a drive's service life.

    Args:
        drive: the drive specification.
        idle_fraction: fraction of the service life the drive spends
            idle (the paper uses 0.99).
        service_years: service life to integrate over; defaults to the
            drive's own quoted service life.
        bandwidth_mb_s: transfer rate while active; defaults to the
            drive's sustained bandwidth.
    """
    if not 0 <= idle_fraction <= 1:
        raise ValueError("idle_fraction must be in [0, 1]")
    years = service_years if service_years is not None else drive.service_life_years
    if years <= 0:
        raise ValueError("service_years must be positive")
    bandwidth = (
        bandwidth_mb_s if bandwidth_mb_s is not None else drive.sustained_bandwidth_mb_s
    )
    duration_hours = years * HOURS_PER_YEAR
    bits = bits_transferred(bandwidth, 1.0 - idle_fraction, duration_hours)
    errors = bits * drive.bit_error_rate
    reads = bits / drive.capacity_bits
    return DriveBitErrorResult(
        drive=drive,
        bits_transferred=bits,
        expected_bit_errors=errors,
        full_drive_reads=reads,
    )


def bit_error_comparison(
    consumer: DriveSpec,
    enterprise: DriveSpec,
    idle_fraction: float = PAPER_IDLE_FRACTION,
    service_years: float = PAPER_SERVICE_YEARS,
) -> Dict[str, float]:
    """The Section 6.1 comparison as a flat dictionary of numbers.

    Keys include each drive's expected bit errors and in-service fault
    probability, the cost ratio, and the reliability-per-dollar view the
    paper uses to argue that more consumer replicas beat fewer enterprise
    drives for archival workloads.
    """
    consumer_result = expected_bit_errors(consumer, idle_fraction, service_years)
    enterprise_result = expected_bit_errors(enterprise, idle_fraction, service_years)
    cost_ratio = enterprise.cost_ratio_to(consumer)
    return {
        "consumer_bit_errors": consumer_result.expected_bit_errors,
        "enterprise_bit_errors": enterprise_result.expected_bit_errors,
        "bit_error_ratio": (
            consumer_result.expected_bit_errors
            / enterprise_result.expected_bit_errors
            if enterprise_result.expected_bit_errors > 0
            else float("inf")
        ),
        "consumer_fault_probability": consumer.in_service_fault_probability,
        "enterprise_fault_probability": enterprise.in_service_fault_probability,
        "fault_probability_ratio": (
            consumer.in_service_fault_probability
            / enterprise.in_service_fault_probability
            if enterprise.in_service_fault_probability > 0
            else float("inf")
        ),
        "cost_per_gb_ratio": cost_ratio,
        "consumer_replicas_per_enterprise_dollar": cost_ratio,
    }


def consumer_replicas_affordable(
    consumer: DriveSpec, enterprise: DriveSpec, dataset_gb: float
) -> float:
    """How many consumer-drive replicas the enterprise budget would buy.

    The paper's conclusion in Section 6.1/6.4: for archival workloads,
    spending the enterprise premium on additional independent consumer
    replicas yields far more reliability than the enterprise drive's
    modestly better error rates.
    """
    if dataset_gb <= 0:
        raise ValueError("dataset_gb must be positive")
    enterprise_budget = dataset_gb * enterprise.price_per_gb
    consumer_cost_per_replica = dataset_gb * consumer.price_per_gb
    return enterprise_budget / consumer_cost_per_replica
