"""Disk drive specifications used in the paper's comparisons.

The paper's Section 6.1 compares two specific 2005-era Seagate drives:

* the consumer **Barracuda ST3200822A**: 200 GB, quoted irrecoverable bit
  error rate 1e-14, 7% probability of an in-service fault over a 5-year
  service life, $0.57/GB (TigerDirect, June 2005);
* the enterprise **Cheetah 15K.4**: 146 GB, bit error rate 1e-15, 3%
  in-service fault probability, $8.20/GB, datasheet MTTF 1.4e6 hours.

Those numbers are encoded here verbatim as named :class:`DriveSpec`
instances (this is the "substitute the datasheet for the hardware"
substitution documented in DESIGN.md), plus generic consumer/enterprise
specs for parameter sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.units import HOURS_PER_YEAR

#: Bytes per gigabyte (drive vendors use decimal gigabytes).
BYTES_PER_GB = 1e9
BITS_PER_BYTE = 8.0


@dataclass(frozen=True)
class DriveSpec:
    """Specification of one disk drive model.

    Attributes:
        name: marketing / model name.
        capacity_gb: formatted capacity in decimal gigabytes.
        sustained_bandwidth_mb_s: sustained transfer rate in MB/s used
            for rebuild-time and bit-error arithmetic.
        bit_error_rate: irrecoverable bit error rate (errors per bit
            transferred).
        mttf_hours: datasheet mean time to failure.
        service_life_years: the vendor's quoted service life.
        in_service_fault_probability: probability of a visible fault
            within the service life (from the datasheet or the paper).
        price_per_gb: purchase price in dollars per gigabyte.
        enterprise: whether this is an enterprise-class drive.
    """

    name: str
    capacity_gb: float
    sustained_bandwidth_mb_s: float
    bit_error_rate: float
    mttf_hours: float
    service_life_years: float
    in_service_fault_probability: float
    price_per_gb: float
    enterprise: bool = False

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if self.sustained_bandwidth_mb_s <= 0:
            raise ValueError("sustained_bandwidth_mb_s must be positive")
        if not 0 < self.bit_error_rate < 1:
            raise ValueError("bit_error_rate must be in (0, 1)")
        if self.mttf_hours <= 0:
            raise ValueError("mttf_hours must be positive")
        if self.service_life_years <= 0:
            raise ValueError("service_life_years must be positive")
        if not 0 <= self.in_service_fault_probability <= 1:
            raise ValueError("in_service_fault_probability must be in [0, 1]")
        if self.price_per_gb <= 0:
            raise ValueError("price_per_gb must be positive")

    # -- derived quantities ------------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        return self.capacity_gb * BYTES_PER_GB

    @property
    def capacity_bits(self) -> float:
        return self.capacity_bytes * BITS_PER_BYTE

    @property
    def price(self) -> float:
        """Purchase price of the whole drive in dollars."""
        return self.price_per_gb * self.capacity_gb

    @property
    def service_life_hours(self) -> float:
        return self.service_life_years * HOURS_PER_YEAR

    def full_read_hours(self) -> float:
        """Hours needed to read (or rewrite) the entire drive once.

        This is the paper's basis for the visible repair time ``MRV`` of
        a mirrored pair: rebuilding the failed copy means transferring
        the full capacity at the sustained bandwidth.
        """
        bytes_per_hour = self.sustained_bandwidth_mb_s * 1e6 * 3600.0
        return self.capacity_bytes / bytes_per_hour

    def implied_mttf_from_fault_probability(self) -> float:
        """MTTF implied by the in-service fault probability.

        Inverts the exponential relation
        ``p = 1 - exp(-life / MTTF)``; useful when the datasheet quotes a
        fault probability instead of an MTTF.
        """
        p = self.in_service_fault_probability
        if p <= 0:
            return float("inf")
        return -self.service_life_hours / math.log(1.0 - p)

    def annualised_failure_rate(self) -> float:
        """Visible faults per drive-year implied by the MTTF."""
        return HOURS_PER_YEAR / self.mttf_hours

    def cost_ratio_to(self, other: "DriveSpec") -> float:
        """Price-per-gigabyte ratio of this drive to another."""
        return self.price_per_gb / other.price_per_gb


#: Consumer drive of Section 6.1 (Seagate ST3200822A, 7200.7 Barracuda).
#: The 58 MB/s sustained rate is the datasheet's maximum sustained
#: transfer rate; the paper's "about 8 irrecoverable bit errors" follows
#: from it (see repro.storage.bit_errors).
BARRACUDA_ST3200822A = DriveSpec(
    name="Seagate Barracuda ST3200822A",
    capacity_gb=200.0,
    sustained_bandwidth_mb_s=58.0,
    bit_error_rate=1e-14,
    mttf_hours=6.0e5,
    service_life_years=5.0,
    in_service_fault_probability=0.07,
    price_per_gb=0.57,
    enterprise=False,
)

#: Enterprise drive of Sections 5.4 and 6.1 (Seagate Cheetah 15K.4).
#: The paper quotes a "bandwidth of 300 MB/s" (the SCSI interface rate)
#: when deriving the 20-minute repair time, so that figure is kept here.
CHEETAH_15K4 = DriveSpec(
    name="Seagate Cheetah 15K.4",
    capacity_gb=146.0,
    sustained_bandwidth_mb_s=300.0,
    bit_error_rate=1e-15,
    mttf_hours=1.4e6,
    service_life_years=5.0,
    in_service_fault_probability=0.03,
    price_per_gb=8.20,
    enterprise=True,
)

#: Generic parameterisations for sweeps that should not be tied to a
#: particular 2005 product.
GENERIC_CONSUMER_DRIVE = DriveSpec(
    name="generic consumer SATA drive",
    capacity_gb=500.0,
    sustained_bandwidth_mb_s=100.0,
    bit_error_rate=1e-14,
    mttf_hours=7.0e5,
    service_life_years=5.0,
    in_service_fault_probability=0.06,
    price_per_gb=0.50,
    enterprise=False,
)

GENERIC_ENTERPRISE_DRIVE = DriveSpec(
    name="generic enterprise SAS drive",
    capacity_gb=300.0,
    sustained_bandwidth_mb_s=150.0,
    bit_error_rate=1e-15,
    mttf_hours=1.6e6,
    service_life_years=5.0,
    in_service_fault_probability=0.03,
    price_per_gb=6.00,
    enterprise=True,
)


def drive_catalog() -> Dict[str, DriveSpec]:
    """All built-in drive specifications keyed by a short identifier."""
    return {
        "barracuda": BARRACUDA_ST3200822A,
        "cheetah": CHEETAH_15K4,
        "generic_consumer": GENERIC_CONSUMER_DRIVE,
        "generic_enterprise": GENERIC_ENTERPRISE_DRIVE,
    }


def lookup_drive(identifier: str) -> DriveSpec:
    """Fetch a drive spec by catalog identifier.

    Raises:
        KeyError: with the list of known identifiers when not found.
    """
    catalog = drive_catalog()
    if identifier not in catalog:
        raise KeyError(
            f"unknown drive {identifier!r}; known drives: {sorted(catalog)}"
        )
    return catalog[identifier]


def scale_drive(
    spec: DriveSpec,
    capacity_factor: float = 1.0,
    reliability_factor: float = 1.0,
    price_factor: float = 1.0,
    name: Optional[str] = None,
) -> DriveSpec:
    """Derive a hypothetical drive by scaling an existing spec.

    Used by sensitivity sweeps (e.g. "what if enterprise drives were only
    twice as expensive?").
    """
    if capacity_factor <= 0 or reliability_factor <= 0 or price_factor <= 0:
        raise ValueError("scale factors must be positive")
    return DriveSpec(
        name=name or f"{spec.name} (scaled)",
        capacity_gb=spec.capacity_gb * capacity_factor,
        sustained_bandwidth_mb_s=spec.sustained_bandwidth_mb_s,
        bit_error_rate=spec.bit_error_rate / reliability_factor,
        mttf_hours=spec.mttf_hours * reliability_factor,
        service_life_years=spec.service_life_years,
        in_service_fault_probability=min(
            spec.in_service_fault_probability / reliability_factor, 1.0
        ),
        price_per_gb=spec.price_per_gb * price_factor,
        enterprise=spec.enterprise,
    )
