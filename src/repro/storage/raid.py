"""MTTDL of RAID array organisations.

The paper's model generalises the RAID reliability analysis of Patterson
et al.; Section 6.4 then asks whether single-site RAID redundancy is
worth its cost compared to geographically separate plain mirrors.  This
module provides standard MTTDL expressions for RAID-1, RAID-5 and RAID-6
groups (visible whole-disk faults only — the classic analysis) so they
can be compared against the paper's latent-fault-aware model and against
cross-site mirroring in experiment E12.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class RaidLevel(enum.Enum):
    """Array organisations covered by the classic MTTDL analysis."""

    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"


def _validate(disk_mttf: float, disk_mttr: float, disks: int, minimum: int) -> None:
    if disk_mttf <= 0:
        raise ValueError("disk_mttf must be positive")
    if disk_mttr <= 0:
        raise ValueError("disk_mttr must be positive")
    if disks < minimum:
        raise ValueError(f"this RAID level needs at least {minimum} disks")


def raid0_mttdl(disk_mttf: float, disks: int) -> float:
    """MTTDL of striping with no redundancy: first fault loses data."""
    if disk_mttf <= 0:
        raise ValueError("disk_mttf must be positive")
    if disks < 1:
        raise ValueError("disks must be at least 1")
    return disk_mttf / disks


def raid1_mttdl(disk_mttf: float, disk_mttr: float, disks: int = 2) -> float:
    """MTTDL of an n-way mirror (visible faults only).

    The classic result ``MTTF^n / (n * MTTF_r^{n-1})`` reduces to
    ``MTTF² / (2 MTTR)`` for a two-way mirror.
    """
    _validate(disk_mttf, disk_mttr, disks, 2)
    return disk_mttf ** disks / (disks * disk_mttr ** (disks - 1))


def raid5_mttdl(disk_mttf: float, disk_mttr: float, disks: int) -> float:
    """MTTDL of a single-parity group of ``disks`` drives.

    Data is lost when a second drive fails while the first is being
    rebuilt: ``MTTF² / (N (N-1) MTTR)`` (Patterson et al.).
    """
    _validate(disk_mttf, disk_mttr, disks, 3)
    return disk_mttf ** 2 / (disks * (disks - 1) * disk_mttr)


def raid6_mttdl(disk_mttf: float, disk_mttr: float, disks: int) -> float:
    """MTTDL of a double-parity group of ``disks`` drives.

    Three overlapping failures are needed:
    ``MTTF³ / (N (N-1) (N-2) MTTR²)``.
    """
    _validate(disk_mttf, disk_mttr, disks, 4)
    return disk_mttf ** 3 / (
        disks * (disks - 1) * (disks - 2) * disk_mttr ** 2
    )


def raid_mttdl(
    level: RaidLevel, disk_mttf: float, disk_mttr: float, disks: int
) -> float:
    """Dispatch to the per-level MTTDL expression."""
    if level is RaidLevel.RAID0:
        return raid0_mttdl(disk_mttf, disks)
    if level is RaidLevel.RAID1:
        return raid1_mttdl(disk_mttf, disk_mttr, disks)
    if level is RaidLevel.RAID5:
        return raid5_mttdl(disk_mttf, disk_mttr, disks)
    if level is RaidLevel.RAID6:
        return raid6_mttdl(disk_mttf, disk_mttr, disks)
    raise ValueError(f"unknown RAID level {level!r}")


@dataclass(frozen=True)
class RaidConfiguration:
    """A RAID group plus the overheads needed for cost comparison.

    Attributes:
        level: the array organisation.
        disks: number of drives in the group.
        disk_mttf: per-drive mean time to (visible) failure, hours.
        disk_mttr: rebuild time per failed drive, hours.
    """

    level: RaidLevel
    disks: int
    disk_mttf: float
    disk_mttr: float

    def mttdl(self) -> float:
        return raid_mttdl(self.level, self.disk_mttf, self.disk_mttr, self.disks)

    def usable_fraction(self) -> float:
        """Fraction of the raw capacity available for data."""
        if self.level is RaidLevel.RAID0:
            return 1.0
        if self.level is RaidLevel.RAID1:
            return 1.0 / self.disks
        if self.level is RaidLevel.RAID5:
            return (self.disks - 1) / self.disks
        if self.level is RaidLevel.RAID6:
            return (self.disks - 2) / self.disks
        raise ValueError(f"unknown RAID level {self.level!r}")

    def raw_capacity_factor(self) -> float:
        """Raw bytes purchased per byte of usable data."""
        return 1.0 / self.usable_fraction()


def raid_with_latent_faults_mttdl(
    disk_mttf: float,
    disk_mttr: float,
    disks: int,
    latent_mttf: float,
) -> float:
    """RAID-5 MTTDL accounting for a latent fault found during rebuild.

    NetApp's threat model (cited in the paper's related work) includes a
    whole-disk failure followed by a latent sector fault discovered during
    reconstruction — the ``P(L2 | V1)`` path.  The group loses data if any
    of the surviving ``N-1`` disks holds an undetected latent fault when a
    rebuild is forced, approximated here by the probability that a latent
    fault arrived on a survivor within the preceding latent mean time
    window (steady state, no scrubbing): ``1 - exp(-(N-1)*MTTR/latent)``
    plus the classic second-whole-disk term.
    """
    _validate(disk_mttf, disk_mttr, disks, 3)
    if latent_mttf <= 0:
        raise ValueError("latent_mttf must be positive")
    whole_disk_rate = disks / disk_mttf
    p_second_disk = (disks - 1) * disk_mttr / disk_mttf
    # Without scrubbing a survivor carries an undetected latent fault with
    # probability approaching the fraction of its lifetime since the last
    # full read; conservatively use the rebuild-read itself as the only
    # scrub, i.e. the survivor accumulated latent faults for its whole
    # current life ~ disk_mttf.
    p_latent_on_survivor = 1.0 - math.exp(-(disks - 1) * disk_mttf / latent_mttf / disks)
    p_loss_given_failure = min(p_second_disk + p_latent_on_survivor, 1.0)
    return 1.0 / (whole_disk_rate * p_loss_given_failure)
