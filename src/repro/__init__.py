"""repro — reliability modelling toolkit for long-term digital storage.

This package reproduces the analytic model, simulation machinery, and
evaluation of Baker et al., *A Fresh Look at the Reliability of Long-term
Digital Storage* (EuroSys 2006).

The package is organised as:

``repro.core``
    The paper's primary contribution: the window-of-vulnerability MTTDL
    model for mirrored and r-way replicated data with visible faults,
    latent faults, detection time, and a correlation factor.
``repro.markov``
    A continuous-time Markov chain substrate used to cross-validate the
    closed-form model.
``repro.simulation``
    A discrete-event Monte-Carlo simulator of replicated storage.
``repro.storage``
    Drive, media, RAID, site and cost models.
``repro.threats``
    The paper's threat taxonomy as structured event generators.
``repro.audit``
    Scrubbing / audit policies and their detection-latency consequences.
``repro.baselines``
    Prior reliability models the paper builds on or compares against.
``repro.analysis``
    Sweeps, analytic-vs-simulation comparison, tables and reports.
``repro.optimize``
    The budget-constrained planner (design spaces, Pareto frontiers).
``repro.fleet``
    Decades-scale non-stationary fleet timelines and their simulator.
``repro.study``
    The unified facade: one declarative ``Scenario`` in, one
    schema-versioned ``StudyResult`` out, across every layer above —
    the recommended entry point for new code::

        from repro.study import EstimatorPolicy, Scenario, SystemSpec, run

        result = run(Scenario(
            question="loss_probability",
            system=SystemSpec(model=model),
            mission_years=50.0,
            policy=EstimatorPolicy(engine="auto", trials=2000, seed=7),
        ))

Quickstart::

    from repro import FaultModel, mirrored_mttdl, probability_of_loss

    model = FaultModel(
        mean_time_to_visible=1.4e6,       # hours
        mean_time_to_latent=2.8e5,        # hours
        mean_repair_visible=1 / 3.0,      # 20 minutes
        mean_repair_latent=1 / 3.0,
        mean_detect_latent=1460.0,        # scrub three times a year
        correlation_factor=1.0,
    )
    mttdl_hours = mirrored_mttdl(model)
    p50 = probability_of_loss(mttdl_hours, mission_time=50 * 8760.0)
"""

from repro.core.parameters import FaultModel, HOURS_PER_YEAR
from repro.core.mttdl import (
    mirrored_mttdl,
    double_fault_rate,
    mirrored_mttdl_exact,
)
from repro.core.replication import replicated_mttdl
from repro.core.probability import (
    probability_of_loss,
    probability_of_survival,
    mttdl_for_loss_probability,
)
from repro.core.scenarios import (
    cheetah_no_scrub_scenario,
    cheetah_scrubbed_scenario,
    paper_scenarios,
)

__all__ = [
    "FaultModel",
    "HOURS_PER_YEAR",
    "mirrored_mttdl",
    "mirrored_mttdl_exact",
    "double_fault_rate",
    "replicated_mttdl",
    "probability_of_loss",
    "probability_of_survival",
    "mttdl_for_loss_probability",
    "cheetah_no_scrub_scenario",
    "cheetah_scrubbed_scenario",
    "paper_scenarios",
]

__version__ = "1.1.0"
