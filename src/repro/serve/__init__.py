"""repro.serve — the high-QPS Scenario→StudyResult query service.

The ROADMAP's "millions of users" tier: a long-running service that
answers declarative :class:`~repro.study.scenario.Scenario` queries
from a shared, persistent result store — archival reliability as a
*queryable service* (Marshall et al.'s service-model framing) whose
answers stay re-derivable forever (content-hashed, schema-versioned
entries, after Gladney & Lorie).

Layers, cheapest first:

* :class:`ResultStore` (``store.py``) — persistent question-keyed
  answers: exact engines memoize forever, stochastic answers hit while
  their achieved relative error satisfies the caller's demand and are
  transparently refreshed when a tighter one arrives;
* single-flight deduplication + the batching queue
  (:class:`StudyService`, ``service.py`` / ``batch.py``) — identical
  in-flight scenarios share one computation, and compatible plain-batch
  loss questions share one vectorized kernel invocation;
* the transports (``server.py`` / ``client.py``) — HTTP on stdlib
  asyncio streams (``/query``, ``/query/stream``, ``/healthz``,
  ``/metrics`` in Prometheus text format) plus a stdio JSON-lines mode,
  and an :mod:`http.client` helper.

Quick start (see ``examples/serve_quickstart.py`` and the CLI's
``serve`` sub-command)::

    import asyncio
    from repro.serve import ResultStore, StudyService

    async def main():
        service = StudyService(store=ResultStore("store/"))
        answer = await service.submit(scenario)   # "engine": computed
        answer = await service.submit(scenario)   # "store": cache hit
        await service.close()

    asyncio.run(main())
"""

from repro.serve.batch import batchable, group_key, run_group
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import (
    ANSWER_SCHEMA_VERSION,
    serve_lines,
    start_server,
)
from repro.serve.service import ProgressCallback, ServeAnswer, StudyService
from repro.serve.store import (
    ENTRY_SCHEMA_VERSION,
    ResultStore,
    question_key,
)

__all__ = [
    "ANSWER_SCHEMA_VERSION",
    "ENTRY_SCHEMA_VERSION",
    "ProgressCallback",
    "ResultStore",
    "ServeAnswer",
    "ServeClient",
    "ServeError",
    "StudyService",
    "batchable",
    "group_key",
    "question_key",
    "run_group",
    "serve_lines",
    "start_server",
]
