"""The persistent Scenario→StudyResult store behind the serve layer.

A :class:`ResultStore` memoizes study answers on disk, one JSON file per
*question*, following the durable-answer discipline of Gladney & Lorie's
*Trustworthy 100-Year Digital Objects*: every entry carries the full
producing scenario, its content hash, and the schema-versioned result,
so an archived answer stays re-derivable long after the asker is gone.

Two hash keys are in play:

* the scenario **content hash** (:meth:`Scenario.content_hash`) — the
  exact-identity key the single-flight deduplication and the optimize /
  fleet caches use;
* the **question key** (:func:`question_key`) — the content hash of the
  scenario with its *precision knobs* (``trials``, ``max_trials``,
  ``target_relative_error``, ``seed``) and its ``label`` normalised
  away.  Two scenarios that ask the same physical question at different
  sampling effort share one store entry.

Entries are refreshed, not merely invalidated: an exact (analytic /
markov) answer hits forever, a stochastic answer hits while its achieved
relative error satisfies the caller's ``target_relative_error`` demand,
and a tighter demand reports ``"stale"`` so the service recomputes and
overwrites the entry with the sharper answer.

Concurrency hardening matches the optimize/fleet caches: writes go
through a per-process temporary file and ``os.replace`` (atomic on
POSIX), readers treat any undecodable entry as a miss-with-error
(degrading to recompute, never crashing), and the in-memory hot cache is
validated against the file's ``(mtime_ns, size)`` stat signature so two
processes sharing one directory converge on the newest entry.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.study.result import StudyResult
from repro.study.scenario import Scenario

__all__ = ["ENTRY_SCHEMA_VERSION", "ResultStore", "question_key"]

#: Version of the on-disk entry layout.  Readers reject other versions
#: as corrupt (degrade to recompute) rather than guessing.
ENTRY_SCHEMA_VERSION = 1

#: Policy fields that tune *how hard* to work on an answer, not *which*
#: answer is being asked for.  Normalised away by :func:`question_key`.
PRECISION_KNOBS: Tuple[str, ...] = (
    "trials",
    "max_trials",
    "target_relative_error",
    "seed",
)

#: Engines whose answers are exact (std_error 0) and memoize forever.
EXACT_ENGINES: Tuple[str, ...] = ("analytic", "markov")


def question_key(scenario: Scenario) -> str:
    """Hash identifying the physical question a scenario asks.

    The scenario's canonical dict with ``label`` dropped and the
    policy's :data:`PRECISION_KNOBS` removed, hashed with the same
    SHA-256-over-sorted-JSON recipe (and the same 32-hex-digit width) as
    :meth:`Scenario.content_hash` — so store filenames sit naturally
    next to the optimize/fleet cache files.
    """
    payload = scenario.as_dict()
    payload["label"] = None
    policy = dict(payload["policy"])
    for knob in PRECISION_KNOBS:
        policy.pop(knob, None)
    payload["policy"] = policy
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def achieved_relative_error(result: StudyResult) -> Optional[float]:
    """The relative error a result actually achieved.

    ``std_error / |value|`` when both are finite and the value is
    non-zero; ``0.0`` for exact answers (``std_error == 0``); ``None``
    when the precision is unknowable (zero or non-finite mean), matching
    :attr:`MonteCarloEstimate.relative_error` returning ``inf`` there.
    """
    if result.std_error == 0.0:
        return 0.0
    if (
        result.value is None
        or result.std_error is None
        or not math.isfinite(result.value)
        or not math.isfinite(result.std_error)
        or result.value == 0.0
    ):
        return None
    return abs(result.std_error / result.value)


class ResultStore:
    """A shared, persistent map from questions to study answers.

    Args:
        directory: where entries live (created if missing).  One file
            per question key; safe to share between processes.

    Attributes:
        hits / misses / stales / errors / stores: outcome counters,
            mirroring the ``lookup()`` outcome API of
            :class:`repro.optimize.runner.ResultCache` and the fleet
            chunk cache (``errors`` counts corrupt entries that degraded
            to recompute).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stales = 0
        self.errors = 0
        self.stores = 0
        # question_key -> ((mtime_ns, size), decoded entry).  Validated
        # against the file's stat signature on every lookup, so another
        # process overwriting an entry is picked up on the next read.
        self._memory: Dict[str, Tuple[Tuple[int, int], Dict[str, object]]] = {}

    # -- reading -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load_entry(self, key: str) -> Tuple[Optional[Dict[str, object]], bool]:
        """(entry, corrupt) for the question key; (None, False) if absent."""
        path = self._path(key)
        try:
            signature_stat = path.stat()
        except OSError:
            return None, False
        signature = (signature_stat.st_mtime_ns, signature_stat.st_size)
        cached = self._memory.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1], False
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict):
                raise ValueError("store entry is not an object")
            if entry.get("schema") != ENTRY_SCHEMA_VERSION:
                raise ValueError(
                    f"unknown store entry schema {entry.get('schema')!r}"
                )
            # Decode eagerly so a truncated/garbled result payload is
            # classified as corrupt here, not at serving time.
            StudyResult.from_dict(entry["result"])
        except OSError:
            return None, False
        except (KeyError, TypeError, ValueError):
            return None, True
        self._memory[key] = (signature, entry)
        return entry, False

    def lookup(self, scenario: Scenario) -> Tuple[Optional[StudyResult], str]:
        """The stored answer for a scenario's question, plus an outcome.

        Outcomes mirror the other content-hash caches:

        * ``"hit"`` — a stored answer satisfies the request (exact
          answers always do; stochastic answers do when the caller set
          no ``target_relative_error`` or the stored achieved relative
          error meets it);
        * ``"stale"`` — an answer exists but the caller demanded a
          tighter relative error than it achieved (recompute, then
          :meth:`put` overwrites with the sharper answer);
        * ``"miss"`` — no entry;
        * ``"error"`` — a corrupt entry degraded to recompute (counted
          in :attr:`errors`, never raised).
        """
        key = question_key(scenario)
        entry, corrupt = self._load_entry(key)
        if corrupt:
            self.errors += 1
            return None, "error"
        if entry is None:
            self.misses += 1
            return None, "miss"
        result = StudyResult.from_dict(entry["result"])
        if not entry.get("exact", False):
            demanded = scenario.policy.target_relative_error
            achieved = entry.get("relative_error")
            if demanded is not None and (
                achieved is None or float(achieved) > demanded
            ):
                self.stales += 1
                return None, "stale"
        self.hits += 1
        return result, "hit"

    # -- writing -----------------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: StudyResult,
        batched: bool = False,
    ) -> str:
        """Persist one answer under its question key; returns the key.

        The entry records the full producing scenario and its content
        hash (provenance: which precision knobs actually produced the
        stored numbers), the achieved relative error the staleness check
        reads, and whether the answer came off the batching queue's
        shared kernel invocation.
        """
        key = question_key(scenario)
        entry: Dict[str, object] = {
            "schema": ENTRY_SCHEMA_VERSION,
            "question_key": key,
            "scenario": scenario.as_dict(),
            "scenario_hash": result.scenario_hash or scenario.content_hash(),
            "exact": result.engine in EXACT_ENGINES,
            "relative_error": achieved_relative_error(result),
            "batched": bool(batched),
            "result": result.as_dict(),
        }
        path = self._path(key)
        # Atomic publish: a concurrent reader sees either the old entry
        # or the new one, never a torn write.  The temporary name is
        # per-process so two writers cannot clobber each other's staging
        # file; last os.replace wins, which is fine — both wrote a
        # complete, valid answer to the same question.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(entry, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)
        self.stores += 1
        self._memory.pop(key, None)
        return key

    # -- reporting ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stales": self.stales,
            "errors": self.errors,
            "stores": self.stores,
        }
