"""The serve layer's transports: HTTP on asyncio streams, and stdio.

The HTTP side is a deliberately small HTTP/1.1 implementation on
:func:`asyncio.start_server` — no web framework, matching the repo's
zero-dependency discipline.  Four routes:

* ``GET /healthz`` — liveness probe, ``ok``;
* ``GET /metrics`` — the service registry rendered through the
  Prometheus text exposition (:func:`repro.obs.export.to_prometheus`);
* ``POST /query`` — a Scenario JSON body in, one answer envelope
  ``{"schema", "served_from", "scenario_hash", "result"}`` out;
* ``POST /query/stream`` — the same query as newline-delimited JSON:
  one ``{"event", "data", "timing"}`` progress record per engine event
  (fed from the ``obs`` flight-recorder stream), then the final
  ``{"served_from", ..., "result"}`` line.

Keep-alive is honoured on the plain routes; streaming responses close
the connection (their length is unknown up front and the stdlib-only
client stays trivial that way).

The stdio mode (:func:`serve_lines`) is the same service over JSON
lines — one request object per input line, concurrent handling, one
response object per output line correlated by the caller's ``id`` —
which is what the tests and subprocess harnesses drive.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Optional

from repro.obs.export import to_prometheus
from repro.serve.service import StudyService
from repro.study.scenario import Scenario

__all__ = ["ANSWER_SCHEMA_VERSION", "serve_lines", "start_server"]

#: Version of the ``/query`` answer envelope (and the stdio final line).
ANSWER_SCHEMA_VERSION = 1

_JSON = "application/json; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"
#: The Prometheus text exposition content type ``/metrics`` must serve.
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found"}


def _head(
    status: int,
    content_type: str,
    length: Optional[int],
    keep_alive: bool,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
        f"Content-Type: {content_type}",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def _answer_payload(answer) -> Dict[str, object]:
    return {
        "schema": ANSWER_SCHEMA_VERSION,
        "served_from": answer.served_from,
        "scenario_hash": answer.scenario_hash,
        "result": answer.result.as_dict(),
    }


def _scenario_from_body(body: bytes) -> Scenario:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    # Accept both a bare scenario dict and a {"scenario": {...}} wrapper
    # (the CLI's render_json envelope round-trips through the latter).
    source = payload.get("scenario", payload)
    if not isinstance(source, dict):
        raise ValueError("'scenario' must be a JSON object")
    try:
        return Scenario.from_dict(source)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"invalid scenario: {exc}") from exc


async def _handle_connection(
    service: StudyService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            request_line = await reader.readline()
            if not request_line:
                break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) != 3:
                writer.write(_head(400, _TEXT, 0, keep_alive=False))
                break
            method, target, version = parts
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1", "replace").partition(
                    ":"
                )
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            keep_alive = (
                version == "HTTP/1.1"
                and headers.get("connection", "").lower() != "close"
            )

            if method == "GET" and target == "/healthz":
                payload = b"ok\n"
                writer.write(_head(200, _TEXT, len(payload), keep_alive))
                writer.write(payload)
            elif method == "GET" and target == "/metrics":
                text = to_prometheus(service.telemetry.snapshot())
                payload = text.encode("utf-8")
                writer.write(
                    _head(200, _PROMETHEUS, len(payload), keep_alive)
                )
                writer.write(payload)
            elif method == "POST" and target == "/query":
                try:
                    scenario = _scenario_from_body(body)
                    answer = await service.submit(scenario)
                except ValueError as exc:
                    payload = json.dumps({"error": str(exc)}).encode("utf-8")
                    writer.write(_head(400, _JSON, len(payload), keep_alive))
                    writer.write(payload)
                else:
                    payload = json.dumps(_answer_payload(answer)).encode(
                        "utf-8"
                    )
                    writer.write(_head(200, _JSON, len(payload), keep_alive))
                    writer.write(payload)
            elif method == "POST" and target == "/query/stream":
                await _stream_query(service, writer, body)
                keep_alive = False
            else:
                payload = json.dumps(
                    {"error": f"no route for {method} {target}"}
                ).encode("utf-8")
                writer.write(_head(404, _JSON, len(payload), keep_alive))
                writer.write(payload)

            await writer.drain()
            if not keep_alive:
                break
    except (asyncio.IncompleteReadError, ConnectionError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            # Server shutdown cancels handlers mid-close; the coroutine
            # ends here either way, so suppressing is safe.
            pass


async def _stream_query(
    service: StudyService, writer: asyncio.StreamWriter, body: bytes
) -> None:
    """Answer one query as ndjson: progress records, then the result."""
    try:
        scenario = _scenario_from_body(body)
    except ValueError as exc:
        payload = json.dumps({"error": str(exc)}).encode("utf-8")
        writer.write(_head(400, _JSON, len(payload), keep_alive=False))
        writer.write(payload)
        return
    writer.write(
        _head(200, "application/x-ndjson; charset=utf-8", None, False)
    )

    def progress(record: Dict[str, object]) -> None:
        # Called on the loop thread by the service's progress sink; each
        # call writes one complete line, so records never interleave.
        writer.write((json.dumps(record) + "\n").encode("utf-8"))

    answer = await service.submit(scenario, progress=progress)
    writer.write(
        (json.dumps(_answer_payload(answer)) + "\n").encode("utf-8")
    )


async def start_server(
    service: StudyService, host: str = "127.0.0.1", port: int = 8750
) -> "asyncio.base_events.Server":
    """Bind the HTTP front end; returns the asyncio server (port 0 OK)."""

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


# ---------------------------------------------------------------------------
# stdio / JSON-lines mode
# ---------------------------------------------------------------------------


async def serve_lines(
    service: StudyService,
    reader: "asyncio.StreamReader",
    write: Callable[[str], None],
) -> int:
    """Serve JSON-lines requests until the reader reaches EOF.

    Each input line is ``{"id": ..., "scenario": {...}, "stream":
    bool}``; requests are handled concurrently (the single-flight and
    batching layers see them together), and every output line carries
    the request's ``id`` back:

    * progress (``"stream": true`` only): ``{"id", "event", "data",
      "timing"}``;
    * final: ``{"id", "schema", "served_from", "scenario_hash",
      "result"}``;
    * failure: ``{"id", "error"}``.

    ``write`` must emit one complete line per call (it is only ever
    called from the event-loop thread).  Returns the request count.
    """
    tasks = []
    while True:
        raw = await reader.readline()
        if not raw:
            break
        text = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        text = text.strip()
        if not text:
            continue
        tasks.append(asyncio.ensure_future(_serve_line(service, text, write)))
    if tasks:
        await asyncio.gather(*tasks)
    return len(tasks)


async def _serve_line(
    service: StudyService, text: str, write: Callable[[str], None]
) -> None:
    request_id: object = None
    try:
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("each request line must be a JSON object")
        request_id = payload.get("id")
        source = payload.get("scenario")
        if not isinstance(source, dict):
            raise ValueError("request needs a 'scenario' object")
        scenario = Scenario.from_dict(source)
        progress: Optional[Callable[[Dict[str, object]], None]] = None
        if payload.get("stream"):
            def progress(record: Dict[str, object]) -> None:
                write(json.dumps({"id": request_id, **record}) + "\n")

        answer = await service.submit(scenario, progress=progress)
        write(
            json.dumps({"id": request_id, **_answer_payload(answer)}) + "\n"
        )
    except Exception as exc:  # noqa: BLE001 — every failure maps to a line
        write(json.dumps({"id": request_id, "error": str(exc)}) + "\n")
