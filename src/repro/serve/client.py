"""A tiny stdlib-only client for the serve layer's HTTP front end.

:class:`ServeClient` wraps :mod:`http.client` — no third-party HTTP
stack, mirroring the server's zero-dependency discipline — and speaks
the three things a caller needs: answers (:meth:`query`), streamed
progress (:meth:`query_stream`), and operations (:meth:`health`,
:meth:`metrics`).
"""

from __future__ import annotations

import http.client
import json
from typing import Callable, Dict, Optional, Union

from repro.study.scenario import Scenario

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-200 answer from the service.

    Attributes:
        status: the HTTP status code.
        detail: the server's ``error`` message when it sent one.
    """

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"serve request failed ({status}): {detail}")
        self.status = status
        self.detail = detail


def _scenario_payload(scenario: Union[Scenario, Dict[str, object]]) -> str:
    payload = (
        scenario.as_dict() if isinstance(scenario, Scenario) else scenario
    )
    return json.dumps(payload)


class ServeClient:
    """A blocking client for one serve endpoint.

    Args:
        host / port: where the service listens.
        timeout: per-request socket timeout in seconds — long engine
            runs (cold frontier/fleet queries) need headroom here.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8750,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    # -- queries -----------------------------------------------------------

    def query(
        self, scenario: Union[Scenario, Dict[str, object]]
    ) -> Dict[str, object]:
        """POST one scenario; returns the answer envelope.

        The envelope is ``{"schema", "served_from", "scenario_hash",
        "result"}`` — rebuild the typed result with
        :meth:`repro.study.StudyResult.from_dict`.
        """
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/query",
                body=_scenario_payload(scenario),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            if response.status != 200:
                raise ServeError(response.status, _error_detail(body))
            return json.loads(body)
        finally:
            conn.close()

    def query_stream(
        self,
        scenario: Union[Scenario, Dict[str, object]],
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """POST one scenario on the streaming route.

        ``on_event`` receives each ndjson progress record
        (``{"event", "data", "timing"}``) as it arrives; the final
        answer envelope is returned.
        """
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/query/stream",
                body=_scenario_payload(scenario),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                body = response.read().decode("utf-8")
                raise ServeError(response.status, _error_detail(body))
            final: Optional[Dict[str, object]] = None
            for raw in response:
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                record = json.loads(line)
                if "result" in record:
                    final = record
                elif on_event is not None:
                    on_event(record)
            if final is None:
                raise ServeError(200, "stream ended without a result line")
            return final
        finally:
            conn.close()

    # -- operations --------------------------------------------------------

    def health(self) -> bool:
        """Whether the liveness probe answers."""
        try:
            conn = self._connect()
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                return response.status == 200
            finally:
                conn.close()
        except OSError:
            return False

    def metrics(self) -> str:
        """The Prometheus text exposition of the service registry."""
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            if response.status != 200:
                raise ServeError(response.status, _error_detail(body))
            return body
        finally:
            conn.close()


def _error_detail(body: str) -> str:
    try:
        payload = json.loads(body)
        if isinstance(payload, dict) and "error" in payload:
            return str(payload["error"])
    except json.JSONDecodeError:
        pass
    return body.strip() or "no detail"
