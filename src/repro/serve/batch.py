"""Grouping compatible point questions onto one vectorized kernel call.

The serve layer's batching queue collects *compatible* loss-probability
scenarios — same fault model, redundancy, audits and sampling policy,
differing only in ``mission_years`` (and ``label``) — and answers the
whole group with a single :func:`repro.simulation.batch.simulate_batch`
invocation run to the group's longest mission.  Each member's answer is
then read off the shared per-trial outcomes: a trial counts as a loss
for mission ``m`` when it lost data at or before ``m``.

Sampling semantics, stated precisely: the batch kernel draws all trials
from one lock-step stream, so restricting a horizon-``H`` run to an
earlier mission ``m`` is *not* bit-identical to running the kernel at
horizon ``m`` (the streams diverge once any trial censors at the shorter
horizon).  The grouped answers are exactly unbiased estimates of each
member's loss probability from ``trials`` i.i.d. trajectories — the
same estimator, on common random numbers shared across the group — and
the member whose mission equals the group maximum is bit-identical to a
solo :func:`repro.study.run`, because its kernel call is literally the
same call.  Results are tagged ``details["batched"]`` so the provenance
is explicit in the stored answer.

Eligibility (:func:`batchable`) is deliberately narrow: plain
``engine="batch"`` loss probabilities with no adaptive target, no
importance-sampling bias and no variance reduction — exactly the
configurations where the estimator loop makes one ``simulate_batch``
call whose per-trial outcomes this module can reuse.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import replace
from typing import Dict, List, Sequence

import numpy as np

from repro import obs
from repro.core.units import years_to_hours
from repro.simulation.batch import simulate_batch
from repro.simulation.estimators import MonteCarloEstimate
from repro.study.result import StudyResult
from repro.study.scenario import Scenario

__all__ = ["batchable", "group_key", "run_group"]


def batchable(scenario: Scenario) -> bool:
    """Whether a scenario is eligible for the shared-kernel batch path."""
    policy = scenario.policy
    return (
        scenario.question == "loss_probability"
        and scenario.system is not None
        and policy.engine == "batch"
        and policy.target_relative_error is None
        and policy.bias is None
        and policy.variance_reduction == "none"
    )


def group_key(scenario: Scenario) -> str:
    """The compatibility class a batchable scenario belongs to.

    Everything but ``mission_years`` and ``label``: two scenarios in the
    same group share the fault model, redundancy scheme, audit rate,
    trial count and seed, so one kernel invocation serves both.
    """
    payload = scenario.as_dict()
    payload["mission_years"] = None
    payload["label"] = None
    return json.dumps(payload, sort_keys=True)


def run_group(scenarios: Sequence[Scenario]) -> List[StudyResult]:
    """Answer a compatible group with one ``simulate_batch`` call.

    Results are ordered like the input.  The caller is responsible for
    only grouping scenarios that share a :func:`group_key` (asserted
    here, since a silent mismatch would corrupt every member's answer).
    """
    if not scenarios:
        return []
    keys = {group_key(s) for s in scenarios}
    if len(keys) > 1:
        raise ValueError(
            f"run_group needs one compatibility class, got {len(keys)}"
        )
    for scenario in scenarios:
        if not batchable(scenario):
            raise ValueError(
                "run_group accepts batchable scenarios only "
                f"(got question={scenario.question!r}, "
                f"engine={scenario.policy.engine!r})"
            )
    lead = scenarios[0]
    spec = lead.system
    policy = lead.policy
    missions_hours = [years_to_hours(s.mission_years) for s in scenarios]
    horizon = max(missions_hours)

    tel = obs.current()
    start = time.perf_counter()
    with tel.span("kernel"):
        outcome = simulate_batch(
            spec.model,
            trials=policy.trials,
            horizon=horizon,
            seed=policy.seed,
            replicas=spec.replicas,
            audits_per_year=spec.audits_per_year,
            chunk=0,
            scheme=spec.scheme,
        )
    wall_time = time.perf_counter() - start
    if tel.enabled:
        tel.count("serve.batch.members", len(scenarios))
        tel.event(
            "batch_group",
            data={
                "members": len(scenarios),
                "trials": policy.trials,
                "horizon_years": horizon / years_to_hours(1.0),
                "seed": policy.seed,
            },
            timing={"kernel_seconds": wall_time},
        )

    group_hashes = [s.content_hash() for s in scenarios]
    results: List[StudyResult] = []
    for scenario, mission_hours, scenario_hash in zip(
        scenarios, missions_hours, group_hashes
    ):
        # A trial lost data within this member's mission iff it lost at
        # all and the loss happened at or before the mission end
        # (end_time holds the horizon for censored trials, so the lost
        # mask alone already excludes them).
        losses = int(
            np.count_nonzero(outcome.lost & (outcome.end_time <= mission_hours))
        )
        done = outcome.trials
        p = losses / done
        std_error = math.sqrt(max(p * (1.0 - p), 1e-12) / done)
        estimate = MonteCarloEstimate(
            mean=p,
            std_error=std_error,
            trials=done,
            censored=done - losses,
            clamp_hi=1.0,
        )
        details: Dict[str, object] = {
            "batched": {
                "members": len(scenarios),
                "horizon_years": horizon / years_to_hours(1.0),
                "bit_identical_to_solo": mission_hours == horizon,
            }
        }
        result = StudyResult.from_estimate(
            "loss_probability", "batch", estimate, "probability", details
        )
        results.append(
            replace(
                result,
                seed=policy.seed,
                scenario_hash=scenario_hash,
                wall_time_seconds=wall_time,
            )
        )
    return results
