"""The asyncio Scenario→StudyResult service behind every serve front end.

:class:`StudyService` is the transport-agnostic core the HTTP server,
the stdio JSON-lines mode and the in-process tests all drive.  One
``await service.submit(scenario)`` resolves through three layers, each
cheaper than the next:

1. **store** — the persistent :class:`~repro.serve.store.ResultStore`
   answers exact questions forever and stochastic questions while their
   achieved relative error satisfies the caller's demand;
2. **single-flight** — identical in-flight scenarios (same content
   hash) share one computation: late arrivals await the first
   submission's future instead of spawning their own engine run;
3. **engine** — a real :func:`repro.study.run`, either solo or — for
   compatible plain-batch loss-probability scenarios — grouped by the
   batching queue onto one vectorized kernel invocation
   (:mod:`repro.serve.batch`).

Engine runs execute on a single worker thread
(``ThreadPoolExecutor(max_workers=1)``): the :func:`repro.obs.session`
registry is a module-level global, so concurrent engine runs in one
process would cross their telemetry streams.  Cache hits never touch
the worker, which is what keeps the hot path's throughput independent
of engine latency; engines still parallelise internally via ``jobs``.

Every outcome is counted into the service's own
:class:`~repro.obs.telemetry.Telemetry` registry (``serve.requests``,
``serve.engine_runs``, ``serve.singleflight.shared``,
``cache.serve.{hit,miss,stale,error}``, ``serve.batch.*``), which is
exactly what ``/metrics`` renders through the Prometheus exposition.
"""

from __future__ import annotations

import asyncio
import warnings as _warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs, study
from repro.serve.batch import batchable, group_key, run_group
from repro.serve.store import ResultStore
from repro.study.result import StudyResult
from repro.study.scenario import Scenario

__all__ = ["ProgressCallback", "ServeAnswer", "StudyService"]

#: A progress consumer: called in the event loop with one flight-recorder
#: record ``{"event", "data", "timing"}`` per engine event.
ProgressCallback = Callable[[Dict[str, object]], None]


@dataclass(frozen=True)
class ServeAnswer:
    """One served answer plus how it was produced.

    Attributes:
        result: the (schema-versioned) study result.
        served_from: ``"store"`` (persistent cache hit), ``"inflight"``
            (shared an identical in-flight computation) or ``"engine"``
            (this request triggered the run — solo or batched).
        scenario_hash: the *requesting* scenario's content hash.  May
            differ from ``result.scenario_hash`` on store hits: the
            stored provenance names the scenario that produced the
            numbers, which can have different precision knobs.
    """

    result: StudyResult
    served_from: str
    scenario_hash: str


class _ProgressSink:
    """A trace-sink adapter marshalling engine events into the loop.

    Quacks like :class:`repro.obs.trace.TraceWriter` (the ``emit``
    method is all :meth:`Telemetry.event` calls), but instead of
    appending JSONL it hands each record to the subscriber's callback on
    the event-loop thread — engine events originate on the worker
    thread, and asyncio consumers must not be called from there.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, callback: ProgressCallback
    ) -> None:
        self._loop = loop
        self._callback = callback

    def emit(
        self,
        kind: str,
        data: Optional[Dict[str, object]] = None,
        timing: Optional[Dict[str, object]] = None,
    ) -> None:
        record = {"event": kind, "data": data, "timing": timing}
        self._loop.call_soon_threadsafe(self._deliver, record)

    def _deliver(self, record: Dict[str, object]) -> None:
        try:
            self._callback(record)
        except Exception:
            # A broken subscriber (e.g. a disconnected streaming client)
            # must not poison the engine run other callers share.
            pass


@dataclass
class _PendingGroup:
    """One batching-queue compatibility class awaiting its flush."""

    items: List[Tuple[Scenario, "asyncio.Future[StudyResult]"]] = field(
        default_factory=list
    )
    timer: Optional["asyncio.Task[None]"] = None


def _strip_telemetry(result: StudyResult) -> StudyResult:
    """Drop the engine-run telemetry payload before caching/serving.

    The snapshot is the *service's* operational data (it is absorbed
    into the registry ``/metrics`` renders); leaving it in the result
    would bloat every stored entry and leak per-run wall times into
    otherwise deterministic payloads.
    """
    if "telemetry" not in result.details:
        return result
    details = {k: v for k, v in result.details.items() if k != "telemetry"}
    return replace(result, details=details)


class StudyService:
    """The shared query service: store, single-flight, batching, engine.

    Args:
        store: the persistent result store; ``None`` disables the
            store layer (single-flight and batching still apply).
        jobs: worker processes for engines that parallelise internally
            (frontier refinement, fleet chunks).
        transport: chunk-result transport for those engines.
        batch_window: seconds the batching queue holds the first
            scenario of a compatibility group open for companions
            before flushing; ``0`` still coalesces submissions arriving
            in the same loop iteration.  ``None`` disables batching.
        max_batch: flush a group immediately at this size.
        telemetry: the service's operational registry (defaults to a
            fresh live one); rendered by ``/metrics``.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        transport: str = "pickle",
        batch_window: Optional[float] = 0.002,
        max_batch: int = 64,
        telemetry: Optional[obs.Telemetry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_window is not None and batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        self.store = store
        self.jobs = jobs
        self.transport = transport
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.telemetry = telemetry if telemetry is not None else obs.Telemetry()
        # One worker thread by design: obs.session installs a
        # process-global registry, so engine runs must not overlap.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._inflight: Dict[str, "asyncio.Future[StudyResult]"] = {}
        self._pending: Dict[str, _PendingGroup] = {}
        self._closed = False

    # -- the one entry point ----------------------------------------------

    async def submit(
        self,
        scenario: Scenario,
        progress: Optional[ProgressCallback] = None,
    ) -> ServeAnswer:
        """Answer one scenario through store → single-flight → engine.

        Args:
            scenario: the declarative question.
            progress: optional subscriber for the engine's
                flight-recorder event stream (``study_start``,
                ``pilot_round``, ``chunk``, ``study_end``, ...), called
                on the event loop.  Subscribed runs bypass the batching
                queue — a shared kernel invocation has no per-caller
                event stream to narrate.
        """
        if self._closed:
            raise RuntimeError("the service is closed")
        tel = self.telemetry
        tel.count("serve.requests")
        key = scenario.content_hash()

        if self.store is not None:
            stored, outcome = self.store.lookup(scenario)
            tel.count(f"cache.serve.{outcome}")
            if outcome == "hit":
                assert stored is not None
                return ServeAnswer(stored, "store", key)

        shared = self._inflight.get(key)
        if shared is not None:
            tel.count("serve.singleflight.shared")
            # shield: a caller abandoning its request must not cancel
            # the computation every other sharer is waiting on.
            result = await asyncio.shield(shared)
            return ServeAnswer(result, "inflight", key)

        loop = asyncio.get_running_loop()
        fut: "asyncio.Future[StudyResult]" = loop.create_future()
        self._inflight[key] = fut
        fut.add_done_callback(
            lambda _f, key=key: self._inflight.pop(key, None)
        )
        if (
            progress is None
            and self.batch_window is not None
            and batchable(scenario)
        ):
            self._enqueue(loop, scenario, fut)
        else:
            self._spawn_single(loop, scenario, fut, progress)
        result = await asyncio.shield(fut)
        return ServeAnswer(result, "engine", key)

    # -- solo engine runs --------------------------------------------------

    def _engine_cache_dir(self) -> Optional[str]:
        # Frontier/fleet questions keep their internal content-hash
        # caches next to the store entries — the three caches were
        # designed to share one directory.
        if self.store is None:
            return None
        return str(self.store.directory)

    def _spawn_single(
        self,
        loop: asyncio.AbstractEventLoop,
        scenario: Scenario,
        fut: "asyncio.Future[StudyResult]",
        progress: Optional[ProgressCallback],
    ) -> None:
        sink = None if progress is None else _ProgressSink(loop, progress)

        def work() -> Tuple[StudyResult, obs.TelemetrySnapshot]:
            run_tel = obs.Telemetry(trace=sink)
            # Warnings are already captured into result.warnings by the
            # facade; re-emitting them from a server thread would only
            # spam stderr once per request.
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore")
                result = study.run(
                    scenario,
                    jobs=self.jobs,
                    cache_dir=self._engine_cache_dir(),
                    transport=self.transport,
                    telemetry=run_tel,
                )
            return result, run_tel.snapshot()

        task = loop.run_in_executor(self._executor, work)
        task.add_done_callback(partial(self._finish_single, scenario, fut))

    def _finish_single(
        self,
        scenario: Scenario,
        fut: "asyncio.Future[StudyResult]",
        task: "asyncio.Future[Tuple[StudyResult, obs.TelemetrySnapshot]]",
    ) -> None:
        self.telemetry.count("serve.engine_runs")
        try:
            result, snapshot = task.result()
        except Exception as exc:
            if not fut.done():
                fut.set_exception(exc)
            return
        self.telemetry.absorb(snapshot)
        result = _strip_telemetry(result)
        self._store_put(scenario, result, batched=False)
        if not fut.done():
            fut.set_result(result)

    # -- the batching queue ------------------------------------------------

    def _enqueue(
        self,
        loop: asyncio.AbstractEventLoop,
        scenario: Scenario,
        fut: "asyncio.Future[StudyResult]",
    ) -> None:
        gkey = group_key(scenario)
        group = self._pending.get(gkey)
        if group is None:
            group = _PendingGroup()
            self._pending[gkey] = group
            group.timer = loop.create_task(self._flush_after_window(gkey))
        group.items.append((scenario, fut))
        if len(group.items) >= self.max_batch:
            self._flush(gkey)

    async def _flush_after_window(self, gkey: str) -> None:
        await asyncio.sleep(self.batch_window or 0.0)
        self._flush(gkey)

    def _flush(self, gkey: str) -> None:
        group = self._pending.pop(gkey, None)
        if group is None:
            return
        timer = group.timer
        try:
            current = asyncio.current_task()
        except RuntimeError:
            current = None
        if timer is not None and timer is not current and not timer.done():
            timer.cancel()
        scenarios = [scenario for scenario, _ in group.items]
        futs = [fut for _, fut in group.items]

        def work() -> Tuple[List[StudyResult], obs.TelemetrySnapshot]:
            run_tel = obs.Telemetry()
            with obs.session(run_tel):
                results = run_group(scenarios)
            return results, run_tel.snapshot()

        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(self._executor, work)
        task.add_done_callback(partial(self._finish_group, scenarios, futs))

    def _finish_group(
        self,
        scenarios: List[Scenario],
        futs: List["asyncio.Future[StudyResult]"],
        task: "asyncio.Future[Tuple[List[StudyResult], obs.TelemetrySnapshot]]",
    ) -> None:
        # One flush is one engine run, however many scenarios shared it
        # — that asymmetry is the batching queue's whole point.
        self.telemetry.count("serve.engine_runs")
        self.telemetry.count("serve.batch.flushes")
        self.telemetry.observe("serve.batch.size", len(scenarios))
        try:
            results, snapshot = task.result()
        except Exception as exc:
            for fut in futs:
                if not fut.done():
                    fut.set_exception(exc)
            return
        self.telemetry.absorb(snapshot)
        for scenario, fut, result in zip(scenarios, futs, results):
            self._store_put(scenario, result, batched=True)
            if not fut.done():
                fut.set_result(result)

    # -- shared plumbing ---------------------------------------------------

    def _store_put(
        self, scenario: Scenario, result: StudyResult, batched: bool
    ) -> None:
        if self.store is None:
            return
        try:
            self.store.put(scenario, result, batched=batched)
        except OSError:
            # A full disk must degrade the store to a pass-through, not
            # take the answer (or the service) down with it.
            self.telemetry.count("serve.store_write_errors")

    def stats(self) -> Dict[str, object]:
        """Operational counters: the registry's, plus the store's."""
        snapshot = self.telemetry.snapshot()
        payload: Dict[str, object] = {"counters": dict(snapshot.counters)}
        if self.store is not None:
            payload["store"] = self.store.stats()
        return payload

    async def close(self) -> None:
        """Flush pending batches, settle in-flight work, stop the worker."""
        self._closed = True
        for gkey in list(self._pending):
            self._flush(gkey)
        pending = [fut for fut in self._inflight.values() if not fut.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=True)
