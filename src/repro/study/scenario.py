"""Declarative, JSON-roundtrippable reliability-study specifications.

A :class:`Scenario` is the single way to pose a question to the toolkit:
*what system* (a :class:`SystemSpec`, a planner
:class:`~repro.optimize.space.DesignSpace`, or a fleet
:class:`~repro.fleet.timeline.FleetTimeline`), *which question*
(:data:`QUESTIONS`), and *how hard to work on the answer* (an
:class:`EstimatorPolicy`).  Scenarios are plain data — they serialise to
JSON (``to_json`` / ``from_json``, tolerant of unknown fields so newer
writers can talk to older readers), carry a content hash compatible with
the optimize/fleet result caches, and are everything a future service
tier needs to accept over the wire.

The facade's entry point is :func:`repro.study.run`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.sensitivity import PARAMETER_FIELDS
from repro.fleet.timeline import FleetTimeline
from repro.optimize.evaluate import DEFAULT_SCREEN_SLACK
from repro.optimize.space import DesignSpace

#: The five question kinds the facade answers.
QUESTIONS: Tuple[str, ...] = (
    "mttdl",
    "loss_probability",
    "frontier",
    "fleet_survival",
    "sweep",
)

#: Recognised estimation engines.  ``auto`` pilots on the vectorized
#: batch backend and escalates to rare-event methods (cross-checking the
#: closed forms and the Markov chain when that is cheap); ``analytic``
#: and ``markov`` are deterministic; ``event``/``batch`` force a plain
#: Monte-Carlo backend; ``is``/``splitting`` force a rare-event method;
#: ``fleet`` is the chunked fleet-population simulator.
ENGINES: Tuple[str, ...] = (
    "auto",
    "analytic",
    "markov",
    "event",
    "batch",
    "is",
    "splitting",
    "fleet",
)

#: Engines that resolve to a (backend, method) pair of the shared
#: Monte-Carlo loops in :mod:`repro.simulation.estimators`.
_ENGINE_BACKEND_METHOD: Dict[str, Tuple[str, str]] = {
    "auto": ("batch", "auto"),
    "batch": ("batch", "standard"),
    "event": ("event", "standard"),
    "is": ("batch", "is"),
    "splitting": ("event", "splitting"),
}

#: Engines a sweep question accepts (markov/splitting/fleet make no
#: sense per sweep point).
SWEEP_ENGINES: Tuple[str, ...] = ("auto", "analytic", "batch", "event", "is")

#: Engines a frontier question accepts (mapped onto
#: :class:`~repro.optimize.evaluate.EvaluationSettings`).
FRONTIER_ENGINES: Tuple[str, ...] = ("auto", "analytic", "batch", "event", "is")

#: Sweepable parameters beyond the FaultModel fields.
_EXTRA_SWEEP_PARAMETERS: Tuple[str, ...] = ("audits_per_year", "replicas")


def engine_for(backend: str, method: str) -> Optional[str]:
    """Map a legacy ``(backend, method)`` pair onto an engine name.

    Returns ``None`` for combinations the single-axis engine vocabulary
    does not encode (including invalid values — the shared estimator
    loops own the canonical error for those).
    """
    if method == "is":
        return "is" if backend in ("event", "batch") else None
    if method == "splitting":
        return "splitting" if backend in ("event", "batch") else None
    if method == "standard" and backend in ("event", "batch"):
        return backend
    if method == "auto" and backend == "batch":
        return "auto"
    return None


def engine_backend_method(engine: str) -> Tuple[str, str]:
    """The (backend, method) pair a stochastic engine resolves to."""
    try:
        return _ENGINE_BACKEND_METHOD[engine]
    except KeyError:
        raise ValueError(
            f"engine {engine!r} has no Monte-Carlo backend/method mapping"
        ) from None


def _model_from_dict(payload: Dict[str, object]) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=float(payload["MV"]),
        mean_time_to_latent=float(payload["ML"]),
        mean_repair_visible=float(payload["MRV"]),
        mean_repair_latent=float(payload["MRL"]),
        mean_detect_latent=float(payload["MDL"]),
        correlation_factor=float(payload["alpha"]),
    )


def _space_from_dict(payload: Dict[str, object]) -> DesignSpace:
    return DesignSpace(
        dataset_tb=float(payload["dataset_tb"]),
        media=tuple(str(m) for m in payload["media"]),
        replica_counts=tuple(int(r) for r in payload["replica_counts"]),
        audit_rates=tuple(float(a) for a in payload["audit_rates"]),
        placements=tuple(str(p) for p in payload["placements"]),
        site_cost_per_year=float(payload.get("site_cost_per_year", 0.0)),
        erasure_schemes=tuple(
            str(s) for s in payload.get("erasure_schemes", ())
        ),
    )


@dataclass(frozen=True)
class SystemSpec:
    """The replicated system a point-estimate or sweep question is about.

    Attributes:
        model: per-replica fault parameters (paper notation).
        replicas: replication degree.
        audits_per_year: overrides the model-derived audit grid in the
            simulators (and folds into ``MDL`` for the closed forms,
            matching :func:`repro.analysis.sweep.audit_adjusted_model`).
        scheme: optional (n, k) redundancy scheme; when set, ``replicas``
            is forced to the fragment count ``n`` and data is lost at
            ``n - k + 1`` simultaneous faults instead of ``n``.  ``None``
            keeps plain r-way replication (and the historical
            serialisation, so existing content hashes are unchanged).
    """

    model: FaultModel
    replicas: int = 2
    audits_per_year: Optional[float] = None
    scheme: Optional[RedundancyScheme] = None

    def __post_init__(self) -> None:
        if self.scheme is not None:
            object.__setattr__(self, "replicas", self.scheme.n)
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.audits_per_year is not None and self.audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "model": self.model.as_dict(),
            "replicas": self.replicas,
            "audits_per_year": self.audits_per_year,
        }
        # Conditional so replication scenarios hash exactly as before.
        if self.scheme is not None:
            payload["scheme"] = self.scheme.as_dict()
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SystemSpec":
        audits = payload.get("audits_per_year")
        scheme = payload.get("scheme")
        return SystemSpec(
            model=_model_from_dict(payload["model"]),
            replicas=int(payload.get("replicas", 2)),
            audits_per_year=None if audits is None else float(audits),
            scheme=(
                RedundancyScheme.from_dict(scheme)
                if scheme is not None
                else None
            ),
        )

    def effective_scheme(self) -> RedundancyScheme:
        """The scheme in force (plain replication when unset)."""
        if self.scheme is not None:
            return self.scheme
        return RedundancyScheme(n=self.replicas, k=1)


@dataclass(frozen=True)
class SweepSpec:
    """One swept axis of a ``question="sweep"`` scenario.

    Attributes:
        parameter: a :class:`FaultModel` field (``MV``/``ML``/``MRV``/
            ``MRL``/``MDL``/``alpha``), ``audits_per_year``, or
            ``replicas`` (analytic Eq. 12 sweep).
        values: the swept values, in order.
        metric: ``"mttdl"`` or ``"loss_probability"`` (simulated sweeps
            of model parameters only).
        correlation_factors: the ``α`` series of a ``replicas`` sweep.
    """

    parameter: str
    values: Tuple[float, ...]
    metric: str = "mttdl"
    correlation_factors: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if (
            self.parameter not in PARAMETER_FIELDS
            and self.parameter not in _EXTRA_SWEEP_PARAMETERS
        ):
            raise ValueError(
                f"unknown sweep parameter {self.parameter!r}; expected one "
                f"of {sorted(PARAMETER_FIELDS) + list(_EXTRA_SWEEP_PARAMETERS)}"
            )
        if not self.values:
            raise ValueError("sweep values must not be empty")
        if self.metric not in ("mttdl", "loss_probability"):
            raise ValueError(
                f"unknown metric {self.metric!r}; expected 'mttdl' or "
                "'loss_probability'"
            )
        if self.parameter == "replicas" and not self.correlation_factors:
            object.__setattr__(self, "correlation_factors", (1.0,))

    def as_dict(self) -> Dict[str, object]:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "metric": self.metric,
            "correlation_factors": list(self.correlation_factors),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SweepSpec":
        return SweepSpec(
            parameter=str(payload["parameter"]),
            values=tuple(float(v) for v in payload["values"]),
            metric=str(payload.get("metric", "mttdl")),
            correlation_factors=tuple(
                float(a) for a in payload.get("correlation_factors", ())
            ),
        )


@dataclass(frozen=True)
class EstimatorPolicy:
    """How hard (and how) to work on a scenario's answer.

    Attributes:
        engine: one of :data:`ENGINES`.
        trials: Monte-Carlo trials per chunk (per refined candidate for
            frontier questions; ignored by deterministic engines).
        max_trials: hard adaptive-sampling budget (default: 64 chunks).
        target_relative_error: adaptive sampling target; chunks keep
            extending until the standard error falls below this fraction
            of the mean.
        seed: root random seed; all child seeds spawn deterministically.
        bias: failure-biasing override for importance sampling.
        cross_check: under ``engine="auto"``, attach the closed-form and
            Markov-chain answers to the result's details whenever they
            are cheap to compute (mirrored pairs).
        variance_reduction: one of
            :data:`repro.simulation.estimators.VARIANCE_REDUCTIONS` —
            ``"none"`` (default), ``"qmc"`` (scrambled-Sobol clock
            pools) or ``"cv"`` (conditional-Monte-Carlo control
            variate).  Non-``"none"`` values require the plain batch
            engine (``engine="batch"``); they replace the sampling
            scheme rather than composing with ``is``/``splitting``.
    """

    engine: str = "auto"
    trials: int = 1000
    max_trials: Optional[int] = None
    target_relative_error: Optional[float] = None
    seed: int = 0
    bias: Optional[float] = None
    cross_check: bool = True
    variance_reduction: str = "none"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.max_trials is not None and self.max_trials < self.trials:
            raise ValueError("max_trials must be at least the initial trial count")
        if (
            self.target_relative_error is not None
            and self.target_relative_error <= 0
        ):
            raise ValueError("target_relative_error must be positive")
        # Membership is validated here; the full compatibility rules
        # (batch backend, standard method, no bias) live with the shared
        # estimator loops, which also own the canonical error messages.
        from repro.simulation.estimators import VARIANCE_REDUCTIONS

        if self.variance_reduction not in VARIANCE_REDUCTIONS:
            raise ValueError(
                f"unknown variance_reduction {self.variance_reduction!r}; "
                f"expected one of {VARIANCE_REDUCTIONS}"
            )
        if self.variance_reduction != "none" and self.engine != "batch":
            raise ValueError(
                "variance_reduction requires the plain batch engine "
                "(engine='batch')"
            )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "engine": self.engine,
            "trials": self.trials,
            "max_trials": self.max_trials,
            "target_relative_error": self.target_relative_error,
            "seed": self.seed,
            "bias": self.bias,
            "cross_check": self.cross_check,
        }
        # Conditional so pre-existing policies hash exactly as before.
        if self.variance_reduction != "none":
            payload["variance_reduction"] = self.variance_reduction
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "EstimatorPolicy":
        def _opt_float(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        return EstimatorPolicy(
            engine=str(payload.get("engine", "auto")),
            trials=int(payload.get("trials", 1000)),
            max_trials=(
                None
                if payload.get("max_trials") is None
                else int(payload["max_trials"])
            ),
            target_relative_error=_opt_float("target_relative_error"),
            seed=int(payload.get("seed", 0)),
            bias=_opt_float("bias"),
            cross_check=bool(payload.get("cross_check", True)),
            variance_reduction=str(payload.get("variance_reduction", "none")),
        )


@dataclass(frozen=True)
class Scenario:
    """One complete, serialisable reliability question.

    Attributes:
        question: one of :data:`QUESTIONS`.
        system: the replicated system (``mttdl`` / ``loss_probability``
            / ``sweep`` questions).
        mission_years: mission length for loss probabilities.
        max_time_hours: censoring horizon for MTTDL estimation
            (default: engine-chosen).
        sweep: the swept axis (``sweep`` questions).
        space: the planner design space (``frontier`` questions).
        budget: annual budget for the frontier recommendation query.
        target_loss: loss-probability target for the recommendation.
        slack: analytic screening slack (``frontier`` questions).
        timeline: the fleet plan (``fleet_survival`` questions).
        members: fleet size.
        chunk_size: members per fleet chunk.
        policy: the :class:`EstimatorPolicy`.
        label: optional human-readable name carried into results.
    """

    question: str
    system: Optional[SystemSpec] = None
    mission_years: float = 50.0
    max_time_hours: Optional[float] = None
    sweep: Optional[SweepSpec] = None
    space: Optional[DesignSpace] = None
    budget: Optional[float] = None
    target_loss: Optional[float] = None
    slack: float = DEFAULT_SCREEN_SLACK
    timeline: Optional[FleetTimeline] = None
    members: int = 2000
    chunk_size: int = 1000
    policy: EstimatorPolicy = field(default_factory=EstimatorPolicy)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.question not in QUESTIONS:
            raise ValueError(
                f"unknown question {self.question!r}; expected one of "
                f"{QUESTIONS}"
            )
        if self.mission_years <= 0:
            raise ValueError("mission_years must be positive")
        engine = self.policy.engine
        if self.question in ("mttdl", "loss_probability"):
            if self.system is None:
                raise ValueError(
                    f"question {self.question!r} needs a SystemSpec"
                )
            if engine == "fleet":
                raise ValueError(
                    "engine 'fleet' answers fleet_survival questions only"
                )
            if self.question == "mttdl" and engine == "splitting":
                raise ValueError(
                    "splitting estimates mission loss probabilities; use "
                    "question='loss_probability' or engine='is' for the MTTDL"
                )
            if engine == "markov" and not (
                self.system.replicas == 2
                and self.system.effective_scheme().is_replication
            ):
                raise ValueError(
                    "the markov engine evaluates mirrored pairs "
                    "(replicas=2) only"
                )
        elif self.question == "sweep":
            if self.system is None or self.sweep is None:
                raise ValueError(
                    "question 'sweep' needs a SystemSpec and a SweepSpec"
                )
            if engine not in SWEEP_ENGINES:
                raise ValueError(
                    f"engine {engine!r} cannot answer sweeps; expected one "
                    f"of {SWEEP_ENGINES}"
                )
            if self.sweep.parameter == "replicas" and engine != "analytic":
                raise ValueError(
                    "the replicas sweep is analytic (Eq. 12); use "
                    "engine='analytic'"
                )
        elif self.question == "frontier":
            if self.space is None:
                raise ValueError("question 'frontier' needs a DesignSpace")
            if engine not in FRONTIER_ENGINES:
                raise ValueError(
                    f"engine {engine!r} cannot search frontiers; expected "
                    f"one of {FRONTIER_ENGINES}"
                )
        elif self.question == "fleet_survival":
            if self.timeline is None:
                raise ValueError(
                    "question 'fleet_survival' needs a FleetTimeline"
                )
            if engine not in ("auto", "fleet"):
                raise ValueError(
                    "fleet_survival questions run on the fleet engine "
                    "(engine='fleet' or 'auto')"
                )
            if self.members <= 0:
                raise ValueError("members must be positive")
            if self.chunk_size <= 0:
                raise ValueError("chunk_size must be positive")
        if self.slack < 1.0:
            raise ValueError("slack must be at least 1")
        if self.max_time_hours is not None and self.max_time_hours <= 0:
            raise ValueError("max_time_hours must be positive")

    # -- evolution ---------------------------------------------------------

    def with_policy(self, **changes: object) -> "Scenario":
        """Copy with the policy's fields replaced (e.g. a new seed)."""
        return replace(self, policy=replace(self.policy, **changes))

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "question": self.question,
            "label": self.label,
            "system": self.system.as_dict() if self.system else None,
            "mission_years": self.mission_years,
            "max_time_hours": self.max_time_hours,
            "sweep": self.sweep.as_dict() if self.sweep else None,
            "space": self.space.as_dict() if self.space else None,
            "budget": self.budget,
            "target_loss": self.target_loss,
            "slack": self.slack,
            "timeline": self.timeline.as_dict() if self.timeline else None,
            "members": self.members,
            "chunk_size": self.chunk_size,
            "policy": self.policy.as_dict(),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario, ignoring unknown fields.

        Unknown top-level (and policy-level) keys are tolerated so
        results written by a newer version of the toolkit remain
        loadable — forward compatibility for the serialised form.
        """

        def _opt_float(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        label = payload.get("label")
        return Scenario(
            question=str(payload["question"]),
            system=(
                SystemSpec.from_dict(payload["system"])
                if payload.get("system")
                else None
            ),
            mission_years=float(payload.get("mission_years", 50.0)),
            max_time_hours=_opt_float("max_time_hours"),
            sweep=(
                SweepSpec.from_dict(payload["sweep"])
                if payload.get("sweep")
                else None
            ),
            space=(
                _space_from_dict(payload["space"])
                if payload.get("space")
                else None
            ),
            budget=_opt_float("budget"),
            target_loss=_opt_float("target_loss"),
            slack=float(payload.get("slack", DEFAULT_SCREEN_SLACK)),
            timeline=(
                FleetTimeline.from_dict(payload["timeline"])
                if payload.get("timeline")
                else None
            ),
            members=int(payload.get("members", 2000)),
            chunk_size=int(payload.get("chunk_size", 1000)),
            policy=EstimatorPolicy.from_dict(payload.get("policy", {})),
            label=None if label is None else str(label),
        )

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise; also writes to ``path`` when given."""
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @staticmethod
    def from_json(source: Union[str, Path]) -> "Scenario":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        return Scenario.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Hex digest identifying the full scenario.

        The same recipe as the optimize refinement cache and the fleet
        chunk cache (SHA-256 over the sorted canonical JSON), so study
        results can be cached and merged next to them.
        """
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]
